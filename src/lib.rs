//! # bsom-repro
//!
//! A from-scratch Rust reproduction of **"Binary Object Recognition System on
//! FPGA with bSOM"** (Appiah, Hunter, Dickinson, Meng — SOCC 2010).
//!
//! This facade crate re-exports the whole workspace so applications can use a
//! single dependency:
//!
//! * [`signature`] — binary signatures, tri-state vectors, colour histograms.
//! * [`som`] — the tri-state binary SOM (bSOM) and the conventional SOM
//!   (cSOM) baseline, node labelling, evaluation.
//! * [`vision`] — the synthetic surveillance substrate (scene, background
//!   subtraction, connected components, tracking, signature extraction).
//! * [`dataset`] — labelled synthetic datasets mirroring the paper's data.
//! * [`fpga`] — the cycle-accurate FPGA architecture simulator and the
//!   XC4VLX160 resource model.
//! * [`stats`] — the Wilcoxon rank-sum machinery behind Table II.
//! * [`eval`] — the experiment harness regenerating every table and figure.
//! * [`engine`] — the train-while-serve engine: `SomService` owns a
//!   versioned, atomically-swappable snapshot of the plane-sliced layer; a
//!   `Trainer` publishes while `Recognizer`s classify batches sharded across
//!   a worker pool.
//! * [`serve`] — the TCP serving front-end: a length-prefixed checksummed
//!   wire format, an adaptive micro-batching scheduler over the engine, a
//!   graceful-drain server (`bsom-serve` binary) and an open-loop load
//!   generator (`loadgen` binary).
//!
//! ## Quickstart
//!
//! ```rust
//! use bsom_repro::prelude::*;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Generate a small labelled dataset of appearance signatures.
//! let mut rng = StdRng::seed_from_u64(1);
//! let dataset = SurveillanceDataset::generate(
//!     &DatasetConfig { train_instances: 200, test_instances: 100, ..DatasetConfig::paper_default() },
//!     &mut rng,
//! );
//!
//! // Train the bSOM, label its neurons, and evaluate it.
//! let mut som = BSom::new(BSomConfig::paper_default(), &mut rng);
//! som.train_labelled_data(&dataset.train, TrainSchedule::new(10), &mut rng).unwrap();
//! let classifier = LabelledSom::label(som, &dataset.train);
//! let eval = evaluate(&classifier, &dataset.test);
//! assert!(eval.accuracy_percent() > 50.0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use bsom_dataset as dataset;
pub use bsom_engine as engine;
pub use bsom_eval as eval;
pub use bsom_fpga as fpga;
pub use bsom_serve as serve;
pub use bsom_signature as signature;
pub use bsom_som as som;
pub use bsom_stats as stats;
pub use bsom_vision as vision;

/// The most commonly used items, re-exported flat for convenience.
pub mod prelude {
    pub use bsom_dataset::{AppearanceModel, CorruptionConfig, DatasetConfig, SurveillanceDataset};
    pub use bsom_engine::{
        CheckpointError, EngineConfig, EngineError, MapRegistry, Recognizer, RegistryConfig,
        ServiceHealth, SomService, TenantId, Trainer,
    };
    pub use bsom_fpga::{FpgaBSom, FpgaConfig, ResourceReport};
    pub use bsom_serve::{SchedulerConfig, ServeClient, ServeConfig, Server};
    pub use bsom_signature::{BinaryVector, ColorHistogram, Rgb, TriStateVector, Trit};
    pub use bsom_som::{
        evaluate, BSom, BSomConfig, CSom, CSomConfig, LabelledSom, ObjectLabel, PackedLayer,
        SelfOrganizingMap, TrainSchedule,
    };
    pub use bsom_stats::{wilcoxon_rank_sum, Alternative};
    pub use bsom_vision::pipeline::SurveillancePipeline;
    pub use bsom_vision::scene::{SceneConfig, SceneSimulator};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_resolve() {
        // Compile-time smoke test: referencing one item from each re-export.
        let _ = crate::signature::SIGNATURE_BITS;
        let _ = crate::som::BSomConfig::paper_default();
        let _ = crate::fpga::FpgaConfig::paper_default();
        let _ = crate::dataset::DatasetConfig::paper_default();
        let _ = crate::stats::Alternative::Less;
    }
}
