//! Online learning under appearance drift: train while serving.
//!
//! The paper's FPGA keeps classifying while its weights adapt — there is no
//! "stop the world, retrain, redeploy" step. This example shows the software
//! equivalent with `SomService`: a surveillance scene whose lighting drifts
//! steadily (the wide-window problem of §IV), a `Trainer` that keeps feeding
//! labelled signatures and publishing snapshots, and a `Recognizer` whose
//! accuracy is measured **before and after** each published snapshot, so the
//! adaptation is visible phase by phase.
//!
//! Neuron labels track the drift automatically: the engine is configured
//! with `EngineConfig::with_label_half_life_steps`, so each recorded win's
//! weight fades exponentially with its age and stale-phase evidence loses
//! the per-neuron majority on its own — no manual
//! `Trainer::reset_label_stats` between phases.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_learning
//! ```

use bsom_repro::dataset::{AppearanceModel, CorruptionConfig};
use bsom_repro::prelude::*;
use bsom_repro::vision::scene::PersonModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The identity under lighting `offset`: the same person, every palette
/// colour uniformly brightened — how the afternoon sun through the paper's
/// wide windows shifts every histogram.
fn lit(model: &AppearanceModel, offset: i16) -> AppearanceModel {
    AppearanceModel {
        person: PersonModel {
            label: model.person.label,
            head: model.person.head.brightened(offset),
            torso: model.person.torso.brightened(offset),
            legs: model.person.legs.brightened(offset),
        },
        ..*model
    }
}

/// Samples `per_identity` labelled signatures of every identity at the given
/// lighting offset.
fn sample_batch(
    models: &[AppearanceModel],
    corruption: &CorruptionConfig,
    offset: i16,
    per_identity: usize,
    rng: &mut StdRng,
) -> Vec<(BinaryVector, ObjectLabel)> {
    let mut batch = Vec::with_capacity(models.len() * per_identity);
    for model in models {
        let drifted = lit(model, offset);
        for _ in 0..per_identity {
            batch.push((
                drifted.sample_signature(corruption, rng),
                ObjectLabel::new(model.label()),
            ));
        }
    }
    batch
}

/// Percentage of signatures whose prediction matches the ground-truth label.
fn accuracy(recognizer: &mut Recognizer, batch: &[(BinaryVector, ObjectLabel)]) -> f64 {
    let signatures: Vec<BinaryVector> = batch.iter().map(|(s, _)| s.clone()).collect();
    let predictions = recognizer.classify_batch(signatures);
    let correct = batch
        .iter()
        .zip(&predictions)
        .filter(|((_, label), prediction)| prediction.label() == Some(*label))
        .count();
    100.0 * correct as f64 / batch.len() as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let corruption = CorruptionConfig::mild();
    let identities = 5usize;
    let models: Vec<AppearanceModel> = (0..identities)
        .map(|i| AppearanceModel::generate(i, &mut rng))
        .collect();

    // --- Enrol at baseline lighting, then open the service for online
    //     learning: one packed layout, trained and served simultaneously. ---
    let enrolment = sample_batch(&models, &corruption, 0, 40, &mut rng);
    let som = BSom::new(BSomConfig::paper_default(), &mut rng);
    // A 200-step half-life: one adaptation phase below streams 400 labelled
    // signatures, so by the end of a phase the previous phase's wins carry
    // about a quarter of their original weight and fresh evidence rules the
    // per-neuron majorities.
    let (service, mut trainer) = SomService::train_while_serve(
        som,
        TrainSchedule::new(60),
        &enrolment,
        EngineConfig::default().with_label_half_life_steps(200),
    );
    trainer
        .train_epochs(&enrolment, 12, &mut rng)
        .expect("enrolment data present");
    let mut recognizer = service.recognizer();
    let baseline = accuracy(&mut recognizer, &enrolment);
    println!(
        "enrolled {identities} identities at baseline lighting: {baseline:.1}% on snapshot v{}",
        recognizer.version()
    );

    // --- The scene drifts: lighting ramps up phase by phase. Each phase
    //     first measures the *stale* snapshot on the drifted data, then
    //     streams two labelled epochs through the trainer (publishing on
    //     each epoch boundary) and measures again. ---
    println!("\nphase  lighting   stale snapshot        adapted snapshot");
    for phase in 1..=6 {
        let offset = (phase * 9) as i16;
        let eval = sample_batch(&models, &corruption, offset, 30, &mut rng);

        let before_version = recognizer.version();
        let before = accuracy(&mut recognizer, &eval);

        // No reset_label_stats here: the configured label decay fades the
        // previous phase's win counts on its own, so the labels follow the
        // drifted appearances as the fresh stream accumulates.
        let adaptation = sample_batch(&models, &corruption, offset, 40, &mut rng);
        trainer
            .train_epochs(&adaptation, 2, &mut rng)
            .expect("adaptation data present");

        let after = accuracy(&mut recognizer, &eval);
        println!(
            "  {phase}      +{offset:<3}      {before:5.1}% (v{before_version:<3})       {after:5.1}% (v{})",
            recognizer.version()
        );
    }

    println!(
        "\nthe recognizer never stopped serving: snapshots were swapped atomically \
         ({} published in total), classification always ran on a complete layer",
        service.version()
    );
}
