//! End-to-end surveillance pipeline (paper Fig. 1 / Fig. 6): synthetic video
//! frames -> background subtraction -> connected components -> tracking ->
//! colour histograms -> binary signatures -> bSOM identification.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example surveillance_pipeline
//! ```

use bsom_repro::prelude::*;
use bsom_repro::vision::pipeline::PipelineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Off-line phase: enrol the nine identities from appearance models. ---
    let dataset_config = DatasetConfig {
        train_instances: 600,
        test_instances: 1,
        ..DatasetConfig::paper_default()
    };
    let enrolment = SurveillanceDataset::generate(&dataset_config, &mut rng);
    let mut som = BSom::new(BSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&enrolment.train, TrainSchedule::new(20), &mut rng)
        .expect("enrolment data present");
    let classifier = LabelledSom::label(som, &enrolment.train);
    println!(
        "enrolled {} identities on a 40-neuron bSOM ({} neurons labelled)",
        enrolment.identity_count(),
        40 - classifier.unused_neurons()
    );

    // --- Live phase: run the synthetic scene through the vision pipeline. ---
    let scene_config = SceneConfig {
        entry_probability: 0.15,
        ..SceneConfig::small()
    };
    let mut scene = SceneSimulator::new(scene_config, &mut rng);
    let min_pixels = (scene.config().person_width * scene.config().person_height) / 4;
    let mut pipeline = SurveillancePipeline::with_config(
        scene.config().width,
        scene.config().height,
        PipelineConfig {
            min_object_pixels: Some(min_pixels),
            ..PipelineConfig::default()
        },
    );

    // Warm the background model on empty frames.
    for _ in 0..15 {
        let frame = scene.render_background_only(&mut rng);
        pipeline.observe_background(&frame);
    }

    let mut detections = 0usize;
    let mut identified = 0usize;
    for frame_index in 0..200u32 {
        let frame = scene.render_frame(&mut rng);
        for obs in pipeline.process_frame(&frame.image) {
            detections += 1;
            let prediction = classifier.classify(&obs.signature);
            if prediction.is_known() {
                identified += 1;
            }
            if detections % 25 == 1 {
                println!(
                    "frame {frame_index:4}: {} at ({:5.1},{:5.1}) area {:5} -> {}",
                    obs.track, obs.centroid.0, obs.centroid.1, obs.area, prediction
                );
            }
        }
    }

    println!(
        "\nprocessed {} frames, {} tracked detections, {} identified as known objects",
        pipeline.frames_processed(),
        detections,
        identified
    );
    println!(
        "note: the live scene uses colour palettes generated independently of the \
         enrolment set, so unknown verdicts are expected — the point of this example \
         is the full frame-to-identity data path."
    );
}
