//! The batched multi-core serving path: synthetic video frames -> vision
//! pipeline -> a `SomService` `Recognizer`'s sharded winner search ->
//! identities, plus the engine-vs-scalar-vs-FPGA throughput comparison.
//!
//! This is `surveillance_pipeline` upgraded to the engine: instead of
//! classifying each observation with the scalar per-neuron loop as it
//! appears, whole frame batches are classified in one sharded pass over the
//! plane-sliced competitive layer (DESIGN.md §"The batched engine layout").
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example surveillance_engine
//! ```

use std::time::Duration;

use bsom_repro::engine::{compare_recognition_throughput, EngineConfig, SomService};
use bsom_repro::prelude::*;
use bsom_repro::vision::pipeline::PipelineConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Off-line phase: enrol the nine identities (paper §V-F). ---
    let dataset_config = DatasetConfig {
        train_instances: 600,
        test_instances: 400,
        ..DatasetConfig::paper_default()
    };
    let enrolment = SurveillanceDataset::generate(&dataset_config, &mut rng);
    let mut som = BSom::new(BSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&enrolment.train, TrainSchedule::new(20), &mut rng)
        .expect("enrolment data present");
    let classifier = LabelledSom::label(som.clone(), &enrolment.train);

    // --- Snapshot the trained map into a serving service. ---
    let service = SomService::serve(&classifier, EngineConfig::default());
    let mut recognizer = service.recognizer();
    println!(
        "service: {} neurons x {} bits, {} workers, serving snapshot v{}",
        recognizer.snapshot().layer().neuron_count(),
        recognizer.snapshot().layer().vector_len(),
        service.worker_count(),
        recognizer.version()
    );

    // --- Live phase: batches of frames through the pipeline + engine. ---
    let scene_config = SceneConfig {
        entry_probability: 0.15,
        ..SceneConfig::small()
    };
    let mut scene = SceneSimulator::new(scene_config, &mut rng);
    let min_pixels = (scene.config().person_width * scene.config().person_height) / 4;
    let mut pipeline = SurveillancePipeline::with_config(
        scene.config().width,
        scene.config().height,
        PipelineConfig {
            min_object_pixels: Some(min_pixels),
            ..PipelineConfig::default()
        },
    );
    for _ in 0..15 {
        pipeline.observe_background(&scene.render_background_only(&mut rng));
    }

    let mut detections = 0usize;
    let mut identified = 0usize;
    for batch_index in 0..8 {
        // The camera delivers frames one by one; the server accumulates a
        // small batch and classifies all its objects in one sharded pass.
        let frames: Vec<_> = (0..25)
            .map(|_| scene.render_frame(&mut rng).image)
            .collect();
        let results = recognizer.process_frames(&mut pipeline, &frames);
        let batch_objects: usize = results.iter().map(Vec::len).sum();
        detections += batch_objects;
        for recognized in results.iter().flatten() {
            if recognized.prediction.is_known() {
                identified += 1;
            }
        }
        println!(
            "batch {batch_index}: {} frames, {} tracked objects classified",
            frames.len(),
            batch_objects
        );
    }
    println!(
        "\nprocessed {} frames, {} tracked detections, {} identified as known objects",
        pipeline.frames_processed(),
        detections,
        identified
    );

    // --- The §V-F question, answered mechanically: how do the software
    //     paths compare with the FPGA cycle model's signatures/s figure? ---
    let probe: Vec<BinaryVector> = enrolment.test.iter().map(|(s, _)| s.clone()).collect();
    let comparison = compare_recognition_throughput(
        &service,
        &som,
        &probe,
        FpgaConfig::paper_default(),
        Duration::from_millis(150),
    );
    println!("\n{comparison}");
}
