//! Cycle-accurate FPGA simulation (paper §V): initialise the design, train it
//! on-chip, inspect the block-level cycle budget, the resource utilisation of
//! the XC4VLX160 and the neuron weight images the VGA display block shows.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fpga_simulation
//! ```

use bsom_repro::fpga::{recognition_throughput, training_throughput, ResourceReport};
use bsom_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // Build the design at the paper's design point (Table III).
    let config = FpgaConfig::paper_default();
    let mut fpga = FpgaBSom::new(config, 0xB50A);
    let init = fpga.initialize();
    println!(
        "weight initialisation: {} cycles ({} neurons x {} bits, written in parallel)",
        init.total(),
        config.neurons,
        config.vector_len
    );

    // Train on-chip with a handful of synthetic signatures.
    let dataset = SurveillanceDataset::generate(
        &DatasetConfig {
            train_instances: 200,
            test_instances: 50,
            ..DatasetConfig::paper_default()
        },
        &mut rng,
    );
    let total = dataset.train.len();
    for (i, (signature, _)) in dataset.train.iter().enumerate() {
        fpga.train_pattern(signature, i, total)
            .expect("design initialised");
    }
    println!(
        "trained {} patterns on-chip in {} cycles = {:.4} s at 40 MHz",
        total,
        fpga.total_cycles() - init.total(),
        fpga.elapsed_secs()
    );

    // Classify a few held-out signatures and show the cycle breakdown.
    let outcome = fpga
        .classify(&dataset.test[0].0)
        .expect("design initialised");
    println!(
        "one recognition: load {} + hamming {} + wta {} = {} cycles -> winner neuron {}",
        outcome.cycles.load_cycles,
        outcome.cycles.hamming_cycles,
        outcome.cycles.wta_cycles,
        outcome.cycles.total(),
        outcome.winner.index
    );

    // Throughput derivation (§V-E / §V-F).
    let recognition = recognition_throughput(config);
    let training = training_throughput(config);
    println!(
        "throughput @40 MHz: {:.0} recognitions/s, {:.0} training patterns/s",
        recognition.patterns_per_second, training.patterns_per_second
    );

    // Resource utilisation (Table IV).
    let report = ResourceReport::for_bsom(config.neurons, config.vector_len);
    println!("\nXC4VLX160 utilisation (Table IV):\n{report}");

    // What the VGA display block shows: neuron weights as 32x24 binary images.
    let frames = fpga.display_frames();
    println!(
        "display block renders {} neuron images; neuron 0:",
        frames.len()
    );
    println!("{}", frames[0].to_ascii());
}
