//! Thousands of users, one process: a fleet of per-user bSOM maps behind
//! [`MapRegistry`].
//!
//! The paper trains one 40-neuron map per camera view; the "millions of
//! users" deployment story turns into *many small maps*, not one big one.
//! This example runs 100 independent tenants behind the registry facade:
//! every tenant gets its own map, its own RNG stream, its own version
//! counter — and the fair round-robin `train_tick` interleaves their
//! training on one thread while classify traffic keeps being served from
//! published snapshots.
//!
//! Traffic is deliberately skewed (a few hot tenants, a long cold tail),
//! and the registry's residency cap is set far below the tenant count, so
//! the LRU evictor keeps spilling cold tenants to validating checkpoint
//! frames on disk. The punchline: an evicted tenant is *indistinguishable*
//! from a resident one — touching it transparently reloads the spill frame
//! and classification picks up with bit-identical weights, which the
//! example proves by diffing a spilled tenant's map against a copy taken
//! before eviction.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_tenant
//! ```

use bsom_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TENANTS: usize = 100;
const NEURONS: usize = 12;
const VECTOR_LEN: usize = 256;
const LABELS: usize = 4;
const MAX_RESIDENT: usize = 16;
const ROUNDS: usize = 40;

/// Deterministic per-tenant example stream: the caller hands in tenant
/// `t`'s own seeded RNG, so every tenant trains toward a different map.
fn example(rng: &mut StdRng) -> (BinaryVector, ObjectLabel) {
    (
        BinaryVector::random(VECTOR_LEN, rng),
        ObjectLabel::new(rng.gen_range(0..LABELS)),
    )
}

fn main() {
    let spill_dir = std::env::temp_dir().join(format!("bsom-multi-tenant-{}", std::process::id()));
    std::fs::create_dir_all(&spill_dir).expect("the OS temp directory is writable");

    // A registry with a tight residency cap: at most 16 of the 100 tenants
    // keep their trainer in memory; the rest live as validating checkpoint
    // frames under the spill directory until traffic touches them again.
    let registry = MapRegistry::new(
        RegistryConfig::new(EngineConfig::with_workers(2))
            .with_max_resident(MAX_RESIDENT)
            .with_spill_dir(&spill_dir),
    );
    for t in 0..TENANTS {
        let som = BSom::new(
            BSomConfig::new(NEURONS, VECTOR_LEN),
            &mut StdRng::seed_from_u64(t as u64),
        );
        registry
            .create_tenant(t as u64, som, TrainSchedule::new(usize::MAX), &[])
            .expect("fresh tenant ids are unique");
    }
    println!(
        "created {TENANTS} tenants ({NEURONS} neurons x {VECTOR_LEN} bits each), \
         residency cap {MAX_RESIDENT}"
    );

    // Skewed traffic: tenant 0 is the hottest, the tail is nearly idle.
    // Zipf-ish without the ceremony — tenant t gets traffic with weight
    // 1/(1+t), sampled deterministically.
    let mut traffic_rng = StdRng::seed_from_u64(0x7EA7);
    let mut streams: Vec<StdRng> = (0..TENANTS)
        .map(|t| StdRng::seed_from_u64(0xFEED ^ t as u64))
        .collect();
    let weights: Vec<f64> = (0..TENANTS).map(|t| 1.0 / (1.0 + t as f64)).collect();
    let total_weight: f64 = weights.iter().sum();
    let pick_tenant = move |rng: &mut StdRng| -> usize {
        let mut roll = rng.gen::<f64>() * total_weight;
        for (t, w) in weights.iter().enumerate() {
            roll -= w;
            if roll <= 0.0 {
                return t;
            }
        }
        TENANTS - 1
    };

    for round in 0..ROUNDS {
        // ~200 feeds per round, skewed; then one budgeted tick trains a
        // fair slice of whatever queued and publishes every trained tenant.
        for _ in 0..200 {
            let t = pick_tenant(&mut traffic_rng);
            let (signature, label) = example(&mut streams[t]);
            registry
                .feed(t as u64, &signature, label)
                .expect("every tenant exists");
        }
        let report = registry.train_tick(128);
        assert!(report.failures.is_empty(), "tick failed: {report:?}");
        if round % 10 == 9 {
            let stats = registry.stats();
            println!(
                "round {:>2}: {:>5} steps trained, {:>4} pending, {:>2} resident, \
                 {:>3} evictions so far",
                round + 1,
                stats.steps_total,
                stats.pending_steps,
                stats.resident,
                stats.evictions_total
            );
        }
    }
    // Drain the backlog so every queued example becomes a training step.
    loop {
        let report = registry.train_tick(u64::MAX);
        assert!(report.failures.is_empty(), "drain tick failed: {report:?}");
        if report.steps == 0 {
            break;
        }
    }

    let stats = registry.stats();
    println!(
        "fleet settled: {} steps total, {} resident of {} tenants, \
         {} evictions, {} reloads",
        stats.steps_total,
        stats.resident,
        stats.tenants,
        stats.evictions_total,
        stats.reloads_total
    );
    assert!(
        stats.resident <= MAX_RESIDENT,
        "residency cap violated at rest"
    );
    assert!(
        stats.evictions_total > 0,
        "a 16-slot cap over 100 tenants must have evicted someone"
    );

    // The eviction round-trip, made explicit: pick a cold tenant, copy its
    // map, force it out, prove the spill frame brings back the same bits.
    let cold = (TENANTS - 1) as u64;
    let before = registry.tenant_som(cold).expect("cold tenant exists");
    let version_before = registry.version(cold).expect("cold tenant exists");
    registry.evict(cold).expect("a healthy tenant evicts");
    assert!(
        !registry.is_resident(cold).expect("cold tenant exists"),
        "tenant should be spilled now"
    );
    // Classify traffic against the evicted tenant transparently reloads it.
    let probe = vec![BinaryVector::random(
        VECTOR_LEN,
        &mut StdRng::seed_from_u64(0x0B5E),
    )];
    let predictions = registry
        .classify(cold, probe)
        .expect("an evicted tenant still serves");
    let after = registry.tenant_som(cold).expect("cold tenant exists");
    assert_eq!(
        before, after,
        "the spill round-trip must be bit-identical (weights, config, RNG stream)"
    );
    assert_eq!(
        registry.version(cold).expect("cold tenant exists"),
        version_before,
        "reloading is not a new version — nothing trained"
    );
    println!(
        "eviction round-trip: tenant {cold} spilled, reloaded on touch, \
         map bit-identical at version {version_before}, predicted {:?}",
        predictions[0]
    );

    let _ = std::fs::remove_dir_all(&spill_dir);
}
