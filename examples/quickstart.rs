//! Quickstart: build signatures, train a bSOM, label it and identify objects.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bsom_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. A colour histogram and its binary signature (paper Fig. 2 / Eq. 1-2).
    let mut histogram = ColorHistogram::new();
    for i in 0..2000u32 {
        // A "person" dressed mostly in red with dark trousers.
        let pixel = if i % 3 == 0 {
            Rgb::new(40, 40, 60)
        } else {
            Rgb::new(200, 30, 30)
        };
        histogram.add_pixel(pixel);
    }
    let signature = histogram.to_signature();
    println!(
        "histogram of {} pixels -> 768-bit signature with {} bits set (theta = {:.2})",
        histogram.pixel_count(),
        signature.count_ones(),
        histogram.mean_threshold()
    );

    // 2. A synthetic nine-person surveillance dataset (paper §IV).
    let config = DatasetConfig {
        train_instances: 600,
        test_instances: 300,
        ..DatasetConfig::paper_default()
    };
    let dataset = SurveillanceDataset::generate(&config, &mut rng);
    println!(
        "dataset: {} train / {} test signatures over {} identities",
        dataset.train.len(),
        dataset.test.len(),
        dataset.identity_count()
    );

    // 3. Train the tri-state bSOM (Table III configuration) and label it.
    let mut som = BSom::new(BSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(20), &mut rng)
        .expect("training data is non-empty");
    let classifier = LabelledSom::label(som, &dataset.train);
    println!(
        "bSOM trained: {} of 40 neurons labelled, mean purity {:.2}",
        40 - classifier.unused_neurons(),
        classifier.mean_purity()
    );

    // 4. Evaluate on the held-out split (the Table I metric).
    let evaluation = evaluate(&classifier, &dataset.test);
    println!("recognition accuracy: {evaluation}");

    // 5. Serve the classifier: `SomService` snapshots it into the packed
    //    layout and shards batches across a worker pool. (For *online*
    //    learning — training while serving — see examples/online_learning.rs.)
    let service = SomService::serve(&classifier, EngineConfig::default());
    let mut recognizer = service.recognizer();
    let probes: Vec<_> = dataset
        .test
        .iter()
        .take(5)
        .map(|(s, _)| s.clone())
        .collect();
    let predictions = recognizer.classify_batch(&probes);
    for ((_, actual), prediction) in dataset.test.iter().zip(&predictions) {
        println!("probe of {actual} identified as {prediction}");
    }
}
