//! Crash-safe checkpointing: train, checkpoint, "crash", resume, compare.
//!
//! The paper's FPGA holds its weights in BlockRAM — power-cycle the board
//! and the trained map is gone unless it was exported. The software engine's
//! answer is [`Trainer::write_checkpoint`]: a length-prefixed, checksummed,
//! atomically-renamed frame holding the **entire** training state (weights
//! with `#`-counts, xorshift64* RNG position, schedule clock, decayed label
//! statistics, engine config). This example
//!
//! 1. trains a service online on a synthetic surveillance dataset,
//! 2. writes a checkpoint mid-run and then simulates a crash by dropping
//!    the service and trainer,
//! 3. resumes with [`SomService::resume_from_checkpoint`],
//! 4. finishes training on BOTH a resumed run and an uninterrupted
//!    reference run, and
//! 5. prints the accuracies side by side — identical to the last digit,
//!    because the resume is bit-identical (same weights, same RNG stream,
//!    same winners).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use bsom_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Accuracy of whatever snapshot the service currently serves, over a
/// labelled test set.
fn served_accuracy(service: &SomService, test: &[(BinaryVector, ObjectLabel)]) -> f64 {
    let signatures: Vec<BinaryVector> = test.iter().map(|(s, _)| s.clone()).collect();
    let predictions = service.recognizer().classify_batch(&signatures);
    let correct = predictions
        .iter()
        .zip(test)
        .filter(|(prediction, (_, label))| prediction.label() == Some(*label))
        .count();
    100.0 * correct as f64 / test.len() as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2010);
    let dataset = SurveillanceDataset::generate(
        &DatasetConfig {
            train_instances: 400,
            test_instances: 200,
            ..DatasetConfig::paper_default()
        },
        &mut rng,
    );
    let config = EngineConfig::with_workers(2).with_publish_every_steps(50);
    let schedule = TrainSchedule::new(8);
    let checkpoint_path = std::env::temp_dir().join("bsom-crash-recovery-example.ckpt");
    let crash_at = dataset.train.len() / 2;

    // ---- Reference: the run that never crashes. -------------------------
    let mut som_rng = StdRng::seed_from_u64(7);
    let som = BSom::new(BSomConfig::paper_default(), &mut som_rng);
    let (reference_service, mut reference_trainer) =
        SomService::train_while_serve(som.clone(), schedule, &[], config);
    for (signature, label) in &dataset.train {
        reference_trainer.feed(signature, *label).unwrap();
    }
    reference_trainer.publish();
    let reference_accuracy = served_accuracy(&reference_service, &dataset.test);

    // ---- The crashing run: train half, checkpoint, "crash". -------------
    let (service, mut trainer) = SomService::train_while_serve(som, schedule, &[], config);
    for (signature, label) in &dataset.train[..crash_at] {
        trainer.feed(signature, *label).unwrap();
    }
    trainer.publish();
    let accuracy_at_checkpoint = served_accuracy(&service, &dataset.test);
    let info = trainer.write_checkpoint(&checkpoint_path).unwrap();
    println!(
        "checkpoint written: {} bytes at snapshot v{} after {} steps",
        info.bytes,
        info.version,
        trainer.steps_run()
    );

    // Simulate the crash: every handle is dropped, the process state is
    // gone; only the checkpoint file survives.
    drop((service, trainer));

    // ---- Resume and finish the run. --------------------------------------
    let (service, mut trainer) =
        SomService::resume_from_checkpoint(&checkpoint_path).expect("checkpoint must load");
    println!(
        "resumed at snapshot v{} with {} steps already run",
        service.version(),
        trainer.steps_run()
    );
    let accuracy_after_resume = served_accuracy(&service, &dataset.test);
    for (signature, label) in &dataset.train[crash_at..] {
        trainer.feed(signature, *label).unwrap();
    }
    trainer.publish();
    let final_accuracy = served_accuracy(&service, &dataset.test);

    println!();
    println!("accuracy at checkpoint        : {accuracy_at_checkpoint:6.2} %");
    println!("accuracy right after resume   : {accuracy_after_resume:6.2} % (same snapshot, republished)");
    println!("accuracy after finishing      : {final_accuracy:6.2} %");
    println!("uninterrupted reference       : {reference_accuracy:6.2} %");
    println!();
    println!("service health after the run  : {:?}", service.health());

    assert_eq!(
        accuracy_at_checkpoint, accuracy_after_resume,
        "resume must serve the checkpointed labelling unchanged"
    );
    assert_eq!(
        final_accuracy, reference_accuracy,
        "a resumed run must be bit-identical to one that never crashed"
    );
    println!("crash-recovery run matches the uninterrupted reference bit for bit");

    std::fs::remove_file(&checkpoint_path).ok();
}
