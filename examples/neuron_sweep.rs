//! Neuron-count sweep (paper §IV): recognition accuracy of the bSOM and the
//! cSOM as the competitive layer grows from 10 to 100 neurons, including the
//! number of neurons that never win a training signature.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example neuron_sweep
//! ```

use bsom_repro::eval::neuron_sweep::{run, NeuronSweepConfig};
use bsom_repro::prelude::DatasetConfig;

fn main() {
    // A reduced dataset keeps the sweep to well under a minute on one core;
    // pass-through of the paper's shape (both maps improve with neurons and
    // clear 90 % above ~50) is what matters here.
    let config = NeuronSweepConfig {
        neuron_counts: (1..=10).map(|i| i * 10).collect(),
        iterations: 20,
        dataset: DatasetConfig {
            train_instances: 600,
            test_instances: 300,
            ..DatasetConfig::paper_default()
        },
        seed: 90,
    };
    println!(
        "sweeping {} network sizes over a {}-train / {}-test dataset...",
        config.neuron_counts.len(),
        config.dataset.train_instances,
        config.dataset.test_instances
    );
    let result = run(&config);
    println!("{}", result.render());

    if let Some(first_above_90) = result
        .rows
        .iter()
        .find(|r| r.bsom_accuracy > 90.0 && r.csom_accuracy > 90.0)
    {
        println!(
            "both maps exceed 90% from {} neurons upward (paper: above 50 neurons)",
            first_above_90.neurons
        );
    } else {
        println!("neither map reached 90% in this reduced-size run");
    }
}
