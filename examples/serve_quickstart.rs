//! The serving front-end, end to end, in one process: a train-while-serve
//! `SomService` behind the TCP wire protocol, a client classifying over a
//! real socket, and the overload path exercised on purpose.
//!
//! The walk-through:
//!
//! 1. build a small labelled corpus and start a `SomService` seeded with it;
//! 2. bind a `Server` on a loopback port 0 (the scheduler defaults to
//!    adaptive micro-batching);
//! 3. keep training: feed more labelled signatures and publish a snapshot —
//!    the served map moves *while the server is up*;
//! 4. classify over the wire and check the answers against the in-process
//!    `Recognizer` on the same snapshot — bit-identical, not approximately
//!    equal;
//! 5. hammer a deliberately tiny scheduler queue with pipelined requests
//!    until admission control sheds load (typed `Overloaded` responses, not
//!    dropped connections), and read the health endpoint before and after;
//! 6. show the service recovered, then drain gracefully.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve_quickstart
//! ```

use std::net::SocketAddr;

use bsom_repro::prelude::*;
use bsom_repro::serve::wire::WireMessage;
use bsom_repro::serve::{ClientError, SchedulerConfig, ServeClient, ServeConfig, Server};
use bsom_repro::som::{Prediction, TrainSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VECTOR_LEN: usize = 768;
const LABELS: usize = 4;

/// A labelled corpus of `per_label` noisy variants around one random
/// prototype per label — the stand-in for real appearance signatures.
fn corpus(rng: &mut StdRng, per_label: usize) -> Vec<(BinaryVector, ObjectLabel)> {
    let mut data = Vec::new();
    for label in 0..LABELS {
        let prototype = BinaryVector::random(VECTOR_LEN, rng);
        for _ in 0..per_label {
            let mut variant = prototype.clone();
            for _ in 0..24 {
                let bit = rng.gen_range(0..VECTOR_LEN);
                variant.set(bit, !variant.bit(bit));
            }
            data.push((variant, ObjectLabel::new(label)));
        }
    }
    data
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let seed_data = corpus(&mut rng, 24);

    // 1. A service seeded with the corpus: neuron labels come from the seed
    //    wins, and the trainer keeps feeding afterwards.
    let som = BSom::new(BSomConfig::new(64, VECTOR_LEN), &mut rng);
    let (service, mut trainer) = SomService::train_while_serve(
        som,
        TrainSchedule::new(usize::MAX),
        &seed_data,
        EngineConfig::default(),
    );
    let service = std::sync::Arc::new(service);
    let mut recognizer = service.recognizer();

    // 2. Bind the wire front-end. A tiny pending queue makes step 5's
    //    overload reachable with a few hundred pipelined requests; a real
    //    deployment would keep the default 1024.
    let server = Server::bind(
        std::sync::Arc::clone(&service),
        "127.0.0.1:0",
        ServeConfig {
            scheduler: SchedulerConfig {
                queue_capacity: 4,
                ..SchedulerConfig::default()
            },
            ..ServeConfig::default()
        },
        None,
    )
    .expect("bind a loopback port");
    let addr: SocketAddr = server.local_addr();
    println!("serving on {addr}");

    // 3. The map moves while the server is up: feed fresh signatures and
    //    publish. Every classify after this sees the new snapshot version.
    let before = service.version();
    for (signature, label) in corpus(&mut rng, 8) {
        trainer.feed(&signature, label).expect("feed");
    }
    trainer.publish();
    println!(
        "trainer published snapshot v{} (was v{before})",
        service.version()
    );

    // 4. Classify over the wire; the engine's own recognizer is the truth.
    let probes: Vec<BinaryVector> = corpus(&mut rng, 4).into_iter().map(|(v, _)| v).collect();
    let mut client = ServeClient::connect(addr).expect("connect");
    let over_wire = client.classify(&probes).expect("classify over the wire");
    let direct = recognizer.classify_batch(probes.clone());
    assert_eq!(over_wire, direct, "wire answers are bit-identical");
    let known = over_wire
        .iter()
        .filter(|p| matches!(p, Prediction::Known { .. }))
        .count();
    println!(
        "classified {} probes over the wire ({known} known), answers bit-identical to in-process",
        probes.len()
    );

    let health = client.health().expect("health");
    println!(
        "health before overload: snapshot v{}, {}/{} workers, scheduler queue {}/{}, shed so far {}",
        health.snapshot_version,
        health.workers_alive,
        health.workers_configured,
        health.scheduler_pending,
        health.scheduler_capacity,
        health.requests_shed
    );

    // 5. The overload hammer: pipeline far more work than the queue admits.
    //    Shed requests come back as typed Overloaded responses on the same
    //    connection, in order — no disconnects, no silent drops.
    let burst: Vec<BinaryVector> = probes.iter().cycle().take(48).cloned().collect();
    let (mut send, mut recv) = ServeClient::connect(addr).expect("connect").split();
    let requests = 400usize;
    for _ in 0..requests {
        send.send_classify(&burst).expect("pipelined send");
    }
    let (mut ok, mut shed) = (0usize, 0usize);
    for _ in 0..requests {
        match recv.recv().expect("response").expect("not EOF") {
            WireMessage::ClassifyResponse { .. } => ok += 1,
            WireMessage::OverloadedResponse { .. } => shed += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    println!("overload hammer: {ok} served, {shed} shed with a typed Overloaded response");

    let health = client.health().expect("health");
    println!(
        "health after overload: scheduler queue {}/{}, shed total {}, coalesce delay {} us",
        health.scheduler_pending,
        health.scheduler_capacity,
        health.requests_shed,
        health.coalesce_delay_micros
    );

    // 6. Load has subsided: the very next classify succeeds — overload is a
    //    state, not a death. Then drain gracefully and shut down.
    match client.classify(&probes) {
        Ok(recovered) => {
            assert_eq!(recovered, direct);
            println!("recovery classify succeeded on the first try");
        }
        Err(ClientError::Overloaded { .. }) => {
            println!("still overloaded right after the burst (tight timing) — retrying");
            let recovered = client.classify(&probes).expect("second try succeeds");
            assert_eq!(recovered, direct);
        }
        Err(error) => panic!("recovery classify failed: {error}"),
    }

    let summary = client.drain().expect("drain");
    server.join();
    println!(
        "drained: {} in-flight requests flushed, final snapshot v{}",
        summary.requests_flushed, summary.final_version
    );
}
