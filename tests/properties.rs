//! Cross-crate property-based tests on the system-level invariants.

use bsom_repro::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy producing an arbitrary 768-bit signature with plausible sparsity.
fn signature() -> impl Strategy<Value = BinaryVector> {
    prop::collection::vec(any::<bool>(), 768).prop_map(BinaryVector::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The FPGA model and the software map agree on every input, whatever the
    /// weights and signature.
    #[test]
    fn fpga_and_software_always_agree(seed in 0u64..1000, input in signature()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let som = BSom::new(BSomConfig::new(16, 768), &mut rng);
        let mut fpga = FpgaBSom::from_trained(&som);
        let sw = som.winner(&input).unwrap();
        let hw = fpga.classify(&input).unwrap();
        prop_assert_eq!(hw.winner.index, sw.index);
        prop_assert_eq!(hw.winner.distance, sw.distance);
    }

    /// The winner's distance is a true minimum over all neuron distances.
    #[test]
    fn winner_distance_is_minimal(seed in 0u64..1000, input in signature()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let som = BSom::new(BSomConfig::new(12, 768), &mut rng);
        let winner = som.winner(&input).unwrap();
        let distances = som.distances(&input).unwrap();
        let min = distances.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert_eq!(winner.distance, min);
    }

    /// Training never changes the shape of the map and never makes an exact
    /// repeat of the trained pattern fail to match perfectly at the end.
    #[test]
    fn training_on_one_pattern_converges(seed in 0u64..500, input in signature()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut som = BSom::new(BSomConfig::new(8, 768), &mut rng);
        som.train(std::slice::from_ref(&input), TrainSchedule::new(30), &mut rng).unwrap();
        prop_assert_eq!(som.neuron_count(), 8);
        let winner = som.winner(&input).unwrap();
        prop_assert_eq!(winner.distance, 0.0);
    }

    /// Histogram signatures never exceed the bin count and always set the
    /// maximal bin of each channel.
    #[test]
    fn histogram_signature_invariants(
        pixels in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..400)
    ) {
        let hist: ColorHistogram = pixels.iter().map(|&(r, g, b)| Rgb::new(r, g, b)).collect();
        let sig = hist.to_signature();
        prop_assert_eq!(sig.len(), 768);
        prop_assert!(sig.count_ones() >= 3);
        // The largest bin in each channel is >= mean, hence set.
        for (channel, bins) in [hist.red(), hist.green(), hist.blue()].iter().enumerate() {
            let max_bin = bins
                .iter()
                .enumerate()
                .max_by_key(|(_, &c)| c)
                .map(|(i, _)| i)
                .unwrap();
            prop_assert!(sig.bit(channel * 256 + max_bin));
        }
    }

    /// The Wilcoxon test is antisymmetric in its arguments.
    #[test]
    fn wilcoxon_is_antisymmetric(
        a in prop::collection::vec(0.0f64..100.0, 5..12),
        b in prop::collection::vec(0.0f64..100.0, 5..12),
    ) {
        let ab = wilcoxon_rank_sum(&a, &b, Alternative::TwoSided);
        let ba = wilcoxon_rank_sum(&b, &a, Alternative::TwoSided);
        prop_assert!((ab.z + ba.z).abs() < 1e-9);
        prop_assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }
}
