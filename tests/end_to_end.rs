//! Cross-crate integration tests: the full identification flow from
//! signatures through training, labelling, FPGA deployment and evaluation.

use bsom_repro::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_dataset(seed: u64) -> SurveillanceDataset {
    let config = DatasetConfig {
        train_instances: 300,
        test_instances: 150,
        ..DatasetConfig::paper_default()
    };
    SurveillanceDataset::generate(&config, &mut StdRng::seed_from_u64(seed))
}

#[test]
fn bsom_learns_the_nine_identity_task_well_above_chance() {
    let mut rng = StdRng::seed_from_u64(1);
    let dataset = small_dataset(10);
    let mut som = BSom::new(BSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(15), &mut rng)
        .unwrap();
    let classifier = LabelledSom::label(som, &dataset.train);
    let eval = evaluate(&classifier, &dataset.test);
    // Chance on nine classes is ~11 %; the paper operates around 85 %.
    assert!(
        eval.accuracy_percent() > 60.0,
        "bSOM accuracy {:.2}% is implausibly low",
        eval.accuracy_percent()
    );
}

#[test]
fn csom_baseline_reaches_comparable_accuracy() {
    let mut rng = StdRng::seed_from_u64(2);
    let dataset = small_dataset(11);
    let mut som = CSom::new(CSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(15), &mut rng)
        .unwrap();
    let classifier = LabelledSom::label(som, &dataset.train);
    let eval = evaluate(&classifier, &dataset.test);
    assert!(
        eval.accuracy_percent() > 60.0,
        "cSOM accuracy {:.2}% is implausibly low",
        eval.accuracy_percent()
    );
}

#[test]
fn fpga_model_classifies_identically_to_the_software_map_it_was_loaded_from() {
    let mut rng = StdRng::seed_from_u64(3);
    let dataset = small_dataset(12);
    let mut som = BSom::new(BSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(10), &mut rng)
        .unwrap();

    let mut fpga = FpgaBSom::from_trained(&som);
    for (signature, _) in dataset.test.iter().take(100) {
        let sw = som.winner(signature).unwrap();
        let hw = fpga.classify(signature).unwrap();
        assert_eq!(hw.winner.index, sw.index);
        assert_eq!(hw.winner.distance, sw.distance);
        assert_eq!(hw.cycles.total(), 768 + 768 + 7);
    }
}

#[test]
fn fpga_on_chip_training_also_learns_the_task() {
    // Train entirely on the cycle-accurate model (undamped rule) and check
    // the result is still a usable classifier when labelled.
    let dataset = small_dataset(13);
    let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 0xF00D);
    fpga.initialize();
    let total = dataset.train.len() * 5;
    for epoch in 0..5 {
        for (i, (signature, _)) in dataset.train.iter().enumerate() {
            fpga.train_pattern(signature, epoch * dataset.train.len() + i, total)
                .unwrap();
        }
    }
    let som = fpga.to_software().unwrap();
    let classifier = LabelledSom::label(som, &dataset.train);
    let eval = evaluate(&classifier, &dataset.test);
    assert!(
        eval.accuracy_percent() > 40.0,
        "on-chip trained accuracy {:.2}%",
        eval.accuracy_percent()
    );
}

#[test]
fn vision_pipeline_signatures_feed_directly_into_the_bsom() {
    let mut rng = StdRng::seed_from_u64(5);
    let scene_config = SceneConfig {
        entry_probability: 0.5,
        jitter: 0,
        ..SceneConfig::small()
    };
    let data = bsom_repro::dataset::from_scene(scene_config, 150, 10, &mut rng);
    assert!(!data.is_empty(), "the scene should produce observations");

    // Train a small map on the pipeline output and check it classifies its
    // own training data far better than chance.
    let mut som = BSom::new(BSomConfig::new(20, 768), &mut rng);
    som.train_labelled_data(&data, TrainSchedule::new(10), &mut rng)
        .unwrap();
    let classifier = LabelledSom::label(som, &data);
    let eval = evaluate(&classifier, &data);
    assert!(
        eval.accuracy_percent() > 50.0,
        "self-accuracy {:.2}%",
        eval.accuracy_percent()
    );
}

#[test]
fn unknown_rejection_threshold_rejects_unrelated_signatures() {
    let mut rng = StdRng::seed_from_u64(6);
    let dataset = small_dataset(14);
    let mut som = BSom::new(BSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(10), &mut rng)
        .unwrap();
    let classifier =
        LabelledSom::label(som, &dataset.train).calibrate_threshold(&dataset.train, 1.0);

    // All-ones is nothing like a sparse histogram signature.
    let alien = BinaryVector::ones(768);
    assert_eq!(
        classifier.classify(&alien).label(),
        None,
        "an alien signature should be rejected as unknown"
    );
    // Genuine test signatures are mostly accepted.
    let accepted = dataset
        .test
        .iter()
        .filter(|(s, _)| classifier.classify(s).is_known())
        .count();
    assert!(accepted * 2 > dataset.test.len());
}

#[test]
fn table_one_smoke_protocol_runs_end_to_end_with_statistics() {
    use bsom_repro::eval::{table1, table2};
    let t1 = table1::run(&table1::Table1Config::smoke());
    let t2 = table2::run(&t1);
    assert_eq!(t1.rows.len(), t2.rows.len());
    for row in &t2.rows {
        assert!(row.p_value >= 0.0 && row.p_value <= 1.0);
    }
}

#[test]
fn resource_and_timing_claims_hold_together() {
    use bsom_repro::fpga::{recognition_throughput, ResourceReport};
    let report = ResourceReport::for_bsom(40, 768);
    assert!(report.fits(), "the design must fit the XC4VLX160");
    let throughput = recognition_throughput(FpgaConfig::paper_default());
    assert!(throughput.patterns_per_second >= 25_000.0);
}
