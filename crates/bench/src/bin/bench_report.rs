//! Machine-readable performance tracking for the hot paths.
//!
//! Writes `BENCH_train.json` (training steps/s across the three datapaths —
//! bit-serial, per-neuron word-parallel, plane-sliced window — plus the
//! speedup ratios), `BENCH_recognition.json` (signatures/s, scalar vs
//! batched vs engine, speedups, FPGA cycle-model comparison, and the
//! per-dispatch distance-pass figures for every SIMD lowering the machine
//! can run) and
//! `BENCH_large_map.json` (copy-on-write publish cadence, tournament
//! winner-search throughput and crash-safe checkpoint write/restore
//! throughput at the 1024-neuron × 768-bit scale target) and
//! `BENCH_serve.json` (the TCP serving front-end: wire throughput vs
//! in-process on large batches, and the adaptive micro-batching scheduler
//! vs batch-of-one dispatch on a small-request mix, measured against a live
//! server with a concurrently publishing trainer) and
//! `BENCH_registry.json` (the multi-tenant facade: registry feed+tick
//! steps/s vs a bare trainer, facade classify throughput, and the
//! evict+reload spill round-trip rate across a 64-tenant fleet) so
//! the perf trajectory of the repo is tracked by numbers rather than prose.
//! CI runs it in `--smoke` mode to keep the reporter itself from rotting;
//! committed snapshots come from full runs.
//!
//! `--check` turns the reporter into a **regression gate**: instead of only
//! writing fresh files, it also loads the committed baselines and fails when
//! any measured figure falls below `baseline × (1 − band)`. Improvements
//! beyond `baseline × (1 + band)` are reported as a prompt to re-baseline
//! (re-run without `--smoke` and commit the refreshed files) but do not
//! fail, since a faster machine or build must never break CI. Absolute
//! throughputs only guard same-machine runs; the dimensionless speedup
//! ratios stay meaningful across machines, which is what heterogeneous CI
//! leans on (see README §"Benchmarks" for the band semantics and the
//! per-runner baseline workflow).
//!
//! ```text
//! bench_report [--smoke] [--out DIR] [--check] [--noise-band F]
//!              [--baseline-dir DIR] [--baseline FILE]... [--only KEY]...
//!
//!   --smoke          short measurement windows (CI liveness check, noisy numbers)
//!   --out            directory to write the JSON files into (default: .)
//!   --check          compare fresh numbers against the committed baselines
//!   --noise-band     allowed relative deviation before --check fails (default: 0.25)
//!   --baseline-dir   where the committed BENCH_*.json live (default: .)
//!   --baseline       per-runner baseline file override, repeatable; the file
//!                    name decides which report it replaces (a name containing
//!                    "train" overrides BENCH_train.json, "recognition",
//!                    "large", "serve" or "registry" the others) — point this
//!                    at e.g. baselines/ci-runner/BENCH_train.json to gate a
//!                    specific runner against its own committed numbers
//!   --only           measure (and check, and write) only the named report:
//!                    one of "train", "recognition", "large", "serve",
//!                    "registry"; repeatable — the default is all five
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use bsom_bench::bench_dataset;
use bsom_engine::{
    compare_checkpoint_throughput, compare_dispatch_throughput, compare_large_map_throughput,
    compare_recognition_throughput, compare_registry_throughput, compare_training_throughput,
    CheckpointThroughputComparison, DispatchThroughputComparison, EngineConfig,
    LargeMapThroughputComparison, RegistryThroughputComparison, SomService, ThroughputComparison,
    TrainThroughputComparison,
};
use bsom_fpga::FpgaConfig;
use bsom_serve::bench::{measure_serve, ServeBenchConfig, ServeBenchReport};
use bsom_som::{BSomConfig, LabelledSom, SelfOrganizingMap, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The `BENCH_train.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct TrainBenchReport {
    /// `"smoke"` or `"full"` — smoke numbers are liveness checks, not data.
    mode: String,
    /// Seconds of wall clock spent per measured path.
    min_duration_seconds: f64,
    /// The raw three-path comparison (steps/s each way) at the paper's
    /// maximum neighbourhood radius.
    comparison: TrainThroughputComparison,
    /// Production (window) steps/s over bit-serial steps/s.
    speedup_window_over_bit_serial: f64,
    /// Window steps/s over the per-neuron word-parallel path — the
    /// neighbourhood-broadcast acceptance ratio (floor 2x at radius ≥ 2).
    speedup_window_over_per_neuron: f64,
}

/// The `BENCH_recognition.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct RecognitionBenchReport {
    /// `"smoke"` or `"full"`.
    mode: String,
    /// Seconds of wall clock spent per measured path.
    min_duration_seconds: f64,
    /// Scalar / batched / engine signatures-per-second plus the FPGA model.
    comparison: ThroughputComparison,
    /// Per-dispatch distance-pass throughput at the 1024 × 768 scale shape:
    /// the same plane-sliced pass through every kernel lowering the machine
    /// can run (DESIGN.md §"Wide-lane kernels and dispatch").
    dispatch: DispatchThroughputComparison,
    /// Single-thread plane-sliced search over the scalar loop.
    speedup_batched_over_scalar: f64,
    /// Sharded engine over the scalar loop.
    speedup_engine_over_scalar: f64,
    /// Widest available lowering over the forced-scalar distance pass — the
    /// raw worth of the SIMD widening on this machine.
    speedup_widest_dispatch_over_scalar: f64,
}

/// The `BENCH_large_map.json` document: the 1024-neuron × 768-bit shape the
/// ROADMAP scales to, gating the copy-on-write publish cost and the
/// tournament winner-search throughput.
#[derive(Debug, Serialize, Deserialize)]
struct LargeMapBenchReport {
    /// `"smoke"` or `"full"`.
    mode: String,
    /// Seconds of wall clock spent per measured path.
    min_duration_seconds: f64,
    /// Publish (CoW vs deep re-pack) and search (tournament vs linear)
    /// costs at the large-map shape.
    comparison: LargeMapThroughputComparison,
    /// Train-step-plus-CoW-publish cadence over a deep re-pack.
    publish_speedup_over_repack: f64,
    /// Tournament over linear-scan search throughput (≈ 1.0: both share the
    /// dominating distance pass).
    tournament_vs_linear_search: f64,
    /// Crash-safe checkpoint commit and restore throughput at the same
    /// shape — the durability cost model (frame + fsync + atomic rename on
    /// the write side, decode + validate + service re-spawn on the restore
    /// side; DESIGN.md §"Fault model and recovery").
    checkpoint: CheckpointThroughputComparison,
}

/// The `BENCH_serve.json` document: the TCP serving front-end measured
/// against a live loopback server while a trainer publishes snapshots
/// concurrently — large-batch wire throughput vs the same-shape in-process
/// `classify_batch`, and the adaptive micro-batching scheduler vs
/// batch-of-one dispatch on a singleton-request mix.
#[derive(Debug, Serialize, Deserialize)]
struct ServeBenchDocument {
    /// `"smoke"` or `"full"` — the serve legs clamp their windows to a
    /// floor regardless, so the adaptive scheduler has room to converge.
    mode: String,
    /// Seconds of wall clock requested per measured leg (before the clamp).
    min_duration_seconds: f64,
    /// The measured legs, latencies included.
    comparison: ServeBenchReport,
}

/// The `BENCH_registry.json` document: the multi-tenant facade measured
/// across a 64-tenant fleet of paper-sized maps — what the slab lookup,
/// per-tenant FIFO and round-robin tick charge per training step next to a
/// bare trainer, plus facade classify throughput and the spill (evict +
/// validating reload) round-trip rate.
#[derive(Debug, Serialize, Deserialize)]
struct RegistryBenchReport {
    /// `"smoke"` or `"full"`.
    mode: String,
    /// Seconds of wall clock spent per measured leg.
    min_duration_seconds: f64,
    /// The four registry legs (direct steps, registry steps, classify,
    /// spill round-trips).
    comparison: RegistryThroughputComparison,
    /// Registry feed+tick steps/s over direct trainer steps/s — the
    /// dimensionless facade tax the gate leans on across machines.
    registry_step_overhead: f64,
}

/// Which reports to measure, check and write — `--only` narrows the set.
#[derive(Clone, Copy)]
struct Selection {
    train: bool,
    recognition: bool,
    large: bool,
    serve: bool,
    registry: bool,
}

/// One named figure compared against its committed baseline: an absolute
/// throughput (meaningful when the run and the baseline share a machine) or
/// a dimensionless speedup ratio (meaningful across machines too).
struct CheckedFigure {
    name: &'static str,
    baseline: f64,
    fresh: f64,
}

/// Renders a figure compactly whether it is a big throughput or a small
/// speedup ratio.
fn fmt_figure(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}")
    } else {
        format!("{value:.2}")
    }
}

/// Compares every figure against its baseline within the noise band.
/// Returns the number of regressions (each printed as it is found).
fn check_figures(figures: &[CheckedFigure], band: f64) -> usize {
    let mut regressions = 0usize;
    for figure in figures {
        let ratio = figure.fresh / figure.baseline.max(f64::MIN_POSITIVE);
        if ratio < 1.0 - band {
            regressions += 1;
            eprintln!(
                "bench_report: REGRESSION {}: {} is {:.1}% of the committed {} \
                 (allowed floor {:.1}%)",
                figure.name,
                fmt_figure(figure.fresh),
                ratio * 100.0,
                fmt_figure(figure.baseline),
                (1.0 - band) * 100.0
            );
        } else if ratio > 1.0 + band {
            println!(
                "bench_report: note: {} improved to {:.1}% of the committed baseline — \
                 consider re-baselining (full run, commit the refreshed BENCH_*.json)",
                figure.name,
                ratio * 100.0
            );
        } else {
            println!(
                "bench_report: ok {}: {} vs committed {} ({:.1}%)",
                figure.name,
                fmt_figure(figure.fresh),
                fmt_figure(figure.baseline),
                ratio * 100.0
            );
        }
    }
    regressions
}

fn load_baseline<T: Deserialize>(path: &Path) -> Result<T, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    serde_json::from_str(&text).map_err(|error| format!("cannot parse {}: {error}", path.display()))
}

/// Picks the baseline path for one report: the last `--baseline` override
/// whose file name contains `key` wins, falling back to
/// `<baseline_dir>/<default_name>`.
fn resolve_baseline(
    baseline_dir: &Path,
    overrides: &[PathBuf],
    key: &str,
    default_name: &str,
) -> PathBuf {
    overrides
        .iter()
        .rev()
        .find(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.to_ascii_lowercase().contains(key))
        })
        .cloned()
        .unwrap_or_else(|| baseline_dir.join(default_name))
}

fn main() -> ExitCode {
    // Validate the BSOM_DISPATCH override eagerly: a misspelt or unavailable
    // dispatch must fail the report up front with a clean message, not panic
    // inside the first measured kernel call.
    if let Err(error) = bsom_signature::validate_env_dispatch() {
        eprintln!("bench_report: {error}");
        return ExitCode::FAILURE;
    }
    let mut smoke = false;
    let mut check = false;
    let mut noise_band = 0.25f64;
    let mut out_dir = PathBuf::from(".");
    let mut baseline_dir = PathBuf::from(".");
    let mut baseline_overrides: Vec<PathBuf> = Vec::new();
    let mut only: Option<Selection> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--only" => {
                let selection = only.get_or_insert(Selection {
                    train: false,
                    recognition: false,
                    large: false,
                    serve: false,
                    registry: false,
                });
                match args.next().as_deref() {
                    Some("train") => selection.train = true,
                    Some("recognition") => selection.recognition = true,
                    Some("large") => selection.large = true,
                    Some("serve") => selection.serve = true,
                    Some("registry") => selection.registry = true,
                    other => {
                        eprintln!(
                            "--only requires one of \"train\", \"recognition\", \"large\", \
                             \"serve\", \"registry\" (got {other:?})"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--noise-band" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(band) if band > 0.0 && band < 1.0 => noise_band = band,
                _ => {
                    eprintln!("--noise-band requires a value in (0, 1)");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline-dir" => match args.next() {
                Some(dir) => baseline_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--baseline-dir requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match args.next() {
                Some(file) => {
                    let lower = Path::new(&file)
                        .file_name()
                        .and_then(|name| name.to_str())
                        .map(str::to_ascii_lowercase)
                        .unwrap_or_default();
                    // Exactly one key, so one file can never override two
                    // reports (gating a report against another's document
                    // would only surface as a confusing parse error).
                    let keys = [
                        lower.contains("train"),
                        lower.contains("recognition"),
                        lower.contains("large"),
                        lower.contains("serve"),
                        lower.contains("registry"),
                    ];
                    if keys.iter().filter(|&&k| k).count() != 1 {
                        eprintln!(
                            "--baseline file name must contain exactly one of \"train\", \
                             \"recognition\", \"large\", \"serve\" or \"registry\" so the \
                             reporter knows which report it overrides: {file}"
                        );
                        return ExitCode::FAILURE;
                    }
                    baseline_overrides.push(PathBuf::from(file));
                }
                None => {
                    eprintln!("--baseline requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "bench_report [--smoke] [--out DIR] [--check] [--noise-band F] \
                     [--baseline-dir DIR] [--baseline FILE]... [--only KEY]..."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unrecognised argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(error) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {error}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let selection = only.unwrap_or(Selection {
        train: true,
        recognition: true,
        large: true,
        serve: true,
        registry: true,
    });
    let mode = if smoke { "smoke" } else { "full" };
    let min_duration = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(1500)
    };

    let dataset = if selection.train || selection.recognition || selection.large {
        println!("bench_report: generating the shared fixture dataset...");
        Some(bench_dataset())
    } else {
        None
    };

    // --- Training: bit-serial vs word-parallel on the paper configuration.
    let train_report = dataset.as_ref().filter(|_| selection.train).map(|dataset| {
        println!("bench_report: measuring training throughput ({mode})...");
        let train = compare_training_throughput(
            BSomConfig::paper_default(),
            &dataset.train_signatures(),
            min_duration,
            0xB50A,
        );
        println!("{train}");
        TrainBenchReport {
            mode: mode.to_string(),
            min_duration_seconds: min_duration.as_secs_f64(),
            speedup_window_over_bit_serial: train.speedup(),
            speedup_window_over_per_neuron: train.window_speedup(),
            comparison: train,
        }
    });

    // --- Recognition: scalar vs batched vs service on a trained map.
    let recognition_report = dataset
        .as_ref()
        .filter(|_| selection.recognition)
        .map(|dataset| {
            println!("bench_report: measuring recognition throughput ({mode})...");
            let test_signatures: Vec<_> = dataset.test.iter().map(|(s, _)| s.clone()).collect();
            let mut rng = StdRng::seed_from_u64(0xB50A);
            let mut som = bsom_som::BSom::new(BSomConfig::paper_default(), &mut rng);
            som.train_labelled_data(&dataset.train, TrainSchedule::new(3), &mut rng)
                .expect("fixture dataset is non-empty");
            let classifier = LabelledSom::label(som.clone(), &dataset.train);
            let service = SomService::serve(&classifier, EngineConfig::default());
            let recognition = compare_recognition_throughput(
                &service,
                &som,
                &test_signatures,
                FpgaConfig::paper_default(),
                min_duration,
            );
            println!("{recognition}");

            // --- Per-dispatch distance pass at the 1024 x 768 scale shape:
            // an untrained map is the right fixture here (the kernels do not
            // branch on weight content) and the large shape keeps the pass
            // out of pure L1-resident territory, where the lane speedups
            // actually matter.
            println!("bench_report: measuring per-dispatch distance-pass throughput ({mode})...");
            let mut dispatch_rng = StdRng::seed_from_u64(0xD15B);
            let dispatch_som = bsom_som::BSom::new(BSomConfig::new(1024, 768), &mut dispatch_rng);
            let dispatch = compare_dispatch_throughput(
                dispatch_som.packed_layer(),
                &test_signatures,
                min_duration,
            );
            println!("{dispatch}");

            RecognitionBenchReport {
                mode: mode.to_string(),
                min_duration_seconds: min_duration.as_secs_f64(),
                speedup_batched_over_scalar: recognition.batched_speedup_over_scalar(),
                speedup_engine_over_scalar: recognition.engine_speedup_over_scalar(),
                speedup_widest_dispatch_over_scalar: dispatch.widest_speedup_over_scalar(),
                comparison: recognition,
                dispatch,
            }
        });

    // --- Large map: CoW publish + tournament search at 1024 x 768.
    let large_report = dataset.as_ref().filter(|_| selection.large).map(|dataset| {
        println!("bench_report: measuring large-map publish/search costs ({mode})...");
        let large_signatures: Vec<_> = dataset
            .train_signatures()
            .iter()
            .take(64)
            .cloned()
            .collect();
        let large = compare_large_map_throughput(
            BSomConfig::new(1024, 768),
            &large_signatures,
            min_duration,
            0xB50A,
        );
        println!("{large}");

        // --- Checkpoint durability cost at the same 1024 x 768 shape: full
        // commit (serialise + frame + fsync + rename) and full restore
        // (decode + validate + service re-spawn) per second.
        println!("bench_report: measuring checkpoint write/restore throughput ({mode})...");
        let checkpoint =
            compare_checkpoint_throughput(BSomConfig::new(1024, 768), 64, min_duration, 0xB50A);
        println!("{checkpoint}");

        LargeMapBenchReport {
            mode: mode.to_string(),
            min_duration_seconds: min_duration.as_secs_f64(),
            publish_speedup_over_repack: large.publish_speedup_over_repack(),
            tournament_vs_linear_search: large.tournament_vs_linear(),
            comparison: large,
            checkpoint,
        }
    });

    // --- The serving front-end: live loopback server, concurrent trainer.
    let serve_report = selection.serve.then(|| {
        println!("bench_report: measuring serving front-end throughput ({mode})...");
        let serve = measure_serve(&ServeBenchConfig {
            min_duration,
            seed: 0xB50A,
        });
        println!(
            "serve large-batch: in-process {:.0} sigs/s, over the wire {:.0} sigs/s \
             (ratio {:.2}); small mix: batch-of-one {:.0} req/s, micro-batched {:.0} req/s \
             (speedup {:.2}x, mean batch {:.1} sigs, p99 {:.2} ms)",
            serve.large.inprocess_signatures_per_second,
            serve.large.serve.signatures_per_second,
            serve.large.serve_over_inprocess,
            serve.small.batch1.requests_per_second,
            serve.small.microbatch.requests_per_second,
            serve.small.speedup_microbatch_over_batch1,
            serve.small.mean_batch_signatures,
            serve.small.microbatch.latency.p99_ms,
        );
        ServeBenchDocument {
            mode: mode.to_string(),
            min_duration_seconds: min_duration.as_secs_f64(),
            comparison: serve,
        }
    });

    // --- The multi-tenant facade: 64 paper-sized tenants behind one
    // registry, measured against a bare trainer on the same map shape.
    let registry_report = selection.registry.then(|| {
        println!("bench_report: measuring multi-tenant registry throughput ({mode})...");
        let registry =
            compare_registry_throughput(64, BSomConfig::new(40, 768), min_duration, 0xB50A);
        println!("{registry}");
        RegistryBenchReport {
            mode: mode.to_string(),
            min_duration_seconds: min_duration.as_secs_f64(),
            registry_step_overhead: registry.registry_step_overhead(),
            comparison: registry,
        }
    });

    // --- Regression gate against the committed baselines.
    if check {
        let mut figures: Vec<CheckedFigure> = Vec::new();
        let mut checked_paths: Vec<String> = Vec::new();
        let train_pair = match &train_report {
            Some(fresh) => {
                let path = resolve_baseline(
                    &baseline_dir,
                    &baseline_overrides,
                    "train",
                    "BENCH_train.json",
                );
                let baseline: TrainBenchReport = match load_baseline(&path) {
                    Ok(report) => report,
                    Err(error) => {
                        eprintln!("bench_report: {error}");
                        return ExitCode::FAILURE;
                    }
                };
                checked_paths.push(path.display().to_string());
                Some((fresh, baseline))
            }
            None => None,
        };
        let recognition_pair = match &recognition_report {
            Some(fresh) => {
                let path = resolve_baseline(
                    &baseline_dir,
                    &baseline_overrides,
                    "recognition",
                    "BENCH_recognition.json",
                );
                let baseline: RecognitionBenchReport = match load_baseline(&path) {
                    Ok(report) => report,
                    Err(error) => {
                        eprintln!("bench_report: {error}");
                        return ExitCode::FAILURE;
                    }
                };
                checked_paths.push(path.display().to_string());
                Some((fresh, baseline))
            }
            None => None,
        };
        let large_pair = match &large_report {
            Some(fresh) => {
                let path = resolve_baseline(
                    &baseline_dir,
                    &baseline_overrides,
                    "large",
                    "BENCH_large_map.json",
                );
                let baseline: LargeMapBenchReport = match load_baseline(&path) {
                    Ok(report) => report,
                    Err(error) => {
                        eprintln!("bench_report: {error}");
                        return ExitCode::FAILURE;
                    }
                };
                checked_paths.push(path.display().to_string());
                Some((fresh, baseline))
            }
            None => None,
        };
        let serve_pair = match &serve_report {
            Some(fresh) => {
                let path = resolve_baseline(
                    &baseline_dir,
                    &baseline_overrides,
                    "serve",
                    "BENCH_serve.json",
                );
                let baseline: ServeBenchDocument = match load_baseline(&path) {
                    Ok(report) => report,
                    Err(error) => {
                        eprintln!("bench_report: {error}");
                        return ExitCode::FAILURE;
                    }
                };
                checked_paths.push(path.display().to_string());
                Some((fresh, baseline))
            }
            None => None,
        };
        let registry_pair = match &registry_report {
            Some(fresh) => {
                let path = resolve_baseline(
                    &baseline_dir,
                    &baseline_overrides,
                    "registry",
                    "BENCH_registry.json",
                );
                let baseline: RegistryBenchReport = match load_baseline(&path) {
                    Ok(report) => report,
                    Err(error) => {
                        eprintln!("bench_report: {error}");
                        return ExitCode::FAILURE;
                    }
                };
                checked_paths.push(path.display().to_string());
                Some((fresh, baseline))
            }
            None => None,
        };
        println!(
            "bench_report: checking against {} (noise band ±{:.0}%)...",
            checked_paths.join(", "),
            noise_band * 100.0
        );
        if let Some((train_report, train_baseline)) = &train_pair {
            figures.extend([
                CheckedFigure {
                    name: "train.bit_serial steps/s",
                    baseline: train_baseline.comparison.bit_serial.patterns_per_second,
                    fresh: train_report.comparison.bit_serial.patterns_per_second,
                },
                CheckedFigure {
                    name: "train.per_neuron steps/s",
                    baseline: train_baseline.comparison.per_neuron.patterns_per_second,
                    fresh: train_report.comparison.per_neuron.patterns_per_second,
                },
                CheckedFigure {
                    name: "train.window steps/s",
                    baseline: train_baseline.comparison.window.patterns_per_second,
                    fresh: train_report.comparison.window.patterns_per_second,
                },
                // Dimensionless speedups: these stay comparable even when the
                // run and the committed baseline come from different machines,
                // so the gate still means something on heterogeneous CI.
                CheckedFigure {
                    name: "train.window/bit_serial speedup",
                    baseline: train_baseline.speedup_window_over_bit_serial,
                    fresh: train_report.speedup_window_over_bit_serial,
                },
                CheckedFigure {
                    name: "train.window/per_neuron speedup",
                    baseline: train_baseline.speedup_window_over_per_neuron,
                    fresh: train_report.speedup_window_over_per_neuron,
                },
            ]);
        }
        if let Some((recognition_report, recognition_baseline)) = &recognition_pair {
            figures.extend([
                CheckedFigure {
                    name: "recognition.scalar signatures/s",
                    baseline: recognition_baseline.comparison.scalar.patterns_per_second,
                    fresh: recognition_report.comparison.scalar.patterns_per_second,
                },
                CheckedFigure {
                    name: "recognition.batched signatures/s",
                    baseline: recognition_baseline.comparison.batched.patterns_per_second,
                    fresh: recognition_report.comparison.batched.patterns_per_second,
                },
                CheckedFigure {
                    name: "recognition.engine signatures/s",
                    baseline: recognition_baseline.comparison.engine.patterns_per_second,
                    fresh: recognition_report.comparison.engine.patterns_per_second,
                },
                CheckedFigure {
                    name: "recognition.engine/scalar speedup",
                    baseline: recognition_baseline.speedup_engine_over_scalar,
                    fresh: recognition_report.speedup_engine_over_scalar,
                },
                // The per-dispatch distance pass: absolute throughput of the
                // forced-scalar and widest lowerings, plus their dimensionless
                // ratio — the gate that notices the SIMD widening silently
                // stopped being selected (ratio collapses to ~1.0) or stopped
                // being fast.
                CheckedFigure {
                    name: "recognition.dispatch.scalar passes/s",
                    baseline: recognition_baseline.dispatch.scalar.patterns_per_second,
                    fresh: recognition_report.dispatch.scalar.patterns_per_second,
                },
                CheckedFigure {
                    name: "recognition.dispatch.widest passes/s",
                    baseline: recognition_baseline.dispatch.widest.patterns_per_second,
                    fresh: recognition_report.dispatch.widest.patterns_per_second,
                },
                CheckedFigure {
                    name: "recognition.dispatch widest/scalar speedup",
                    baseline: recognition_baseline.speedup_widest_dispatch_over_scalar,
                    fresh: recognition_report.speedup_widest_dispatch_over_scalar,
                },
            ]);
        }
        if let Some((large_report, large_baseline)) = &large_pair {
            figures.extend([
                // The 1024-neuron scale gates: copy-on-write publish cadence
                // under training and tournament winner-search throughput.
                CheckedFigure {
                    name: "large_map.publish publishes/s",
                    baseline: large_baseline
                        .comparison
                        .publish_under_training
                        .patterns_per_second,
                    fresh: large_report
                        .comparison
                        .publish_under_training
                        .patterns_per_second,
                },
                CheckedFigure {
                    name: "large_map.tournament searches/s",
                    baseline: large_baseline
                        .comparison
                        .tournament_search
                        .patterns_per_second,
                    fresh: large_report
                        .comparison
                        .tournament_search
                        .patterns_per_second,
                },
                CheckedFigure {
                    name: "large_map.publish/repack speedup",
                    baseline: large_baseline.publish_speedup_over_repack,
                    fresh: large_report.publish_speedup_over_repack,
                },
                CheckedFigure {
                    name: "large_map.tournament/linear speedup",
                    baseline: large_baseline.tournament_vs_linear_search,
                    fresh: large_report.tournament_vs_linear_search,
                },
                // Durability costs: a regression here means checkpointing became
                // expensive enough to change how often a deployment can afford
                // to run it.
                CheckedFigure {
                    name: "large_map.checkpoint writes/s",
                    baseline: large_baseline.checkpoint.write.patterns_per_second,
                    fresh: large_report.checkpoint.write.patterns_per_second,
                },
                CheckedFigure {
                    name: "large_map.checkpoint restores/s",
                    baseline: large_baseline.checkpoint.restore.patterns_per_second,
                    fresh: large_report.checkpoint.restore.patterns_per_second,
                },
            ]);
        }
        if let Some((serve_report, serve_baseline)) = &serve_pair {
            figures.extend([
                // The serving front-end: wire throughput on large batches and
                // what adaptive micro-batching buys on a singleton mix. Only
                // bigger-is-better figures are gated; latencies are recorded in
                // the document but too machine-sensitive to fail CI on.
                CheckedFigure {
                    name: "serve.large signatures/s",
                    baseline: serve_baseline.comparison.large.serve.signatures_per_second,
                    fresh: serve_report.comparison.large.serve.signatures_per_second,
                },
                CheckedFigure {
                    name: "serve.large serve/inprocess ratio",
                    baseline: serve_baseline.comparison.large.serve_over_inprocess,
                    fresh: serve_report.comparison.large.serve_over_inprocess,
                },
                CheckedFigure {
                    name: "serve.small.microbatch requests/s",
                    baseline: serve_baseline
                        .comparison
                        .small
                        .microbatch
                        .requests_per_second,
                    fresh: serve_report.comparison.small.microbatch.requests_per_second,
                },
                CheckedFigure {
                    name: "serve.small microbatch/batch1 speedup",
                    baseline: serve_baseline
                        .comparison
                        .small
                        .speedup_microbatch_over_batch1,
                    fresh: serve_report.comparison.small.speedup_microbatch_over_batch1,
                },
            ]);
        }
        if let Some((registry_report, registry_baseline)) = &registry_pair {
            figures.extend([
                // The facade legs: training steps through the registry and
                // facade classifies, plus the spill round-trip rate the LRU
                // evictor leans on. The dimensionless step-overhead ratio is
                // the figure that stays meaningful across machines.
                CheckedFigure {
                    name: "registry.feed+tick steps/s",
                    baseline: registry_baseline
                        .comparison
                        .registry_steps
                        .patterns_per_second,
                    fresh: registry_report
                        .comparison
                        .registry_steps
                        .patterns_per_second,
                },
                CheckedFigure {
                    name: "registry.classify signatures/s",
                    baseline: registry_baseline
                        .comparison
                        .registry_classify
                        .patterns_per_second,
                    fresh: registry_report
                        .comparison
                        .registry_classify
                        .patterns_per_second,
                },
                CheckedFigure {
                    name: "registry.spill round-trips/s",
                    baseline: registry_baseline
                        .comparison
                        .spill_roundtrips
                        .patterns_per_second,
                    fresh: registry_report
                        .comparison
                        .spill_roundtrips
                        .patterns_per_second,
                },
                CheckedFigure {
                    name: "registry.step-overhead ratio",
                    baseline: registry_baseline.registry_step_overhead,
                    fresh: registry_report.registry_step_overhead,
                },
            ]);
        }
        let regressions = check_figures(&figures, noise_band);
        if regressions > 0 {
            eprintln!(
                "bench_report: {regressions} figure(s) regressed beyond the ±{:.0}% noise band",
                noise_band * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("bench_report: all figures within the noise band");
    }

    let mut outputs: Vec<(&str, serde_json::Result<String>)> = Vec::new();
    if let Some(report) = &train_report {
        outputs.push(("BENCH_train.json", serde_json::to_string_pretty(report)));
    }
    if let Some(report) = &recognition_report {
        outputs.push((
            "BENCH_recognition.json",
            serde_json::to_string_pretty(report),
        ));
    }
    if let Some(report) = &large_report {
        outputs.push(("BENCH_large_map.json", serde_json::to_string_pretty(report)));
    }
    if let Some(report) = &serve_report {
        outputs.push(("BENCH_serve.json", serde_json::to_string_pretty(report)));
    }
    if let Some(report) = &registry_report {
        outputs.push(("BENCH_registry.json", serde_json::to_string_pretty(report)));
    }
    for (name, json) in outputs {
        let path = out_dir.join(name);
        let json = match json {
            Ok(json) => json,
            Err(error) => {
                eprintln!("serializing {name}: {error}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(error) = std::fs::write(&path, json + "\n") {
            eprintln!("writing {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bench_report: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
