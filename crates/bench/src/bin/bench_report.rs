//! Machine-readable performance tracking for the hot paths.
//!
//! Writes `BENCH_train.json` (training steps/s, bit-serial vs word-parallel,
//! speedup) and `BENCH_recognition.json` (signatures/s, scalar vs batched vs
//! engine, speedups, FPGA cycle-model comparison) so the perf trajectory of
//! the repo is tracked by numbers rather than prose. CI runs it in `--smoke`
//! mode to keep the reporter itself from rotting; committed snapshots come
//! from full runs.
//!
//! ```text
//! bench_report [--smoke] [--out DIR]
//!
//!   --smoke   short measurement windows (CI liveness check, noisy numbers)
//!   --out     directory to write the two JSON files into (default: .)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use bsom_bench::bench_dataset;
use bsom_engine::{
    compare_recognition_throughput, compare_training_throughput, EngineConfig, RecognitionEngine,
    ThroughputComparison, TrainThroughputComparison,
};
use bsom_fpga::FpgaConfig;
use bsom_som::{BSomConfig, LabelledSom, SelfOrganizingMap, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

/// The `BENCH_train.json` document.
#[derive(Debug, Serialize)]
struct TrainBenchReport {
    /// `"smoke"` or `"full"` — smoke numbers are liveness checks, not data.
    mode: String,
    /// Seconds of wall clock spent per measured path.
    min_duration_seconds: f64,
    /// The raw two-path comparison (steps/s each way).
    comparison: TrainThroughputComparison,
    /// Word-parallel steps/s over bit-serial steps/s.
    speedup_word_parallel_over_bit_serial: f64,
}

/// The `BENCH_recognition.json` document.
#[derive(Debug, Serialize)]
struct RecognitionBenchReport {
    /// `"smoke"` or `"full"`.
    mode: String,
    /// Seconds of wall clock spent per measured path.
    min_duration_seconds: f64,
    /// Scalar / batched / engine signatures-per-second plus the FPGA model.
    comparison: ThroughputComparison,
    /// Single-thread plane-sliced search over the scalar loop.
    speedup_batched_over_scalar: f64,
    /// Sharded engine over the scalar loop.
    speedup_engine_over_scalar: f64,
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("bench_report [--smoke] [--out DIR]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unrecognised argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(error) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {error}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let mode = if smoke { "smoke" } else { "full" };
    let min_duration = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(1500)
    };

    println!("bench_report: generating the shared fixture dataset...");
    let dataset = bench_dataset();
    let train_signatures = dataset.train_signatures();
    let test_signatures: Vec<_> = dataset.test.iter().map(|(s, _)| s.clone()).collect();

    // --- Training: bit-serial vs word-parallel on the paper configuration.
    println!("bench_report: measuring training throughput ({mode})...");
    let train = compare_training_throughput(
        BSomConfig::paper_default(),
        &train_signatures,
        min_duration,
        0xB50A,
    );
    println!("{train}");
    let train_report = TrainBenchReport {
        mode: mode.to_string(),
        min_duration_seconds: min_duration.as_secs_f64(),
        speedup_word_parallel_over_bit_serial: train.speedup(),
        comparison: train,
    };

    // --- Recognition: scalar vs batched vs engine on a trained map.
    println!("bench_report: measuring recognition throughput ({mode})...");
    let mut rng = StdRng::seed_from_u64(0xB50A);
    let mut som = bsom_som::BSom::new(BSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(3), &mut rng)
        .expect("fixture dataset is non-empty");
    let classifier = LabelledSom::label(som.clone(), &dataset.train);
    let engine = RecognitionEngine::new(&classifier, EngineConfig::default());
    let recognition = compare_recognition_throughput(
        &engine,
        &som,
        &test_signatures,
        FpgaConfig::paper_default(),
        min_duration,
    );
    println!("{recognition}");
    let recognition_report = RecognitionBenchReport {
        mode: mode.to_string(),
        min_duration_seconds: min_duration.as_secs_f64(),
        speedup_batched_over_scalar: recognition.batched_speedup_over_scalar(),
        speedup_engine_over_scalar: recognition.engine_speedup_over_scalar(),
        comparison: recognition,
    };

    for (name, json) in [
        (
            "BENCH_train.json",
            serde_json::to_string_pretty(&train_report),
        ),
        (
            "BENCH_recognition.json",
            serde_json::to_string_pretty(&recognition_report),
        ),
    ] {
        let path = out_dir.join(name);
        let json = match json {
            Ok(json) => json,
            Err(error) => {
                eprintln!("serializing {name}: {error}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(error) = std::fs::write(&path, json + "\n") {
            eprintln!("writing {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bench_report: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
