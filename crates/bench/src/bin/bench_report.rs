//! Machine-readable performance tracking for the hot paths.
//!
//! Writes `BENCH_train.json` (training steps/s across the three datapaths —
//! bit-serial, per-neuron word-parallel, plane-sliced window — plus the
//! speedup ratios), `BENCH_recognition.json` (signatures/s, scalar vs
//! batched vs engine, speedups, FPGA cycle-model comparison, and the
//! per-dispatch distance-pass figures for every SIMD lowering the machine
//! can run) and
//! `BENCH_large_map.json` (copy-on-write publish cadence, tournament
//! winner-search throughput and crash-safe checkpoint write/restore
//! throughput at the 1024-neuron × 768-bit scale target) so
//! the perf trajectory of the repo is tracked by numbers rather than prose.
//! CI runs it in `--smoke` mode to keep the reporter itself from rotting;
//! committed snapshots come from full runs.
//!
//! `--check` turns the reporter into a **regression gate**: instead of only
//! writing fresh files, it also loads the committed baselines and fails when
//! any measured figure falls below `baseline × (1 − band)`. Improvements
//! beyond `baseline × (1 + band)` are reported as a prompt to re-baseline
//! (re-run without `--smoke` and commit the refreshed files) but do not
//! fail, since a faster machine or build must never break CI. Absolute
//! throughputs only guard same-machine runs; the dimensionless speedup
//! ratios stay meaningful across machines, which is what heterogeneous CI
//! leans on (see README §"Benchmarks" for the band semantics and the
//! per-runner baseline workflow).
//!
//! ```text
//! bench_report [--smoke] [--out DIR] [--check] [--noise-band F]
//!              [--baseline-dir DIR] [--baseline FILE]...
//!
//!   --smoke          short measurement windows (CI liveness check, noisy numbers)
//!   --out            directory to write the two JSON files into (default: .)
//!   --check          compare fresh numbers against the committed baselines
//!   --noise-band     allowed relative deviation before --check fails (default: 0.25)
//!   --baseline-dir   where the committed BENCH_*.json live (default: .)
//!   --baseline       per-runner baseline file override, repeatable; the file
//!                    name decides which report it replaces (a name containing
//!                    "train" overrides BENCH_train.json, "recognition" or
//!                    "large" the others) — point this at e.g.
//!                    baselines/ci-runner/BENCH_train.json to gate a specific
//!                    runner against its own committed numbers
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use bsom_bench::bench_dataset;
use bsom_engine::{
    compare_checkpoint_throughput, compare_dispatch_throughput, compare_large_map_throughput,
    compare_recognition_throughput, compare_training_throughput, CheckpointThroughputComparison,
    DispatchThroughputComparison, EngineConfig, LargeMapThroughputComparison, SomService,
    ThroughputComparison, TrainThroughputComparison,
};
use bsom_fpga::FpgaConfig;
use bsom_som::{BSomConfig, LabelledSom, SelfOrganizingMap, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The `BENCH_train.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct TrainBenchReport {
    /// `"smoke"` or `"full"` — smoke numbers are liveness checks, not data.
    mode: String,
    /// Seconds of wall clock spent per measured path.
    min_duration_seconds: f64,
    /// The raw three-path comparison (steps/s each way) at the paper's
    /// maximum neighbourhood radius.
    comparison: TrainThroughputComparison,
    /// Production (window) steps/s over bit-serial steps/s.
    speedup_window_over_bit_serial: f64,
    /// Window steps/s over the per-neuron word-parallel path — the
    /// neighbourhood-broadcast acceptance ratio (floor 2x at radius ≥ 2).
    speedup_window_over_per_neuron: f64,
}

/// The `BENCH_recognition.json` document.
#[derive(Debug, Serialize, Deserialize)]
struct RecognitionBenchReport {
    /// `"smoke"` or `"full"`.
    mode: String,
    /// Seconds of wall clock spent per measured path.
    min_duration_seconds: f64,
    /// Scalar / batched / engine signatures-per-second plus the FPGA model.
    comparison: ThroughputComparison,
    /// Per-dispatch distance-pass throughput at the 1024 × 768 scale shape:
    /// the same plane-sliced pass through every kernel lowering the machine
    /// can run (DESIGN.md §"Wide-lane kernels and dispatch").
    dispatch: DispatchThroughputComparison,
    /// Single-thread plane-sliced search over the scalar loop.
    speedup_batched_over_scalar: f64,
    /// Sharded engine over the scalar loop.
    speedup_engine_over_scalar: f64,
    /// Widest available lowering over the forced-scalar distance pass — the
    /// raw worth of the SIMD widening on this machine.
    speedup_widest_dispatch_over_scalar: f64,
}

/// The `BENCH_large_map.json` document: the 1024-neuron × 768-bit shape the
/// ROADMAP scales to, gating the copy-on-write publish cost and the
/// tournament winner-search throughput.
#[derive(Debug, Serialize, Deserialize)]
struct LargeMapBenchReport {
    /// `"smoke"` or `"full"`.
    mode: String,
    /// Seconds of wall clock spent per measured path.
    min_duration_seconds: f64,
    /// Publish (CoW vs deep re-pack) and search (tournament vs linear)
    /// costs at the large-map shape.
    comparison: LargeMapThroughputComparison,
    /// Train-step-plus-CoW-publish cadence over a deep re-pack.
    publish_speedup_over_repack: f64,
    /// Tournament over linear-scan search throughput (≈ 1.0: both share the
    /// dominating distance pass).
    tournament_vs_linear_search: f64,
    /// Crash-safe checkpoint commit and restore throughput at the same
    /// shape — the durability cost model (frame + fsync + atomic rename on
    /// the write side, decode + validate + service re-spawn on the restore
    /// side; DESIGN.md §"Fault model and recovery").
    checkpoint: CheckpointThroughputComparison,
}

/// One named figure compared against its committed baseline: an absolute
/// throughput (meaningful when the run and the baseline share a machine) or
/// a dimensionless speedup ratio (meaningful across machines too).
struct CheckedFigure {
    name: &'static str,
    baseline: f64,
    fresh: f64,
}

/// Renders a figure compactly whether it is a big throughput or a small
/// speedup ratio.
fn fmt_figure(value: f64) -> String {
    if value >= 100.0 {
        format!("{value:.0}")
    } else {
        format!("{value:.2}")
    }
}

/// Compares every figure against its baseline within the noise band.
/// Returns the number of regressions (each printed as it is found).
fn check_figures(figures: &[CheckedFigure], band: f64) -> usize {
    let mut regressions = 0usize;
    for figure in figures {
        let ratio = figure.fresh / figure.baseline.max(f64::MIN_POSITIVE);
        if ratio < 1.0 - band {
            regressions += 1;
            eprintln!(
                "bench_report: REGRESSION {}: {} is {:.1}% of the committed {} \
                 (allowed floor {:.1}%)",
                figure.name,
                fmt_figure(figure.fresh),
                ratio * 100.0,
                fmt_figure(figure.baseline),
                (1.0 - band) * 100.0
            );
        } else if ratio > 1.0 + band {
            println!(
                "bench_report: note: {} improved to {:.1}% of the committed baseline — \
                 consider re-baselining (full run, commit the refreshed BENCH_*.json)",
                figure.name,
                ratio * 100.0
            );
        } else {
            println!(
                "bench_report: ok {}: {} vs committed {} ({:.1}%)",
                figure.name,
                fmt_figure(figure.fresh),
                fmt_figure(figure.baseline),
                ratio * 100.0
            );
        }
    }
    regressions
}

fn load_baseline<T: Deserialize>(path: &Path) -> Result<T, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|error| format!("cannot read {}: {error}", path.display()))?;
    serde_json::from_str(&text).map_err(|error| format!("cannot parse {}: {error}", path.display()))
}

/// Picks the baseline path for one report: the last `--baseline` override
/// whose file name contains `key` wins, falling back to
/// `<baseline_dir>/<default_name>`.
fn resolve_baseline(
    baseline_dir: &Path,
    overrides: &[PathBuf],
    key: &str,
    default_name: &str,
) -> PathBuf {
    overrides
        .iter()
        .rev()
        .find(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.to_ascii_lowercase().contains(key))
        })
        .cloned()
        .unwrap_or_else(|| baseline_dir.join(default_name))
}

fn main() -> ExitCode {
    // Validate the BSOM_DISPATCH override eagerly: a misspelt or unavailable
    // dispatch must fail the report up front with a clean message, not panic
    // inside the first measured kernel call.
    if let Err(error) = bsom_signature::validate_env_dispatch() {
        eprintln!("bench_report: {error}");
        return ExitCode::FAILURE;
    }
    let mut smoke = false;
    let mut check = false;
    let mut noise_band = 0.25f64;
    let mut out_dir = PathBuf::from(".");
    let mut baseline_dir = PathBuf::from(".");
    let mut baseline_overrides: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--check" => check = true,
            "--noise-band" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(band) if band > 0.0 && band < 1.0 => noise_band = band,
                _ => {
                    eprintln!("--noise-band requires a value in (0, 1)");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline-dir" => match args.next() {
                Some(dir) => baseline_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--baseline-dir requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match args.next() {
                Some(file) => {
                    let lower = Path::new(&file)
                        .file_name()
                        .and_then(|name| name.to_str())
                        .map(str::to_ascii_lowercase)
                        .unwrap_or_default();
                    // Exactly one key, so one file can never override two
                    // reports (gating a report against another's document
                    // would only surface as a confusing parse error).
                    let keys = [
                        lower.contains("train"),
                        lower.contains("recognition"),
                        lower.contains("large"),
                    ];
                    if keys.iter().filter(|&&k| k).count() != 1 {
                        eprintln!(
                            "--baseline file name must contain exactly one of \"train\", \
                             \"recognition\" or \"large\" so the reporter knows which report \
                             it overrides: {file}"
                        );
                        return ExitCode::FAILURE;
                    }
                    baseline_overrides.push(PathBuf::from(file));
                }
                None => {
                    eprintln!("--baseline requires a file argument");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "bench_report [--smoke] [--out DIR] [--check] [--noise-band F] \
                     [--baseline-dir DIR] [--baseline FILE]..."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unrecognised argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(error) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {error}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let mode = if smoke { "smoke" } else { "full" };
    let min_duration = if smoke {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(1500)
    };

    println!("bench_report: generating the shared fixture dataset...");
    let dataset = bench_dataset();
    let train_signatures = dataset.train_signatures();
    let test_signatures: Vec<_> = dataset.test.iter().map(|(s, _)| s.clone()).collect();

    // --- Training: bit-serial vs word-parallel on the paper configuration.
    println!("bench_report: measuring training throughput ({mode})...");
    let train = compare_training_throughput(
        BSomConfig::paper_default(),
        &train_signatures,
        min_duration,
        0xB50A,
    );
    println!("{train}");
    let train_report = TrainBenchReport {
        mode: mode.to_string(),
        min_duration_seconds: min_duration.as_secs_f64(),
        speedup_window_over_bit_serial: train.speedup(),
        speedup_window_over_per_neuron: train.window_speedup(),
        comparison: train,
    };

    // --- Recognition: scalar vs batched vs service on a trained map.
    println!("bench_report: measuring recognition throughput ({mode})...");
    let mut rng = StdRng::seed_from_u64(0xB50A);
    let mut som = bsom_som::BSom::new(BSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(3), &mut rng)
        .expect("fixture dataset is non-empty");
    let classifier = LabelledSom::label(som.clone(), &dataset.train);
    let service = SomService::serve(&classifier, EngineConfig::default());
    let recognition = compare_recognition_throughput(
        &service,
        &som,
        &test_signatures,
        FpgaConfig::paper_default(),
        min_duration,
    );
    println!("{recognition}");

    // --- Per-dispatch distance pass at the 1024 x 768 scale shape: an
    // untrained map is the right fixture here (the kernels do not branch on
    // weight content) and the large shape keeps the pass out of pure
    // L1-resident territory, where the lane speedups actually matter.
    println!("bench_report: measuring per-dispatch distance-pass throughput ({mode})...");
    let mut dispatch_rng = StdRng::seed_from_u64(0xD15B);
    let dispatch_som = bsom_som::BSom::new(BSomConfig::new(1024, 768), &mut dispatch_rng);
    let dispatch =
        compare_dispatch_throughput(dispatch_som.packed_layer(), &test_signatures, min_duration);
    println!("{dispatch}");

    let recognition_report = RecognitionBenchReport {
        mode: mode.to_string(),
        min_duration_seconds: min_duration.as_secs_f64(),
        speedup_batched_over_scalar: recognition.batched_speedup_over_scalar(),
        speedup_engine_over_scalar: recognition.engine_speedup_over_scalar(),
        speedup_widest_dispatch_over_scalar: dispatch.widest_speedup_over_scalar(),
        comparison: recognition,
        dispatch,
    };

    // --- Large map: CoW publish + tournament search at 1024 x 768.
    println!("bench_report: measuring large-map publish/search costs ({mode})...");
    let large_signatures: Vec<_> = train_signatures.iter().take(64).cloned().collect();
    let large = compare_large_map_throughput(
        BSomConfig::new(1024, 768),
        &large_signatures,
        min_duration,
        0xB50A,
    );
    println!("{large}");

    // --- Checkpoint durability cost at the same 1024 x 768 shape: full
    // commit (serialise + frame + fsync + rename) and full restore (decode +
    // validate + service re-spawn) per second.
    println!("bench_report: measuring checkpoint write/restore throughput ({mode})...");
    let checkpoint =
        compare_checkpoint_throughput(BSomConfig::new(1024, 768), 64, min_duration, 0xB50A);
    println!("{checkpoint}");

    let large_report = LargeMapBenchReport {
        mode: mode.to_string(),
        min_duration_seconds: min_duration.as_secs_f64(),
        publish_speedup_over_repack: large.publish_speedup_over_repack(),
        tournament_vs_linear_search: large.tournament_vs_linear(),
        comparison: large,
        checkpoint,
    };

    // --- Regression gate against the committed baselines.
    if check {
        let train_path = resolve_baseline(
            &baseline_dir,
            &baseline_overrides,
            "train",
            "BENCH_train.json",
        );
        let recognition_path = resolve_baseline(
            &baseline_dir,
            &baseline_overrides,
            "recognition",
            "BENCH_recognition.json",
        );
        let large_path = resolve_baseline(
            &baseline_dir,
            &baseline_overrides,
            "large",
            "BENCH_large_map.json",
        );
        let train_baseline: TrainBenchReport = match load_baseline(&train_path) {
            Ok(report) => report,
            Err(error) => {
                eprintln!("bench_report: {error}");
                return ExitCode::FAILURE;
            }
        };
        let recognition_baseline: RecognitionBenchReport = match load_baseline(&recognition_path) {
            Ok(report) => report,
            Err(error) => {
                eprintln!("bench_report: {error}");
                return ExitCode::FAILURE;
            }
        };
        let large_baseline: LargeMapBenchReport = match load_baseline(&large_path) {
            Ok(report) => report,
            Err(error) => {
                eprintln!("bench_report: {error}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "bench_report: checking against {}, {} and {} (noise band ±{:.0}%)...",
            train_path.display(),
            recognition_path.display(),
            large_path.display(),
            noise_band * 100.0
        );
        let figures = [
            CheckedFigure {
                name: "train.bit_serial steps/s",
                baseline: train_baseline.comparison.bit_serial.patterns_per_second,
                fresh: train_report.comparison.bit_serial.patterns_per_second,
            },
            CheckedFigure {
                name: "train.per_neuron steps/s",
                baseline: train_baseline.comparison.per_neuron.patterns_per_second,
                fresh: train_report.comparison.per_neuron.patterns_per_second,
            },
            CheckedFigure {
                name: "train.window steps/s",
                baseline: train_baseline.comparison.window.patterns_per_second,
                fresh: train_report.comparison.window.patterns_per_second,
            },
            CheckedFigure {
                name: "recognition.scalar signatures/s",
                baseline: recognition_baseline.comparison.scalar.patterns_per_second,
                fresh: recognition_report.comparison.scalar.patterns_per_second,
            },
            CheckedFigure {
                name: "recognition.batched signatures/s",
                baseline: recognition_baseline.comparison.batched.patterns_per_second,
                fresh: recognition_report.comparison.batched.patterns_per_second,
            },
            CheckedFigure {
                name: "recognition.engine signatures/s",
                baseline: recognition_baseline.comparison.engine.patterns_per_second,
                fresh: recognition_report.comparison.engine.patterns_per_second,
            },
            // Dimensionless speedups: these stay comparable even when the
            // run and the committed baseline come from different machines,
            // so the gate still means something on heterogeneous CI.
            CheckedFigure {
                name: "train.window/bit_serial speedup",
                baseline: train_baseline.speedup_window_over_bit_serial,
                fresh: train_report.speedup_window_over_bit_serial,
            },
            CheckedFigure {
                name: "train.window/per_neuron speedup",
                baseline: train_baseline.speedup_window_over_per_neuron,
                fresh: train_report.speedup_window_over_per_neuron,
            },
            CheckedFigure {
                name: "recognition.engine/scalar speedup",
                baseline: recognition_baseline.speedup_engine_over_scalar,
                fresh: recognition_report.speedup_engine_over_scalar,
            },
            // The per-dispatch distance pass: absolute throughput of the
            // forced-scalar and widest lowerings, plus their dimensionless
            // ratio — the gate that notices the SIMD widening silently
            // stopped being selected (ratio collapses to ~1.0) or stopped
            // being fast.
            CheckedFigure {
                name: "recognition.dispatch.scalar passes/s",
                baseline: recognition_baseline.dispatch.scalar.patterns_per_second,
                fresh: recognition_report.dispatch.scalar.patterns_per_second,
            },
            CheckedFigure {
                name: "recognition.dispatch.widest passes/s",
                baseline: recognition_baseline.dispatch.widest.patterns_per_second,
                fresh: recognition_report.dispatch.widest.patterns_per_second,
            },
            CheckedFigure {
                name: "recognition.dispatch widest/scalar speedup",
                baseline: recognition_baseline.speedup_widest_dispatch_over_scalar,
                fresh: recognition_report.speedup_widest_dispatch_over_scalar,
            },
            // The 1024-neuron scale gates: copy-on-write publish cadence
            // under training and tournament winner-search throughput.
            CheckedFigure {
                name: "large_map.publish publishes/s",
                baseline: large_baseline
                    .comparison
                    .publish_under_training
                    .patterns_per_second,
                fresh: large_report
                    .comparison
                    .publish_under_training
                    .patterns_per_second,
            },
            CheckedFigure {
                name: "large_map.tournament searches/s",
                baseline: large_baseline
                    .comparison
                    .tournament_search
                    .patterns_per_second,
                fresh: large_report
                    .comparison
                    .tournament_search
                    .patterns_per_second,
            },
            CheckedFigure {
                name: "large_map.publish/repack speedup",
                baseline: large_baseline.publish_speedup_over_repack,
                fresh: large_report.publish_speedup_over_repack,
            },
            CheckedFigure {
                name: "large_map.tournament/linear speedup",
                baseline: large_baseline.tournament_vs_linear_search,
                fresh: large_report.tournament_vs_linear_search,
            },
            // Durability costs: a regression here means checkpointing became
            // expensive enough to change how often a deployment can afford
            // to run it.
            CheckedFigure {
                name: "large_map.checkpoint writes/s",
                baseline: large_baseline.checkpoint.write.patterns_per_second,
                fresh: large_report.checkpoint.write.patterns_per_second,
            },
            CheckedFigure {
                name: "large_map.checkpoint restores/s",
                baseline: large_baseline.checkpoint.restore.patterns_per_second,
                fresh: large_report.checkpoint.restore.patterns_per_second,
            },
        ];
        let regressions = check_figures(&figures, noise_band);
        if regressions > 0 {
            eprintln!(
                "bench_report: {regressions} figure(s) regressed beyond the ±{:.0}% noise band",
                noise_band * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!("bench_report: all figures within the noise band");
    }

    for (name, json) in [
        (
            "BENCH_train.json",
            serde_json::to_string_pretty(&train_report),
        ),
        (
            "BENCH_recognition.json",
            serde_json::to_string_pretty(&recognition_report),
        ),
        (
            "BENCH_large_map.json",
            serde_json::to_string_pretty(&large_report),
        ),
    ] {
        let path = out_dir.join(name);
        let json = match json {
            Ok(json) => json,
            Err(error) => {
                eprintln!("serializing {name}: {error}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(error) = std::fs::write(&path, json + "\n") {
            eprintln!("writing {}: {error}", path.display());
            return ExitCode::FAILURE;
        }
        println!("bench_report: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}
