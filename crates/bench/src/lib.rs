//! # bsom-bench
//!
//! Shared fixtures for the Criterion benchmark suite. Each bench target under
//! `benches/` regenerates the workload behind one table or figure of the
//! paper (see DESIGN.md §"Experiment and ablation index"); this library only holds the
//! common dataset/map builders so the individual benches stay small and the
//! fixtures stay identical across them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use bsom_dataset::{DatasetConfig, SurveillanceDataset};
use bsom_som::{BSom, BSomConfig, CSom, CSomConfig, SelfOrganizingMap, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The dataset size used by the benchmark fixtures (kept small so a full
/// `cargo bench` run stays in the minutes range on one core).
pub const BENCH_TRAIN: usize = 300;

/// Test-split size of the benchmark fixture dataset.
pub const BENCH_TEST: usize = 150;

/// Builds the shared benchmark dataset (nine identities, reduced volume,
/// paper-default corruption), deterministically from a fixed seed.
pub fn bench_dataset() -> SurveillanceDataset {
    let config = DatasetConfig {
        train_instances: BENCH_TRAIN,
        test_instances: BENCH_TEST,
        ..DatasetConfig::paper_default()
    };
    SurveillanceDataset::generate(&config, &mut StdRng::seed_from_u64(0xBE9C))
}

/// Builds a bSOM already trained on the benchmark dataset.
pub fn trained_bsom(dataset: &SurveillanceDataset, iterations: usize) -> BSom {
    let mut rng = StdRng::seed_from_u64(0xB50A);
    let mut som = BSom::new(BSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(iterations), &mut rng)
        .expect("benchmark dataset is non-empty");
    som
}

/// Builds a cSOM already trained on the benchmark dataset.
pub fn trained_csom(dataset: &SurveillanceDataset, iterations: usize) -> CSom {
    let mut rng = StdRng::seed_from_u64(0xC50A);
    let mut som = CSom::new(CSomConfig::paper_default(), &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(iterations), &mut rng)
        .expect("benchmark dataset is non-empty");
    som
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic_and_correctly_sized() {
        let a = bench_dataset();
        let b = bench_dataset();
        assert_eq!(a.train, b.train);
        assert_eq!(a.train.len(), BENCH_TRAIN);
        assert_eq!(a.test.len(), BENCH_TEST);
        let som = trained_bsom(&a, 2);
        assert_eq!(som.neuron_count(), 40);
        let csom = trained_csom(&a, 1);
        assert_eq!(csom.neuron_count(), 40);
    }
}
