//! Figure 2 workload: colour-histogram construction, mean-threshold
//! binarisation and the Hamming-distance primitives underneath the bSOM.

use bsom_dataset::{AppearanceModel, CorruptionConfig};
use bsom_signature::{BinaryVector, ColorHistogram, Rgb, TriStateVector};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn fig2(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let pixels: Vec<Rgb> = (0..2000)
        .map(|_| Rgb::new(rng.gen(), rng.gen(), rng.gen()))
        .collect();

    c.bench_function("fig2/histogram_2000_pixels", |b| {
        b.iter(|| black_box(ColorHistogram::from_pixels(pixels.iter().copied())))
    });

    let hist = ColorHistogram::from_pixels(pixels.iter().copied());
    c.bench_function("fig2/mean_threshold_binarise", |b| {
        b.iter(|| black_box(hist.to_signature()))
    });

    let model = AppearanceModel::generate(0, &mut rng);
    c.bench_function("fig2/sample_signature_from_appearance_model", |b| {
        b.iter(|| black_box(model.sample_signature(&CorruptionConfig::default(), &mut rng)))
    });

    let a = BinaryVector::random(768, &mut rng);
    let bvec = BinaryVector::random(768, &mut rng);
    c.bench_function("fig2/hamming_768_binary", |b| {
        b.iter(|| black_box(a.hamming(&bvec).unwrap()))
    });

    let w = TriStateVector::random_with_dont_care(768, 0.3, &mut rng);
    c.bench_function("fig2/hamming_768_tristate", |b| {
        b.iter(|| black_box(w.hamming(&bvec).unwrap()))
    });
}

criterion_group!(benches, fig2);
criterion_main!(benches);
