//! Table IV workload: the analytical resource model of the XC4VLX160 and the
//! report rendering, across design sizes.

use bsom_fpga::{ResourceReport, ResourceUsage};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn table4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4");
    for &neurons in &[40usize, 100, 200] {
        group.bench_with_input(
            BenchmarkId::new("estimate_bsom", neurons),
            &neurons,
            |b, &n| b.iter(|| black_box(ResourceUsage::estimate_bsom(black_box(n), 768))),
        );
    }
    group.bench_function("render_report_40x768", |b| {
        b.iter(|| {
            let report = ResourceReport::for_bsom(40, 768);
            black_box(report.to_string())
        })
    });
    group.finish();
}

criterion_group!(benches, table4);
criterion_main!(benches);
