//! Figure 6 / Fig. 1 workload: the vision substrate feeding the bSOM —
//! scene rendering, background subtraction, connected components, tracking
//! and signature extraction.

use bsom_signature::BinaryImage;
use bsom_vision::connected::label_components;
use bsom_vision::pipeline::{PipelineConfig, SurveillancePipeline};
use bsom_vision::scene::{SceneConfig, SceneSimulator};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let config = SceneConfig {
        entry_probability: 0.0,
        ..SceneConfig::small()
    };
    let mut scene = SceneSimulator::new(config, &mut rng);
    scene.spawn_person(2, true);
    let frame = (0..8).map(|_| scene.render_frame(&mut rng)).last().unwrap();

    c.bench_function("fig6/render_scene_frame", |b| {
        b.iter(|| black_box(scene.render_frame(&mut rng)))
    });

    c.bench_function("fig6/pipeline_process_frame", |b| {
        let mut pipeline = SurveillancePipeline::with_config(
            160,
            120,
            PipelineConfig {
                min_object_pixels: Some(300),
                ..PipelineConfig::default()
            },
        );
        pipeline.observe_background(&frame.image);
        b.iter(|| black_box(pipeline.process_frame(&frame.image)))
    });

    // Connected components on a mid-density mask.
    let mut mask = BinaryImage::new(160, 120);
    for y in 0..120 {
        for x in 0..160 {
            mask.set(x, y, (x / 7 + y / 5) % 3 == 0);
        }
    }
    c.bench_function("fig6/connected_components_160x120", |b| {
        b.iter(|| black_box(label_components(&mask)))
    });
}

criterion_group!(benches, fig6);
criterion_main!(benches);
