//! §V-E/§V-F throughput workload: batch recognition and batch training on
//! both the software bSOM and the cycle-accurate FPGA model, the comparison
//! behind the paper's 25,000 signatures/s and sub-second training claims.

use bsom_bench::{bench_dataset, trained_bsom};
use bsom_fpga::FpgaBSom;
use bsom_som::{LabelledSom, SelfOrganizingMap, TrainSchedule};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn throughput(c: &mut Criterion) {
    let dataset = bench_dataset();
    let som = trained_bsom(&dataset, 3);
    let classifier = LabelledSom::label(som.clone(), &dataset.train);
    let signatures: Vec<_> = dataset.test.iter().map(|(s, _)| s.clone()).collect();

    let mut group = c.benchmark_group("throughput");
    group.throughput(Throughput::Elements(signatures.len() as u64));

    group.bench_function("software_classify_batch", |b| {
        b.iter(|| {
            for s in &signatures {
                black_box(classifier.classify(s));
            }
        })
    });

    group.bench_function("fpga_model_classify_batch", |b| {
        let mut fpga = FpgaBSom::from_trained(&som);
        b.iter(|| {
            for s in &signatures {
                black_box(fpga.classify(s).unwrap());
            }
        })
    });

    group.throughput(Throughput::Elements(dataset.train.len() as u64));
    group.bench_function("software_train_one_epoch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut fresh = som.clone();
            fresh
                .train_labelled_data(&dataset.train, TrainSchedule::new(1), &mut rng)
                .unwrap();
            black_box(fresh)
        })
    });
    group.finish();
}

criterion_group!(benches, throughput);
criterion_main!(benches);
