//! Table II workload: the Wilcoxon rank-sum analysis over ten-repetition
//! accuracy samples.

use bsom_stats::{wilcoxon_rank_sum, Alternative};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn table2(c: &mut Criterion) {
    // Ten repetitions per algorithm, the paper's protocol.
    let csom: Vec<f64> = (0..10).map(|i| 81.0 + i as f64 * 0.3).collect();
    let bsom: Vec<f64> = (0..10).map(|i| 84.0 + (i % 4) as f64 * 0.4).collect();

    c.bench_function("table2/wilcoxon_rank_sum_10v10", |b| {
        b.iter(|| {
            black_box(wilcoxon_rank_sum(
                black_box(&csom),
                black_box(&bsom),
                Alternative::Less,
            ))
        })
    });

    // The full fourteen-budget analysis, as Table II actually runs it.
    let budgets: Vec<(Vec<f64>, Vec<f64>)> = (0..14)
        .map(|k| {
            let a: Vec<f64> = (0..10).map(|i| 80.0 + (i + k) as f64 * 0.17).collect();
            let b: Vec<f64> = (0..10).map(|i| 83.0 + (i * k % 7) as f64 * 0.21).collect();
            (a, b)
        })
        .collect();
    c.bench_function("table2/all_fourteen_budgets", |b| {
        b.iter(|| {
            for (a, bb) in &budgets {
                black_box(wilcoxon_rank_sum(a, bb, Alternative::TwoSided));
            }
        })
    });
}

criterion_group!(benches, table2);
criterion_main!(benches);
