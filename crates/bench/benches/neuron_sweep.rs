//! §IV neuron-sweep workload: winner search and one training epoch as a
//! function of the competitive-layer size.

use bsom_bench::bench_dataset;
use bsom_som::{BSom, BSomConfig, SelfOrganizingMap, TrainSchedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn neuron_sweep(c: &mut Criterion) {
    let dataset = bench_dataset();
    let probe = dataset.test[0].0.clone();

    let mut group = c.benchmark_group("neuron_sweep");
    group.sample_size(20);
    for &neurons in &[10usize, 40, 100] {
        let mut rng = StdRng::seed_from_u64(neurons as u64);
        let som = BSom::new(BSomConfig::new(neurons, 768), &mut rng);
        group.bench_with_input(
            BenchmarkId::new("winner_search", neurons),
            &neurons,
            |b, _| b.iter(|| black_box(som.winner(&probe).unwrap())),
        );

        group.bench_with_input(
            BenchmarkId::new("one_training_epoch", neurons),
            &neurons,
            |b, &n| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(n as u64);
                    let mut som = BSom::new(BSomConfig::new(n, 768), &mut rng);
                    som.train_labelled_data(&dataset.train, TrainSchedule::new(1), &mut rng)
                        .unwrap();
                    black_box(som)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, neuron_sweep);
criterion_main!(benches);
