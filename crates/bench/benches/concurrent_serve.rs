//! Train-while-serve workload (DESIGN.md §"Train-while-serve and the shared
//! packed layout"): classification latency through a `Recognizer`, measured
//! once against a quiet service and once while a `Trainer` on another thread
//! feeds, publishes and swaps snapshots continuously. The two figures must
//! match — snapshot pickup is one atomic load per batch, and publishes are a
//! packed-layout clone plus a pointer swap, so an in-flight training epoch
//! must not move serving latency.
//!
//! Caveat on core count: the snapshot machinery adds no blocking, but on a
//! **single-CPU host** the while-training figure still includes plain CPU
//! time-sharing with the trainer thread (fair-share bound: 2× the quiet
//! latency). Staying well under that bound shows readers are never stalled
//! on a lock; flat figures need at least two cores.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use bsom_bench::bench_dataset;
use bsom_engine::{EngineConfig, SomService};
use bsom_som::{BSom, BSomConfig, TrainSchedule};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn concurrent_serve(c: &mut Criterion) {
    let dataset = bench_dataset();
    let probes: Vec<_> = dataset.test.iter().map(|(s, _)| s.clone()).collect();
    let shared = Arc::new(probes);
    let som = BSom::new(
        BSomConfig::paper_default(),
        &mut StdRng::seed_from_u64(0xB50A),
    );
    let (service, mut trainer) = SomService::train_while_serve(
        som,
        TrainSchedule::new(usize::MAX),
        &dataset.train,
        EngineConfig::with_workers(2).with_publish_every_steps(8),
    );

    let mut group = c.benchmark_group("concurrent_serve");
    group.throughput(Throughput::Elements(shared.len() as u64));

    // Baseline: the service is quiet — no trainer thread running.
    let mut recognizer = service.recognizer();
    group.bench_function("classify_batch_quiet", |b| {
        b.iter(|| black_box(recognizer.classify_batch(Arc::clone(&shared))))
    });

    // The same batches while a training epoch is in flight: the trainer
    // feeds labelled signatures and publishes a snapshot every 8 steps on
    // its own thread for the whole measurement.
    let stop = Arc::new(AtomicBool::new(false));
    let trainer_stop = Arc::clone(&stop);
    let feed: Vec<_> = dataset.train.clone();
    let trainer_thread = std::thread::spawn(move || {
        let mut fed = 0u64;
        'outer: loop {
            for (signature, label) in &feed {
                if trainer_stop.load(Ordering::Relaxed) {
                    break 'outer;
                }
                trainer.feed(signature, *label).unwrap();
                fed += 1;
            }
        }
        fed
    });

    group.bench_function("classify_batch_while_training", |b| {
        b.iter(|| black_box(recognizer.classify_batch(Arc::clone(&shared))))
    });

    stop.store(true, Ordering::Relaxed);
    let fed = trainer_thread.join().expect("trainer thread panicked");
    println!(
        "concurrent_serve: trainer fed {fed} steps (~{} publishes) during the measurement; \
         final served snapshot is v{}",
        fed / 8,
        service.version()
    );
    assert!(fed > 0, "the trainer must actually have been training");

    group.finish();
}

criterion_group!(benches, concurrent_serve);
criterion_main!(benches);
