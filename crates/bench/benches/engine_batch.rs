//! Batched-engine workload (DESIGN.md §"The batched engine layout"): the
//! scalar per-signature winner loop versus the plane-sliced `PackedLayer`
//! search versus a sharded `Recognizer` over a `SomService`, all on the
//! paper's 40-neuron × 768-bit configuration — the acceptance
//! micro-benchmark for the batched layout.

use bsom_bench::{bench_dataset, trained_bsom};
use bsom_engine::{EngineConfig, SomService};
use bsom_som::{LabelledSom, SelfOrganizingMap};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn engine_batch(c: &mut Criterion) {
    let dataset = bench_dataset();
    let som = trained_bsom(&dataset, 3);
    let classifier = LabelledSom::label(som.clone(), &dataset.train);
    let layer = som.packed_layer();
    let signatures: Vec<_> = dataset.test.iter().map(|(s, _)| s.clone()).collect();
    let shared = Arc::new(signatures.clone());

    let mut group = c.benchmark_group("engine_batch");
    group.throughput(Throughput::Elements(signatures.len() as u64));

    // One winner search per call through the trait (now itself running on
    // the shared packed layout — the pre-PR-2 per-neuron loop is gone).
    group.bench_function("scalar_per_neuron_loop", |b| {
        b.iter(|| {
            for s in &signatures {
                black_box(som.winner(s).unwrap());
            }
        })
    });

    // The plane-sliced batched search, single thread, reused buffer.
    group.bench_function("packed_layer_batch", |b| {
        let mut distances = vec![0u32; layer.neuron_count()];
        b.iter(|| {
            for s in &signatures {
                black_box(layer.winner_with_buffer(s, &mut distances).unwrap());
            }
        })
    });

    // The full service: batched search sharded across a small fixed pool,
    // through a Recognizer handle (includes the per-batch version check).
    let service = SomService::serve(&classifier, EngineConfig::with_workers(4));
    let mut recognizer = service.recognizer();
    group.bench_function("recognition_service_4_workers", |b| {
        b.iter(|| black_box(recognizer.classify_batch(Arc::clone(&shared))))
    });

    group.finish();
}

criterion_group!(benches, engine_batch);
criterion_main!(benches);
