//! Batched-engine workload (DESIGN.md §"The batched engine layout"): the
//! scalar per-neuron winner loop versus the plane-sliced `PackedLayer`
//! search versus the sharded `RecognitionEngine`, all on the paper's
//! 40-neuron × 768-bit configuration — the acceptance micro-benchmark for
//! the batched layout.

use bsom_bench::{bench_dataset, trained_bsom};
use bsom_engine::{EngineConfig, RecognitionEngine};
use bsom_som::{LabelledSom, PackedLayer, SelfOrganizingMap};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn engine_batch(c: &mut Criterion) {
    let dataset = bench_dataset();
    let som = trained_bsom(&dataset, 3);
    let classifier = LabelledSom::label(som.clone(), &dataset.train);
    let layer = PackedLayer::from_som(&som);
    let signatures: Vec<_> = dataset.test.iter().map(|(s, _)| s.clone()).collect();
    let shared = Arc::new(signatures.clone());

    let mut group = c.benchmark_group("engine_batch");
    group.throughput(Throughput::Elements(signatures.len() as u64));

    // The baseline the tentpole replaces: 40 per-neuron TriStateVector
    // Hamming calls per signature.
    group.bench_function("scalar_per_neuron_loop", |b| {
        b.iter(|| {
            for s in &signatures {
                black_box(som.winner(s).unwrap());
            }
        })
    });

    // The plane-sliced batched search, single thread.
    group.bench_function("packed_layer_batch", |b| {
        let mut distances = vec![0u32; layer.neuron_count()];
        b.iter(|| {
            for s in &signatures {
                black_box(layer.winner_with_buffer(s, &mut distances).unwrap());
            }
        })
    });

    // The full engine: batched search sharded across a small fixed pool.
    let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(4));
    group.bench_function("recognition_engine_4_workers", |b| {
        b.iter(|| black_box(engine.classify_batch_shared(Arc::clone(&shared))))
    });

    group.finish();
}

criterion_group!(benches, engine_batch);
criterion_main!(benches);
