//! Figure 4/5 workload: the cycle-accurate FPGA blocks — weight
//! initialisation, recognition front end and on-chip training presentations.

use bsom_bench::{bench_dataset, trained_bsom};
use bsom_fpga::{FpgaBSom, FpgaConfig};
use bsom_signature::BinaryVector;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig5(c: &mut Criterion) {
    let dataset = bench_dataset();
    let som = trained_bsom(&dataset, 3);
    let input = BinaryVector::from_bits((0..768).map(|i| i % 5 == 0));

    c.bench_function("fig5/weight_initialisation_768_cycles", |b| {
        b.iter(|| {
            let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 0xF15);
            black_box(fpga.initialize())
        })
    });

    c.bench_function("fig5/classify_one_signature", |b| {
        let mut fpga = FpgaBSom::from_trained(&som);
        b.iter(|| black_box(fpga.classify(&input).unwrap()))
    });

    c.bench_function("fig5/train_one_pattern_on_chip", |b| {
        let mut fpga = FpgaBSom::from_trained(&som);
        b.iter(|| black_box(fpga.train_pattern(&input, 0, 100).unwrap()))
    });

    c.bench_function("fig5/display_block_render_40_neurons", |b| {
        let fpga = FpgaBSom::from_trained(&som);
        b.iter(|| black_box(fpga.display_frames()))
    });
}

criterion_group!(benches, fig5);
criterion_main!(benches);
