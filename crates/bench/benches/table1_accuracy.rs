//! Table I workload: one full train + label + evaluate run of each SOM at a
//! representative low and high iteration budget.

use bsom_bench::bench_dataset;
use bsom_eval::table1::{bsom_accuracy, csom_accuracy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn table1(c: &mut Criterion) {
    let dataset = bench_dataset();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for &iterations in &[5usize, 20] {
        group.bench_with_input(
            BenchmarkId::new("bsom_train_eval", iterations),
            &iterations,
            |b, &iters| {
                b.iter(|| black_box(bsom_accuracy(&dataset, 40, iters, 7)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("csom_train_eval", iterations),
            &iterations,
            |b, &iters| {
                b.iter(|| black_box(csom_accuracy(&dataset, 40, iters, 7)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
