//! Training-datapath workload (DESIGN.md §"The word-parallel trainer"): the
//! bit-serial per-trit update loop versus the word-parallel (value, care)
//! plane kernels, on the paper's 40-neuron × 768-bit configuration — the
//! acceptance micro-benchmark for the word-parallel trainer, mirroring what
//! `engine_batch.rs` is for the recognition side.

use bsom_bench::bench_dataset;
use bsom_engine::{EngineConfig, SomService};
use bsom_som::{BSom, BSomConfig, ObjectLabel, SelfOrganizingMap, TrainSchedule};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn train_throughput(c: &mut Criterion) {
    let dataset = bench_dataset();
    let signatures = dataset.train_signatures();
    let schedule = TrainSchedule::new(usize::MAX); // hold the radius fixed across rounds
    let fresh = || {
        BSom::new(
            BSomConfig::paper_default(),
            &mut StdRng::seed_from_u64(0xB50A),
        )
    };

    let mut group = c.benchmark_group("train_throughput");
    group.throughput(Throughput::Elements(signatures.len() as u64));

    // The baseline the tentpole replaces: one trit visit + one scalar coin
    // per weight bit, 768 bits x up to 9 neighbourhood neurons per step.
    group.bench_function("bit_serial_epoch", |b| {
        let mut som = fresh();
        let mut t = 0usize;
        b.iter(|| {
            for s in &signatures {
                black_box(som.train_step_bit_serial(s, t, &schedule).unwrap());
            }
            t += 1;
        })
    });

    // The production path: Bernoulli mask words + the three-bitwise-op
    // update kernel, applied to the whole neighbourhood window on the
    // packed columns under one broadcast mask stream (see
    // `neighbourhood_update.rs` for the window-vs-per-neuron comparison),
    // with incrementally maintained #-counts in the winner search.
    group.bench_function("word_parallel_epoch", |b| {
        let mut som = fresh();
        let mut t = 0usize;
        b.iter(|| {
            for s in &signatures {
                black_box(som.train_step(s, t, &schedule).unwrap());
            }
            t += 1;
        })
    });

    // The same path through the service's Trainer (adds shuffling, win-stat
    // accumulation and one snapshot publish per epoch — the production
    // train-while-serve entry point; publish cost must stay in the noise).
    group.bench_function("service_trainer_epoch", |b| {
        let labelled: Vec<(_, ObjectLabel)> = signatures
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), ObjectLabel::new(i % 9)))
            .collect();
        let (_service, mut trainer) = SomService::train_while_serve(
            fresh(),
            TrainSchedule::new(usize::MAX),
            &[],
            EngineConfig::with_workers(1),
        );
        let mut rng = StdRng::seed_from_u64(0x5EED);
        b.iter(|| {
            black_box(trainer.train_epochs(&labelled, 1, &mut rng).unwrap());
        })
    });

    group.finish();
}

criterion_group!(benches, train_throughput);
criterion_main!(benches);
