//! DESIGN.md §"Experiment and ablation index" workload: cost of one
//! training epoch under each
//! variant of the tri-state update rule (damped default, undamped, relax-only
//! neighbours, winner-only).

use bsom_bench::bench_dataset;
use bsom_som::{BSom, BSomConfig, NeighbourRule, SelfOrganizingMap, TrainSchedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn ablation(c: &mut Criterion) {
    let dataset = bench_dataset();
    let base = BSomConfig::paper_default();
    let variants: Vec<(&str, BSomConfig)> = vec![
        ("damped_default", base),
        ("undamped", base.with_update_probabilities(1.0, 1.0)),
        (
            "relax_only_neighbours",
            base.with_neighbour_rule(NeighbourRule::RelaxOnly),
        ),
        (
            "winner_only",
            base.with_neighbour_rule(NeighbourRule::WinnerOnly),
        ),
    ];

    let mut group = c.benchmark_group("ablation_update_rule");
    group.sample_size(10);
    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::new("one_epoch", name), &config, |b, cfg| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(0xAB);
                let mut som = BSom::new(*cfg, &mut rng);
                som.train_labelled_data(&dataset.train, TrainSchedule::new(1), &mut rng)
                    .unwrap();
                black_box(som)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
