//! Neighbourhood-update workload (DESIGN.md §"The neighbourhood broadcast
//! update"): the plane-sliced window trainer — one broadcast Bernoulli mask
//! stream applied to the whole neighbourhood address window on the packed
//! columns — versus the retained per-neuron word-parallel path, on the
//! paper's 40-neuron × 768-bit configuration across neighbourhood radii.
//!
//! This is the acceptance micro-benchmark of the plane-sliced trainer: the
//! window path must sustain **≥ 2x** the per-neuron path's steps/s at
//! radius ≥ 2 (the gap grows with the radius, because the per-neuron path's
//! RNG cost is per neuron per word while the window path's is per word).
//! `bench_report` records the radius-4 figure in `BENCH_train.json` and the
//! `--check` gate holds the ratio.

use bsom_bench::bench_dataset;
use bsom_som::{BSom, BSomConfig, NeighbourhoodSchedule, TrainSchedule};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn neighbourhood_update(c: &mut Criterion) {
    let dataset = bench_dataset();
    let signatures = dataset.train_signatures();
    let fresh = || {
        BSom::new(
            BSomConfig::paper_default(),
            &mut StdRng::seed_from_u64(0xB50A),
        )
    };

    let mut group = c.benchmark_group("neighbourhood_update");
    group.throughput(Throughput::Elements(signatures.len() as u64));

    // Constant radii so every measured step updates the same window width
    // (the paper's schedule ends at radius 1 and starts at 4).
    for radius in [1usize, 2, 4] {
        let schedule = TrainSchedule::new(usize::MAX)
            .with_neighbourhood(NeighbourhoodSchedule::Constant { radius });

        // The PR 3/4 baseline: word-parallel within a neuron, but the
        // neighbourhood neurons visited one at a time, re-drawing Bernoulli
        // mask words per neuron.
        group.bench_function(format!("per_neuron_epoch_r{radius}"), |b| {
            let mut som = fresh();
            let mut t = 0usize;
            b.iter(|| {
                for s in &signatures {
                    black_box(som.train_step_per_neuron(s, t, &schedule).unwrap());
                }
                t += 1;
            })
        });

        // The plane-sliced window path: one broadcast mask stream per step,
        // applied to the neighbourhood's run of packed column words.
        group.bench_function(format!("window_epoch_r{radius}"), |b| {
            use bsom_som::SelfOrganizingMap;
            let mut som = fresh();
            let mut t = 0usize;
            b.iter(|| {
                for s in &signatures {
                    black_box(som.train_step(s, t, &schedule).unwrap());
                }
                t += 1;
            })
        });
    }

    group.finish();
}

criterion_group!(benches, neighbourhood_update);
criterion_main!(benches);
