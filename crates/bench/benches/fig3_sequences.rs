//! Figure 3 workload: generation of temporally-coherent signature sequences.

use bsom_dataset::{signature_sequence, AppearanceModel, CorruptionConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fig3(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let model = AppearanceModel::generate(0, &mut rng);
    let corruption = CorruptionConfig::default();

    let mut group = c.benchmark_group("fig3");
    for &frames in &[20usize, 60] {
        group.bench_with_input(
            BenchmarkId::new("signature_sequence", frames),
            &frames,
            |b, &n| b.iter(|| black_box(signature_sequence(&model, &corruption, n, &mut rng))),
        );
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
