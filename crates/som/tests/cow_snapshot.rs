//! Property suite for **copy-on-write snapshot publication** (DESIGN.md
//! §"Copy-on-write publication and the tournament WTA").
//!
//! A publish is a [`PackedLayer`] clone: a spine of `Arc`-per-word-row
//! pointers, never a deep copy. Three properties are pinned down:
//!
//! 1. **Correctness** — every published snapshot is word-for-word equal to a
//!    from-scratch [`PackedLayer::pack`] of the map at publish time, and
//!    stays bit-identical forever after (training never writes through a
//!    published snapshot's rows).
//! 2. **Exact sharing** — across a single training step, a word row is
//!    physically shared between consecutive snapshots **iff** its content is
//!    unchanged: untouched rows are never copied, touched rows are never
//!    aliased.
//! 3. **Scale** — at the ROADMAP's 1024-neuron × 768-bit shape, a
//!    small-radius step leaves all but the dirtied row shared
//!    (`Arc::ptr_eq` sharing ratio > 0, deterministically 11/12 here), and
//!    a stepless publish shares everything.

use bsom_signature::{BinaryVector, TriStateVector, Trit};
use bsom_som::{BSom, BSomConfig, PackedLayer, SelfOrganizingMap, TrainSchedule};
use proptest::prelude::*;

fn binary_vector(len: usize) -> impl Strategy<Value = BinaryVector> {
    prop::collection::vec(any::<bool>(), len).prop_map(BinaryVector::from_bits)
}

/// Number of word rows whose content (both planes) is identical in the two
/// layers — the reference count the physical sharing must match.
fn content_equal_rows(a: &PackedLayer, b: &PackedLayer) -> usize {
    (0..a.word_row_count())
        .filter(|&w| a.value_row(w) == b.value_row(w) && a.care_row(w) == b.care_row(w))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Publish-per-step over an arbitrary map: every snapshot equals a fresh
    /// pack at publish time, and — the copy-on-write exactness property —
    /// consecutive snapshots physically share **exactly** the rows the step
    /// left bit-identical (a shared row is trivially equal; an equal row
    /// must not have been copied).
    #[test]
    fn single_step_publishes_share_exactly_the_untouched_rows(
        seed in any::<u64>(),
        neurons in 2usize..24,
        steps in 1usize..10,
        inputs in prop::collection::vec(binary_vector(130), 10),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut som = BSom::new(BSomConfig::new(neurons, 130), &mut rng);
        let schedule = TrainSchedule::new(steps);
        let mut previous = som.packed_layer().clone();
        for (t, input) in inputs.iter().take(steps).enumerate() {
            som.train_step(input, t, &schedule).unwrap();
            let snapshot = som.packed_layer().clone();
            prop_assert_eq!(&snapshot, &PackedLayer::pack(&som));
            // Physical sharing must match content equality exactly.
            prop_assert_eq!(
                snapshot.shared_row_count(&previous),
                content_equal_rows(&snapshot, &previous)
            );
            previous = snapshot;
        }
    }

    /// Publication isolation at arbitrary publish cadence: snapshots taken
    /// mid-training equal a deep reference copy of the map at their publish
    /// time — and still do after further training, i.e. copy-on-write never
    /// lets a later update write through an already-published row.
    #[test]
    fn published_snapshots_never_move_under_further_training(
        seed in any::<u64>(),
        neurons in 2usize..16,
        cadence in 1usize..4,
        inputs in prop::collection::vec(binary_vector(96), 12),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut som = BSom::new(BSomConfig::new(neurons, 96), &mut rng);
        let schedule = TrainSchedule::new(inputs.len());
        let mut published: Vec<(PackedLayer, PackedLayer)> = Vec::new();
        for (t, input) in inputs.iter().enumerate() {
            som.train_step(input, t, &schedule).unwrap();
            if t % cadence == 0 {
                // pack() builds fresh rows: a deep, unshared reference copy.
                published.push((som.packed_layer().clone(), PackedLayer::pack(&som)));
            }
        }
        for (snapshot, reference) in &published {
            prop_assert_eq!(snapshot, reference);
        }
    }
}

/// The acceptance-criterion shape: 1024 neurons × 768 bits. A radius-1 step
/// whose window mismatches the input in exactly one 64-bit word dirties one
/// of the 12 word rows; the other 11 must stay physically shared with the
/// pre-step snapshot — publish cost is O(rows touched), not O(map).
#[test]
fn small_radius_step_at_1024_neurons_keeps_untouched_rows_shared() {
    let vector_len = 768;
    // The probe pattern: alternating bits, fully concrete.
    let probe: Vec<Trit> = (0..vector_len)
        .map(|i| if i % 2 == 0 { Trit::One } else { Trit::Zero })
        .collect();
    // Neurons 0 and 1 hold the probe pattern exactly; everyone else holds
    // its complement (Hamming distance 768, never the winner). The input
    // differs from the probe in bit 400 only (word row 6), so the radius-1
    // window {0, 1} mismatches the input in exactly one word.
    let complement: Vec<Trit> = probe
        .iter()
        .map(|t| match t {
            Trit::One => Trit::Zero,
            _ => Trit::One,
        })
        .collect();
    let weights: Vec<TriStateVector> = (0..1024)
        .map(|i| {
            let trits = if i < 2 { &probe } else { &complement };
            TriStateVector::from_trits(trits.iter().copied())
        })
        .collect();
    let mut input_bits: Vec<bool> = (0..vector_len).map(|i| i % 2 == 0).collect();
    input_bits[400] = !input_bits[400];
    let input = BinaryVector::from_bits(input_bits);

    // p = 1 makes the relax transition deterministic: the mismatched bit
    // *will* turn `#`, so row 6 is guaranteed dirty (and only row 6).
    let mut som = BSom::from_weights(weights)
        .unwrap()
        .with_update_probabilities(1.0, 1.0);
    assert_eq!(som.packed_layer().neuron_count(), 1024);
    assert_eq!(som.packed_layer().word_row_count(), 12);

    let before = som.packed_layer().clone();
    assert_eq!(
        before.shared_row_count(som.packed_layer()),
        12,
        "a publish with no training in between shares every row"
    );
    assert!(before.shares_counts_with(som.packed_layer()));

    // Last iteration of the schedule: the quartered policy is at radius 1.
    let schedule = TrainSchedule::new(4);
    assert_eq!(schedule.radius_at(3), 1);
    let winner = som.train_step(&input, 3, &schedule).unwrap();
    assert_eq!(
        winner.index, 0,
        "the probe neurons win, address breaks the tie"
    );

    let after = som.packed_layer().clone();
    assert_eq!(
        &after,
        &PackedLayer::pack(&som),
        "snapshot equals a fresh pack"
    );
    let shared = after.shared_row_count(&before);
    assert!(
        shared > 0,
        "consecutive snapshots must share untouched rows"
    );
    assert_eq!(
        shared, 11,
        "exactly the one dirtied word row (bit 400 => row 6) is copied"
    );
    for w in (0..12).filter(|&w| w != 6) {
        assert_eq!(after.value_row(w), before.value_row(w));
        assert_eq!(after.care_row(w), before.care_row(w));
    }
    assert_ne!(
        after.care_row(6),
        before.care_row(6),
        "the relaxed bit cleared a care bit in row 6"
    );
    assert!(
        !after.shares_counts_with(&before),
        "the relax changed #-counts, so the count table was copied"
    );
}
