//! Property suite pinning the batch/scalar winner-search equivalence
//! (DESIGN.md §"The batched engine layout"): for arbitrary layers and inputs
//! — including engineered ties — the plane-sliced [`PackedLayer`] search must
//! return a bit-identical `{winner, distance}` to the per-neuron
//! [`BSom::winner`] reference loop, and identical full distance vectors.

use bsom_signature::{BinaryVector, TriStateVector, Trit};
use bsom_som::{BSom, PackedLayer, SelfOrganizingMap};
use proptest::prelude::*;

/// Strategy producing an arbitrary binary input of the given length.
fn binary_vector(len: usize) -> impl Strategy<Value = BinaryVector> {
    prop::collection::vec(any::<bool>(), len).prop_map(BinaryVector::from_bits)
}

/// Strategy producing an arbitrary tri-state weight vector of the given
/// length, with all three trit kinds well represented.
fn tristate_vector(len: usize) -> impl Strategy<Value = TriStateVector> {
    prop::collection::vec(0u8..3, len).prop_map(|raw| {
        TriStateVector::from_trits(raw.into_iter().map(|v| match v {
            0 => Trit::Zero,
            1 => Trit::One,
            _ => Trit::DontCare,
        }))
    })
}

/// Strategy producing a whole competitive layer: 1–12 neurons over vectors
/// spanning several 64-bit words (so the masked tail word is exercised).
fn layer(len: usize) -> impl Strategy<Value = Vec<TriStateVector>> {
    prop::collection::vec(tristate_vector(len), 1..12)
}

/// A layer engineered to produce distance ties: neurons are drawn from a
/// tiny pool of base vectors, with only `#`-counts and addresses left to
/// disambiguate.
fn tie_heavy_layer(len: usize) -> impl Strategy<Value = Vec<TriStateVector>> {
    (prop::collection::vec(tristate_vector(len), 1..3), 2usize..9).prop_map(|(bases, copies)| {
        let mut neurons = Vec::new();
        for _ in 0..copies {
            neurons.extend(bases.iter().cloned());
        }
        neurons
    })
}

/// Asserts full scalar/batched agreement for one layer and one input.
fn assert_equivalent(
    weights: Vec<TriStateVector>,
    input: &BinaryVector,
) -> Result<(), TestCaseError> {
    let som = BSom::from_weights(weights.clone()).expect("non-empty layer");
    let packed = PackedLayer::from_neurons(&weights).expect("non-empty layer");

    let scalar_distances = som.winner(input).map(|_| som.distances(input).unwrap());
    let packed_distances = packed.distances(input);
    prop_assert_eq!(scalar_distances.is_ok(), packed_distances.is_ok());
    let (Ok(scalar_distances), Ok(packed_distances)) = (scalar_distances, packed_distances) else {
        return Ok(()); // both rejected the input (length mismatch)
    };
    for (s, p) in scalar_distances.iter().zip(&packed_distances) {
        prop_assert_eq!(*s, *p as f64);
    }

    let scalar = som.winner(input).unwrap();
    let batched = packed.winner(input).unwrap();
    prop_assert_eq!(batched.index, scalar.index);
    prop_assert_eq!(batched.distance as f64, scalar.distance);
    prop_assert_eq!(
        batched.dont_care_count as usize,
        weights[batched.index].count_dont_care()
    );
    Ok(())
}

proptest! {
    /// Arbitrary layers and inputs across a word boundary (len 96 = 1.5 words).
    #[test]
    fn batch_winner_matches_scalar_loop(weights in layer(96), input in binary_vector(96)) {
        assert_equivalent(weights, &input)?;
    }

    /// Tie-heavy layers: duplicated neurons force the `{distance, #-count,
    /// address}` tie-break to decide, and it must decide identically.
    #[test]
    fn tie_breaks_are_bit_identical(weights in tie_heavy_layer(64), input in binary_vector(64)) {
        assert_equivalent(weights, &input)?;
    }

    /// The paper's exact shape: 768-bit vectors (12 whole words, no tail).
    #[test]
    fn paper_width_vectors_agree(weights in layer(768), input in binary_vector(768)) {
        assert_equivalent(weights, &input)?;
    }

    /// Wrong-length inputs must be rejected by both paths, never mis-scored.
    #[test]
    fn both_paths_reject_mismatched_lengths(weights in layer(96), input in binary_vector(64)) {
        assert_equivalent(weights, &input)?;
    }

    /// The layer's tournament winner equals a linear scan over its own
    /// distance vector — the integration-level restatement of the
    /// `tournament_wta` suite, on layers wide enough (> [`WTA_SHARD_LEN`]
    /// neurons) to force a genuine multi-shard reduction.
    #[test]
    fn layer_tournament_winner_equals_linear_scan(
        weights in prop::collection::vec(tristate_vector(96), 60..160),
        input in binary_vector(96),
    ) {
        let packed = PackedLayer::from_neurons(&weights).expect("non-empty layer");
        let distances = packed.distances(&input).unwrap();
        let (index, distance) =
            bsom_signature::select_winner(&distances, packed.dont_care_counts()).unwrap();
        let winner = packed.winner(&input).unwrap();
        prop_assert_eq!(winner.index, index);
        prop_assert_eq!(winner.distance, distance);
        prop_assert_eq!(winner.dont_care_count, packed.dont_care_counts()[index]);
    }

    /// A batched call over many inputs equals one-at-a-time calls.
    #[test]
    fn winners_batch_equals_pointwise(
        weights in layer(96),
        inputs in prop::collection::vec(binary_vector(96), 1..8),
    ) {
        let packed = PackedLayer::from_neurons(&weights).expect("non-empty layer");
        let batch = packed.winners(&inputs).unwrap();
        for (input, batched) in inputs.iter().zip(&batch) {
            prop_assert_eq!(*batched, packed.winner(input).unwrap());
        }
    }
}
