//! Full-train dispatch identity: every selectable SIMD lowering must
//! reproduce the forced-scalar training run **bit for bit** — weights,
//! cached `#`-counts, the maintained packed layout, and the xorshift64*
//! stream itself.
//!
//! The wide kernels (DESIGN.md §"Wide-lane kernels and dispatch") never
//! touch the RNG: mask drawing stays word-sequential through the
//! lane-batched draw entry, so the stream a train run consumes is a pure
//! function of the data — not of the dispatch. The strongest observable of
//! that claim is whole-map equality after a real training run: `BSom`'s
//! `PartialEq` covers the private RNG state, so one `assert_eq!` pins
//! weights, `#`-counts *and* stream position at once. The maintained
//! [`PackedLayer`] is additionally compared against a from-scratch
//! [`PackedLayer::pack`], so the incremental popcount/plane maintenance
//! under each lowering is checked against a full rebuild.

use bsom_signature::lanes::Dispatch;
use bsom_signature::{force_dispatch, BinaryVector};
use bsom_som::{BSom, BSomConfig, NeighbourRule, PackedLayer, SelfOrganizingMap, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes the tests in this binary around the process-wide forced
/// dispatch so each run is attributable to one lowering. (Races would not
/// corrupt results — every lowering is bit-identical — but the test names
/// should mean what they say.)
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// Trains a fresh map under one forced dispatch and returns it.
fn train_under(
    dispatch: Dispatch,
    config: &BSomConfig,
    patterns: &[BinaryVector],
    iterations: usize,
    seed: u64,
) -> BSom {
    force_dispatch(Some(dispatch)).expect("test only forces available lowerings");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut som = BSom::new(*config, &mut rng);
    som.train(patterns, TrainSchedule::new(iterations), &mut rng)
        .expect("training the test corpus succeeds");
    som
}

/// Random signatures of length `len` (including partial final words).
fn patterns(len: usize, count: usize, rng: &mut StdRng) -> Vec<BinaryVector> {
    (0..count).map(|_| BinaryVector::random(len, rng)).collect()
}

/// The identity assertion for one configuration: the scalar run is the
/// reference, and every available lowering must reproduce it exactly.
fn assert_all_dispatches_identical(
    config: &BSomConfig,
    corpus: &[BinaryVector],
    iterations: usize,
    seed: u64,
) {
    let reference = train_under(Dispatch::Scalar, config, corpus, iterations, seed);
    let repacked = PackedLayer::pack(&reference);
    assert_eq!(
        *reference.packed_layer(),
        repacked,
        "scalar maintained layout must equal a from-scratch pack"
    );
    for dispatch in Dispatch::available() {
        let som = train_under(dispatch, config, corpus, iterations, seed);
        assert_eq!(
            som, reference,
            "{dispatch} training run diverged from scalar (weights, #-counts or RNG stream)"
        );
        assert_eq!(
            *som.packed_layer(),
            repacked,
            "{dispatch} maintained layout must equal a from-scratch pack"
        );
    }
}

#[test]
fn full_train_runs_are_bit_identical_under_every_dispatch() {
    let guard = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(0x51_D01D);
    // Partial-tail vector length (not a multiple of 64) and a map wide
    // enough for multi-word rows through every lane width.
    let corpus = patterns(190, 12, &mut rng);
    let config = BSomConfig::new(24, 190)
        .with_neighbour_rule(NeighbourRule::SameAsWinner)
        .with_update_probabilities(0.3, 0.3);
    assert_all_dispatches_identical(&config, &corpus, 3, 0xBEE5);
    force_dispatch(None).expect("clearing the override always succeeds");
    drop(guard);
}

#[test]
fn distinct_probabilities_draw_the_same_stream_under_every_dispatch() {
    let guard = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(0xACE);
    // Distinct relax/commit probabilities disable the shared-draw
    // coalescing, so this covers the two-draws-per-word stream shape too.
    let corpus = patterns(130, 8, &mut rng);
    let config = BSomConfig::new(16, 130).with_update_probabilities(0.45, 0.15);
    assert_all_dispatches_identical(&config, &corpus, 2, 0x7EA7);
    force_dispatch(None).expect("clearing the override always succeeds");
    drop(guard);
}

#[test]
fn relax_only_neighbours_stay_identical_under_every_dispatch() {
    let guard = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(0xC0FE);
    let corpus = patterns(96, 6, &mut rng);
    let config = BSomConfig::new(10, 96)
        .with_neighbour_rule(NeighbourRule::RelaxOnly)
        .with_update_probabilities(0.3, 0.3);
    assert_all_dispatches_identical(&config, &corpus, 2, 0x1DEA);
    force_dispatch(None).expect("clearing the override always succeeds");
    drop(guard);
}

#[test]
fn blocked_distance_walk_matches_per_neuron_distances_past_the_block_width() {
    // 2560 neurons crosses the cache-block threshold (1024), so the blocked
    // column walk runs; every distance must still equal the per-neuron
    // reference Hamming.
    let mut rng = StdRng::seed_from_u64(0xB10C);
    let len = 70; // two words, partial tail
    let neurons = 2560;
    let som = BSom::new(BSomConfig::new(neurons, len), &mut rng);
    let input = BinaryVector::random(len, &mut rng);
    let distances = som
        .packed_layer()
        .distances(&input)
        .expect("length matches");
    assert_eq!(distances.len(), neurons);
    for (i, weight) in som.neurons().iter().enumerate() {
        assert_eq!(
            distances[i] as usize,
            weight.hamming(&input).expect("length matches"),
            "neuron {i}"
        );
    }
    // The winner search runs over the same blocked walk.
    let winner = som.winner(&input).expect("length matches");
    let best = (0..neurons).min_by_key(|&i| (distances[i], i)).unwrap();
    assert_eq!(winner.distance as u32, distances[best]);
}
