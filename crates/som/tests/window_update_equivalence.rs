//! Property suite pinning the plane-sliced neighbourhood update to the
//! per-neuron word-parallel path (DESIGN.md §"The neighbourhood broadcast
//! update").
//!
//! The window path draws **one** broadcast mask stream per training step and
//! shares it across every neuron in the neighbourhood address window; the
//! per-neuron path re-draws masks for each neuron. The two therefore consume
//! the shared xorshift64* state differently, and the equivalence guarantee
//! is two-tiered, exactly like the word-parallel-vs-bit-serial suite:
//!
//! * for probabilities 0 and 1 neither path consumes randomness, so
//!   [`BSom::train_step`](bsom_som::SelfOrganizingMap::train_step) (window)
//!   and [`BSom::train_step_per_neuron`](bsom_som::BSom::train_step_per_neuron)
//!   must produce **bit-identical** maps — weights, cached `#`-counts, RNG
//!   state and all, under every neighbour rule;
//! * for interior probabilities every transition the window path makes must
//!   be *legal* under the tri-state rule table, and the *number* of
//!   transitions must match the configured probability statistically under
//!   fixed seeds (each neuron's marginal flip count is Binomial even though
//!   the broadcast mask correlates flips *across* neurons — that correlation
//!   is the FPGA's, not a bug).
//!
//! Additionally, after any window-path run the incrementally maintained
//! [`PackedLayer`] must equal a from-scratch `PackedLayer::pack` word for
//! word — the window update writes the packed columns *first* and mirrors
//! them back into the per-neuron planes, so this pins the write-back half.
//!
//! Vector lengths deliberately include non-multiples of 64 so the masked
//! final partial word is always in play.

use bsom_signature::{BinaryVector, TriStateVector, Trit};
use bsom_som::{BSom, BSomConfig, NeighbourRule, PackedLayer, SelfOrganizingMap, TrainSchedule};
use proptest::prelude::*;

/// The longest vector the raw strategies generate; tests truncate to the
/// drawn length (the vendored proptest has no `prop_flat_map`, so lengths
/// cannot parameterise sibling strategies directly).
const MAX_LEN: usize = 190;

/// Lengths that exercise sub-word, word-aligned and partial-tail vectors.
const LENGTHS: [usize; 6] = [17, 64, 70, 96, 128, MAX_LEN];

/// Strategy drawing one of [`LENGTHS`].
fn arbitrary_len() -> impl Strategy<Value = usize> {
    (0usize..LENGTHS.len()).prop_map(|i| LENGTHS[i])
}

/// Raw trit material for a whole competitive layer of 2–10 neurons — wide
/// enough that a radius-4 window holds many neurons.
fn raw_layer() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..3, MAX_LEN), 2..10)
}

/// Raw bit material for a batch of input presentations.
fn raw_inputs(max_steps: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), MAX_LEN), 1..max_steps)
}

/// Builds the first `len` trits of each raw neuron into a weight layer.
fn build_layer(raw: &[Vec<u8>], len: usize) -> Vec<TriStateVector> {
    raw.iter()
        .map(|trits| {
            TriStateVector::from_trits(trits[..len].iter().map(|v| match v {
                0 => Trit::Zero,
                1 => Trit::One,
                _ => Trit::DontCare,
            }))
        })
        .collect()
}

/// Builds the first `len` bits of each raw input into a presentation batch.
fn build_inputs(raw: &[Vec<bool>], len: usize) -> Vec<BinaryVector> {
    raw.iter()
        .map(|bits| BinaryVector::from_bits(bits[..len].iter().copied()))
        .collect()
}

/// Runs `inputs` through the window path and the per-neuron path on
/// identically constructed maps and asserts full bit-identity, plus the
/// packed-layout invariant on the window-path map.
fn assert_bit_identical(
    weights: Vec<TriStateVector>,
    inputs: &[BinaryVector],
    relax: f64,
    commit: f64,
    rule: NeighbourRule,
) -> Result<(), TestCaseError> {
    let reference = BSom::from_weights(weights)
        .expect("non-empty layer")
        .with_update_probabilities(relax, commit)
        .with_neighbour_rule(rule);
    let mut per_neuron = reference.clone();
    let mut window = reference;
    let schedule = TrainSchedule::new(inputs.len().max(1));
    for (t, input) in inputs.iter().enumerate() {
        let ww = window.train_step(input, t, &schedule).expect("length ok");
        let wp = per_neuron
            .train_step_per_neuron(input, t, &schedule)
            .expect("length ok");
        prop_assert!(ww.index == wp.index, "winners diverged at step {}", t);
        prop_assert_eq!(ww.distance, wp.distance);
    }
    prop_assert!(window == per_neuron, "maps diverged");
    prop_assert_eq!(window.dont_care_counts(), per_neuron.dont_care_counts());
    prop_assert_eq!(window.packed_layer(), &PackedLayer::pack(&window));
    Ok(())
}

proptest! {
    /// Undamped rule (p = 1 for both transitions): the window and per-neuron
    /// paths must be bit-identical across whole training runs, partial tail
    /// word included, for every neighbour rule.
    #[test]
    fn undamped_paths_are_bit_identical(
        len in arbitrary_len(),
        raw_weights in raw_layer(),
        raw_presentations in raw_inputs(6),
        rule_index in 0usize..3,
    ) {
        let weights = build_layer(&raw_weights, len);
        let inputs = build_inputs(&raw_presentations, len);
        let rule = [
            NeighbourRule::SameAsWinner,
            NeighbourRule::RelaxOnly,
            NeighbourRule::WinnerOnly,
        ][rule_index];
        assert_bit_identical(weights, &inputs, 1.0, 1.0, rule)?;
    }

    /// Frozen rule (p = 0 for both): no weight may move, and the two paths
    /// remain bit-identical (neither consumes randomness).
    #[test]
    fn frozen_paths_are_bit_identical_and_inert(
        len in arbitrary_len(),
        raw_weights in raw_layer(),
        raw_presentations in raw_inputs(4),
    ) {
        let weights = build_layer(&raw_weights, len);
        let inputs = build_inputs(&raw_presentations, len);
        let before = weights.clone();
        let mut som = BSom::from_weights(weights.clone())
            .expect("non-empty layer")
            .with_update_probabilities(0.0, 0.0);
        let schedule = TrainSchedule::new(inputs.len());
        for (t, input) in inputs.iter().enumerate() {
            som.train_step(input, t, &schedule).expect("length ok");
        }
        prop_assert!(som.neurons() == &before[..], "p = 0 must freeze the map");
        assert_bit_identical(weights, &inputs, 0.0, 0.0, NeighbourRule::SameAsWinner)?;
    }

    /// Mixed degenerate probabilities (exactly one of relax/commit active)
    /// stay bit-identical, including through the relax-only neighbour rule —
    /// the rule whose per-neuron commit gates differ inside one window.
    #[test]
    fn mixed_degenerate_paths_are_bit_identical(
        len in arbitrary_len(),
        raw_weights in raw_layer(),
        raw_presentations in raw_inputs(4),
        relax_on in any::<bool>(),
        relax_only_neighbours in any::<bool>(),
    ) {
        let weights = build_layer(&raw_weights, len);
        let inputs = build_inputs(&raw_presentations, len);
        let (relax, commit) = if relax_on { (1.0, 0.0) } else { (0.0, 1.0) };
        let rule = if relax_only_neighbours {
            NeighbourRule::RelaxOnly
        } else {
            NeighbourRule::SameAsWinner
        };
        assert_bit_identical(weights, &inputs, relax, commit, rule)?;
    }

    /// Interior probabilities: every transition the window path makes must
    /// be legal under the tri-state rule table, RelaxOnly neighbours must
    /// never gain concrete bits, the incremental `#`-counts must match a
    /// recount, and the maintained packed layout must equal a fresh pack
    /// word for word.
    #[test]
    fn interior_probability_window_transitions_are_legal(
        len in arbitrary_len(),
        raw_weights in raw_layer(),
        raw_presentations in raw_inputs(2),
        relax in 0.05f64..0.95,
        commit in 0.05f64..0.95,
        relax_only_neighbours in any::<bool>(),
    ) {
        let weights = build_layer(&raw_weights, len);
        let input = build_inputs(&raw_presentations, len).remove(0);
        let rule = if relax_only_neighbours {
            NeighbourRule::RelaxOnly
        } else {
            NeighbourRule::SameAsWinner
        };
        let mut som = BSom::from_weights(weights)
            .expect("non-empty layer")
            .with_update_probabilities(relax, commit)
            .with_neighbour_rule(rule);
        let before: Vec<TriStateVector> = som.neurons().to_vec();
        let winner = som.train_step(&input, 0, &TrainSchedule::new(1)).expect("length ok");
        for (i, (old, new)) in before.iter().zip(som.neurons()).enumerate() {
            let may_commit = rule == NeighbourRule::SameAsWinner || i == winner.index;
            for k in 0..input.len() {
                let x = input.bit(k);
                let legal = match old.trit(k) {
                    Trit::DontCare => {
                        new.trit(k) == Trit::DontCare
                            || (may_commit && new.trit(k) == Trit::from_bit(x))
                    }
                    t if t.matches(x) => new.trit(k) == t,
                    t => new.trit(k) == t || new.trit(k) == Trit::DontCare,
                };
                prop_assert!(legal, "illegal transition at neuron {}, bit {}: {:?} -> {:?} (input {})",
                    i, k, old.trit(k), new.trit(k), x);
            }
            // Incremental cache vs recount, and clean tails on both planes.
            prop_assert_eq!(som.dont_care_counts()[i] as usize, new.count_dont_care());
            let rem = input.len() % 64;
            if rem != 0 {
                let tail_mask = !((1u64 << rem) - 1);
                prop_assert_eq!(new.care_plane().as_words().last().unwrap() & tail_mask, 0);
                prop_assert_eq!(new.value_plane().as_words().last().unwrap() & tail_mask, 0);
            }
        }
        prop_assert_eq!(som.packed_layer(), &PackedLayer::pack(&som));
    }
}

/// Statistical consistency of the interior-probability damping through the
/// window path: each neuron's *marginal* flip count must sit inside a
/// generous binomial band around `p × opportunities`, under fixed seeds —
/// the broadcast stream correlates flips across neurons (every neuron in
/// the window sees the same mask words), but each lane of the shared mask
/// is still an independent Bernoulli(p) coin, so per-neuron counts stay
/// Binomial.
///
/// Engineered so every bit of every neuron is an opportunity: a map whose
/// neurons all mismatch the input everywhere (relax case) or are all `#`
/// (commit case), updated with a full-map window.
#[test]
fn interior_probability_window_flip_counts_track_p() {
    // (p, len): lengths include a partial final word.
    for &(p, len) in &[(0.3f64, 768usize), (0.5, 70), (0.7, 640), (0.12, 190)] {
        let input = BinaryVector::from_bits((0..len).map(|i| i % 3 == 0));
        let neurons = 5usize;
        // A full-map window: radius covers every neuron from any winner.
        let schedule = TrainSchedule::new(1)
            .with_neighbourhood(bsom_som::NeighbourhoodSchedule::Constant { radius: neurons });
        let sigma = (len as f64 * p * (1.0 - p)).sqrt();
        let band = 6.0 * sigma + 1.0;

        // Relax: every concrete bit of every neuron disagrees with the input.
        let mismatched = vec![TriStateVector::from_binary(&!&input); neurons];
        let mut som = BSom::from_weights(mismatched)
            .unwrap()
            .with_update_probabilities(p, p);
        som.train_step(&input, 0, &schedule).unwrap();
        for i in 0..neurons {
            let relaxed = som.neuron(i).unwrap().count_dont_care() as f64;
            assert!(
                (relaxed - p * len as f64).abs() < band,
                "window relax: neuron {i}, p = {p}, len = {len}: {relaxed} of {len} bits relaxed"
            );
        }

        // Commit: every bit of every neuron is #.
        let blank = vec![TriStateVector::all_dont_care(len); neurons];
        let mut som = BSom::from_weights(blank)
            .unwrap()
            .with_update_probabilities(p, p);
        som.train_step(&input, 0, &schedule).unwrap();
        for i in 0..neurons {
            let neuron = som.neuron(i).unwrap().clone();
            let committed = neuron.count_concrete() as f64;
            assert!(
                (committed - p * len as f64).abs() < band,
                "window commit: neuron {i}, p = {p}, len = {len}: \
                 {committed} of {len} bits committed"
            );
            // Committed bits must equal the input where concrete.
            for k in 0..len {
                if let Some(bit) = neuron.trit(k).as_bit() {
                    assert_eq!(bit, input.bit(k), "committed bit {k} must copy the input");
                }
            }
        }
        // The broadcast is real: every neuron committed the *same* lanes,
        // because one mask word was shared across the whole window.
        let first = som.neuron(0).unwrap().clone();
        for i in 1..neurons {
            assert_eq!(
                som.neuron(i).unwrap().care_plane().as_words(),
                first.care_plane().as_words(),
                "neuron {i} must share the broadcast commit mask"
            );
        }
    }
}

/// The two word-parallel datapaths must agree on long-run weight
/// *statistics*, not just single-step legality: train two identically-seeded
/// maps through each path on the same small dataset and compare total
/// `#`-mass within a tolerance.
#[test]
fn long_run_dont_care_mass_is_statistically_consistent() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0xD00D_BE11);
    let len = 190;
    let config = BSomConfig::new(6, len);
    let som = BSom::new(config, &mut rng);
    let data: Vec<BinaryVector> = (0..8)
        .map(|_| BinaryVector::random(len, &mut rng))
        .collect();
    let schedule = TrainSchedule::new(40);

    let mut window = som.clone();
    let mut per_neuron = som;
    for t in 0..40 {
        for input in &data {
            window.train_step(input, t, &schedule).unwrap();
            per_neuron
                .train_step_per_neuron(input, t, &schedule)
                .unwrap();
        }
    }
    let total = (6 * len) as f64;
    let window_mass = window.total_dont_care() as f64 / total;
    let per_neuron_mass = per_neuron.total_dont_care() as f64 / total;
    assert!(
        (window_mass - per_neuron_mass).abs() < 0.15,
        "steady-state #-mass diverged: window {window_mass:.3} vs per-neuron {per_neuron_mass:.3}"
    );
    assert_eq!(window.packed_layer(), &PackedLayer::pack(&window));
}
