//! Property suite pinning the word-parallel trainer to the bit-serial
//! reference path (DESIGN.md §"The word-parallel trainer").
//!
//! The two datapaths share one xorshift64* state but consume it differently
//! (whole-word Bernoulli masks vs one coin per bit), so the equivalence
//! guarantee is two-tiered:
//!
//! * for probabilities 0 and 1 neither path consumes randomness, so
//!   [`BSom::train_step`](bsom_som::SelfOrganizingMap::train_step) and
//!   [`BSom::train_step_bit_serial`](bsom_som::BSom::train_step_bit_serial)
//!   must produce **bit-identical** maps — weights, cached `#`-counts, RNG
//!   state and all;
//! * for interior probabilities every individual transition must still be
//!   *legal* under the tri-state rule table (agreeing bits never move,
//!   mismatches only ever relax to `#`, `#`s only ever commit to the input
//!   bit), and the *number* of transitions must match the configured
//!   probability statistically under fixed seeds.
//!
//! Vector lengths deliberately include non-multiples of 64 so the masked
//! final partial word is always in play.

use bsom_signature::{BinaryVector, TriStateVector, Trit};
use bsom_som::{BSom, BSomConfig, NeighbourRule, SelfOrganizingMap, TrainSchedule};
use proptest::prelude::*;

/// The longest vector the raw strategies generate; tests truncate to the
/// drawn length (the vendored proptest has no `prop_flat_map`, so lengths
/// cannot parameterise sibling strategies directly).
const MAX_LEN: usize = 190;

/// Lengths that exercise sub-word, word-aligned and partial-tail vectors.
const LENGTHS: [usize; 6] = [17, 64, 70, 96, 128, MAX_LEN];

/// Strategy drawing one of [`LENGTHS`].
fn arbitrary_len() -> impl Strategy<Value = usize> {
    (0usize..LENGTHS.len()).prop_map(|i| LENGTHS[i])
}

/// Raw trit material for a whole competitive layer of 2–8 neurons.
fn raw_layer() -> impl Strategy<Value = Vec<Vec<u8>>> {
    prop::collection::vec(prop::collection::vec(0u8..3, MAX_LEN), 2..8)
}

/// Raw bit material for a batch of input presentations.
fn raw_inputs(max_steps: usize) -> impl Strategy<Value = Vec<Vec<bool>>> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), MAX_LEN), 1..max_steps)
}

/// Builds the first `len` trits of each raw neuron into a weight layer.
fn build_layer(raw: &[Vec<u8>], len: usize) -> Vec<TriStateVector> {
    raw.iter()
        .map(|trits| {
            TriStateVector::from_trits(trits[..len].iter().map(|v| match v {
                0 => Trit::Zero,
                1 => Trit::One,
                _ => Trit::DontCare,
            }))
        })
        .collect()
}

/// Builds the first `len` bits of each raw input into a presentation batch.
fn build_inputs(raw: &[Vec<bool>], len: usize) -> Vec<BinaryVector> {
    raw.iter()
        .map(|bits| BinaryVector::from_bits(bits[..len].iter().copied()))
        .collect()
}

/// Runs `steps` presentations through both datapaths on identically
/// constructed maps and asserts full bit-identity of the results.
fn assert_bit_identical(
    weights: Vec<TriStateVector>,
    inputs: &[BinaryVector],
    relax: f64,
    commit: f64,
    rule: NeighbourRule,
) -> Result<(), TestCaseError> {
    let reference = BSom::from_weights(weights)
        .expect("non-empty layer")
        .with_update_probabilities(relax, commit)
        .with_neighbour_rule(rule);
    let mut serial = reference.clone();
    let mut word = reference;
    let schedule = TrainSchedule::new(inputs.len().max(1));
    for (t, input) in inputs.iter().enumerate() {
        let ww = word.train_step(input, t, &schedule).expect("length ok");
        let ws = serial
            .train_step_bit_serial(input, t, &schedule)
            .expect("length ok");
        prop_assert!(ww.index == ws.index, "winners diverged at step {}", t);
        prop_assert_eq!(ww.distance, ws.distance);
    }
    prop_assert!(word == serial, "maps diverged");
    prop_assert_eq!(word.dont_care_counts(), serial.dont_care_counts());
    Ok(())
}

proptest! {
    /// Undamped rule (p = 1 for both transitions): the word-parallel and
    /// bit-serial paths must be bit-identical across whole training runs,
    /// partial tail word included.
    #[test]
    fn undamped_paths_are_bit_identical(
        len in arbitrary_len(),
        raw_weights in raw_layer(),
        raw_presentations in raw_inputs(6),
    ) {
        let weights = build_layer(&raw_weights, len);
        let inputs = build_inputs(&raw_presentations, len);
        assert_bit_identical(weights, &inputs, 1.0, 1.0, NeighbourRule::SameAsWinner)?;
    }

    /// Frozen rule (p = 0 for both): no weight may move, and the two paths
    /// remain bit-identical (neither consumes randomness).
    #[test]
    fn frozen_paths_are_bit_identical_and_inert(
        len in arbitrary_len(),
        raw_weights in raw_layer(),
        raw_presentations in raw_inputs(4),
    ) {
        let weights = build_layer(&raw_weights, len);
        let inputs = build_inputs(&raw_presentations, len);
        let before = weights.clone();
        let mut som = BSom::from_weights(weights.clone())
            .expect("non-empty layer")
            .with_update_probabilities(0.0, 0.0);
        let schedule = TrainSchedule::new(inputs.len());
        for (t, input) in inputs.iter().enumerate() {
            som.train_step(input, t, &schedule).expect("length ok");
        }
        prop_assert!(som.neurons() == &before[..], "p = 0 must freeze the map");
        assert_bit_identical(weights, &inputs, 0.0, 0.0, NeighbourRule::SameAsWinner)?;
    }

    /// Mixed degenerate probabilities (exactly one of relax/commit active)
    /// stay bit-identical, including through the relax-only neighbour rule.
    #[test]
    fn mixed_degenerate_paths_are_bit_identical(
        len in arbitrary_len(),
        raw_weights in raw_layer(),
        raw_presentations in raw_inputs(4),
        relax_on in any::<bool>(),
        relax_only_neighbours in any::<bool>(),
    ) {
        let weights = build_layer(&raw_weights, len);
        let inputs = build_inputs(&raw_presentations, len);
        let (relax, commit) = if relax_on { (1.0, 0.0) } else { (0.0, 1.0) };
        let rule = if relax_only_neighbours {
            NeighbourRule::RelaxOnly
        } else {
            NeighbourRule::SameAsWinner
        };
        assert_bit_identical(weights, &inputs, relax, commit, rule)?;
    }

    /// Interior probabilities: every transition the word-parallel step makes
    /// must be legal under the tri-state rule table, the incremental
    /// `#`-counts must match a recount, and the planes' tail bits must stay
    /// clear.
    #[test]
    fn interior_probability_transitions_are_legal(
        len in arbitrary_len(),
        raw_weights in raw_layer(),
        raw_presentations in raw_inputs(2),
        relax in 0.05f64..0.95,
        commit in 0.05f64..0.95,
    ) {
        let weights = build_layer(&raw_weights, len);
        let input = build_inputs(&raw_presentations, len).remove(0);
        let mut som = BSom::from_weights(weights)
            .expect("non-empty layer")
            .with_update_probabilities(relax, commit);
        let before: Vec<TriStateVector> = som.neurons().to_vec();
        som.train_step(&input, 0, &TrainSchedule::new(1)).expect("length ok");
        for (i, (old, new)) in before.iter().zip(som.neurons()).enumerate() {
            for k in 0..input.len() {
                let x = input.bit(k);
                let legal = match old.trit(k) {
                    Trit::DontCare => {
                        new.trit(k) == Trit::DontCare || new.trit(k) == Trit::from_bit(x)
                    }
                    t if t.matches(x) => new.trit(k) == t,
                    t => new.trit(k) == t || new.trit(k) == Trit::DontCare,
                };
                prop_assert!(legal, "illegal transition at neuron {}, bit {}: {:?} -> {:?} (input {})",
                    i, k, old.trit(k), new.trit(k), x);
            }
            // Incremental cache vs recount, and clean tails on both planes.
            prop_assert_eq!(som.dont_care_counts()[i] as usize, new.count_dont_care());
            let rem = input.len() % 64;
            if rem != 0 {
                let tail_mask = !((1u64 << rem) - 1);
                prop_assert_eq!(new.care_plane().as_words().last().unwrap() & tail_mask, 0);
                prop_assert_eq!(new.value_plane().as_words().last().unwrap() & tail_mask, 0);
            }
        }
    }
}

/// Statistical consistency of the interior-probability damping: the number
/// of relax/commit transitions one full-map update makes must sit inside a
/// generous binomial band around `p × opportunities`, for both datapaths,
/// under fixed seeds.
///
/// Engineered so every bit is an opportunity: a single-neuron map (always
/// the winner) whose weights either all mismatch the input (relax case) or
/// are all `#` (commit case).
#[test]
fn interior_probability_flip_counts_track_p() {
    // (p, len): lengths include a partial final word.
    for &(p, len) in &[(0.3f64, 768usize), (0.5, 70), (0.7, 640), (0.12, 190)] {
        let input = BinaryVector::from_bits((0..len).map(|i| i % 3 == 0));
        let schedule = TrainSchedule::new(1);
        let sigma = (len as f64 * p * (1.0 - p)).sqrt();
        let band = 6.0 * sigma + 1.0;

        for word_parallel in [true, false] {
            // Relax: every concrete bit disagrees with the input.
            let mismatched = TriStateVector::from_binary(&!&input);
            let mut som = BSom::from_weights(vec![mismatched])
                .unwrap()
                .with_update_probabilities(p, p);
            let step = |som: &mut BSom| {
                if word_parallel {
                    som.train_step(&input, 0, &schedule).unwrap()
                } else {
                    som.train_step_bit_serial(&input, 0, &schedule).unwrap()
                }
            };
            step(&mut som);
            let relaxed = som.neuron(0).unwrap().count_dont_care() as f64;
            assert!(
                (relaxed - p * len as f64).abs() < band,
                "relax path (word_parallel = {word_parallel}): p = {p}, len = {len}: \
                 {relaxed} of {len} bits relaxed"
            );

            // Commit: every bit is #.
            let blank = TriStateVector::all_dont_care(len);
            let mut som = BSom::from_weights(vec![blank])
                .unwrap()
                .with_update_probabilities(p, p);
            step(&mut som);
            let committed = som.neuron(0).unwrap().count_concrete() as f64;
            assert!(
                (committed - p * len as f64).abs() < band,
                "commit path (word_parallel = {word_parallel}): p = {p}, len = {len}: \
                 {committed} of {len} bits committed"
            );
            // Committed bits must equal the input where concrete.
            let neuron = som.neuron(0).unwrap().clone();
            for k in 0..len {
                if let Some(bit) = neuron.trit(k).as_bit() {
                    assert_eq!(bit, input.bit(k), "committed bit {k} must copy the input");
                }
            }
        }
    }
}

/// The two datapaths must agree on long-run weight *statistics*, not just
/// single-step legality: train two identically-seeded maps through each path
/// on the same small dataset and compare total `#`-mass within a tolerance.
#[test]
fn long_run_dont_care_mass_is_statistically_consistent() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0xE07A_57A7);
    let len = 190;
    let config = BSomConfig::new(6, len);
    let som = BSom::new(config, &mut rng);
    let data: Vec<BinaryVector> = (0..8)
        .map(|_| BinaryVector::random(len, &mut rng))
        .collect();
    let schedule = TrainSchedule::new(40);

    let mut word = som.clone();
    let mut serial = som;
    for t in 0..40 {
        for input in &data {
            word.train_step(input, t, &schedule).unwrap();
            serial.train_step_bit_serial(input, t, &schedule).unwrap();
        }
    }
    let total = (6 * len) as f64;
    let word_mass = word.total_dont_care() as f64 / total;
    let serial_mass = serial.total_dont_care() as f64 / total;
    assert!(
        (word_mass - serial_mass).abs() < 0.15,
        "steady-state #-mass diverged: word-parallel {word_mass:.3} vs bit-serial {serial_mass:.3}"
    );
}
