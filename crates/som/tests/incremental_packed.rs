//! Property suite for the incrementally-maintained packed layout: after an
//! arbitrary training run — word-parallel or bit-serial, with arbitrary
//! update probabilities and out-of-band `set_neuron` writes — the layer
//! [`BSom`] maintained word by word through
//! [`PackedLayer::apply_neuron_update`] must equal a from-scratch
//! [`PackedLayer::pack`] of the final map, word for word.

use bsom_signature::{BinaryVector, TriStateVector, Trit};
use bsom_som::{BSom, BSomConfig, PackedLayer, SelfOrganizingMap, TrainSchedule};
use proptest::prelude::*;

fn binary_vector(len: usize) -> impl Strategy<Value = BinaryVector> {
    prop::collection::vec(any::<bool>(), len).prop_map(BinaryVector::from_bits)
}

fn tristate_vector(len: usize) -> impl Strategy<Value = TriStateVector> {
    prop::collection::vec(0u8..3, len).prop_map(|raw| {
        TriStateVector::from_trits(raw.into_iter().map(|v| match v {
            0 => Trit::Zero,
            1 => Trit::One,
            _ => Trit::DontCare,
        }))
    })
}

/// Word-for-word equality of the maintained layer against a fresh pack:
/// planes, `#`-counts and shape all compared through `PartialEq`.
fn assert_packed_fresh(som: &BSom) -> Result<(), TestCaseError> {
    let fresh = PackedLayer::pack(som);
    prop_assert_eq!(som.packed_layer(), &fresh);
    Ok(())
}

proptest! {
    /// A random word-parallel training run over a word-boundary-crossing
    /// width (70 bits: masked tail word in play).
    #[test]
    fn word_parallel_training_maintains_the_pack(
        seed in any::<u64>(),
        patterns in prop::collection::vec(binary_vector(70), 1..6),
        epochs in 1usize..12,
        relax in 0u8..5,
        commit in 0u8..5,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let config = BSomConfig::new(7, 70)
            .with_update_probabilities(f64::from(relax) / 4.0, f64::from(commit) / 4.0);
        let mut som = BSom::new(config, &mut rng);
        som.train(&patterns, TrainSchedule::new(epochs), &mut rng).unwrap();
        assert_packed_fresh(&som)?;
    }

    /// The bit-serial reference path maintains the same shared layout.
    #[test]
    fn bit_serial_training_maintains_the_pack(
        seed in any::<u64>(),
        patterns in prop::collection::vec(binary_vector(96), 1..5),
        steps in 1usize..20,
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut som = BSom::new(BSomConfig::new(5, 96), &mut rng);
        let schedule = TrainSchedule::new(4);
        for t in 0..steps {
            let input = &patterns[t % patterns.len()];
            som.train_step_bit_serial(input, t % 4, &schedule).unwrap();
        }
        assert_packed_fresh(&som)?;
    }

    /// Out-of-band weight writes (`set_neuron`) go through the same
    /// incremental hook.
    #[test]
    fn set_neuron_maintains_the_pack(
        seed in any::<u64>(),
        replacement in tristate_vector(70),
        index in 0usize..4,
        input in binary_vector(70),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut som = BSom::new(BSomConfig::new(4, 70), &mut rng);
        som.set_neuron(index, replacement).unwrap();
        som.train_step(&input, 0, &TrainSchedule::new(1)).unwrap();
        assert_packed_fresh(&som)?;
    }
}
