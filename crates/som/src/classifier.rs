//! Classification outcomes and train/test evaluation.
//!
//! The paper's headline result (Table I) is recognition accuracy on a held-out
//! labelled test set: the percentage of test signatures whose predicted label
//! matches the manual annotation. This module provides the [`Prediction`]
//! type returned by the classifier, the [`evaluate`] helper that computes the
//! accuracy of a [`LabelledSom`] over a test set, and the
//! [`ConfusionMatrix`] used by the extended diagnostics.

use std::collections::BTreeSet;
use std::fmt;

use bsom_signature::BinaryVector;
use serde::{Deserialize, Serialize};

use crate::labeling::{LabelledSom, ObjectLabel};
use crate::som_trait::SelfOrganizingMap;

/// The outcome of classifying one signature.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Prediction {
    /// The signature was identified as a known object.
    Known {
        /// The predicted object identity.
        label: ObjectLabel,
        /// The index of the winning neuron.
        neuron: usize,
        /// The distance from the signature to the winning neuron.
        distance: f64,
    },
    /// The signature was rejected: the nearest neuron was unlabelled or too
    /// far away.
    Unknown,
}

impl Prediction {
    /// The predicted label, or `None` for [`Prediction::Unknown`].
    pub fn label(&self) -> Option<ObjectLabel> {
        match self {
            Prediction::Known { label, .. } => Some(*label),
            Prediction::Unknown => None,
        }
    }

    /// Returns `true` for a known (accepted) prediction.
    pub fn is_known(&self) -> bool {
        matches!(self, Prediction::Known { .. })
    }
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prediction::Known {
                label,
                neuron,
                distance,
            } => write!(f, "{label} (neuron {neuron}, distance {distance})"),
            Prediction::Unknown => write!(f, "unknown"),
        }
    }
}

/// A square confusion matrix over the labels seen in a test set, with one
/// extra implicit column for *unknown* predictions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    labels: Vec<ObjectLabel>,
    /// `counts[actual][predicted]`; the final column counts unknowns.
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix over the given label set (sorted, deduplicated).
    pub fn new<I>(labels: I) -> Self
    where
        I: IntoIterator<Item = ObjectLabel>,
    {
        let labels: Vec<ObjectLabel> = labels
            .into_iter()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let cols = labels.len() + 1;
        let counts = vec![vec![0; cols]; labels.len()];
        ConfusionMatrix { labels, counts }
    }

    /// Records one test outcome.
    pub fn record(&mut self, actual: ObjectLabel, predicted: Option<ObjectLabel>) {
        let Some(row) = self.labels.iter().position(|&l| l == actual) else {
            return; // actual label outside the tracked set: ignore
        };
        let col = match predicted {
            Some(p) => match self.labels.iter().position(|&l| l == p) {
                Some(c) => c,
                None => self.labels.len(), // predicted an untracked label: count as unknown
            },
            None => self.labels.len(),
        };
        self.counts[row][col] += 1;
    }

    /// The ordered labels represented by the rows (and the first columns).
    pub fn labels(&self) -> &[ObjectLabel] {
        &self.labels
    }

    /// The raw count for (actual, predicted). `predicted = None` addresses
    /// the unknown column.
    pub fn count(&self, actual: ObjectLabel, predicted: Option<ObjectLabel>) -> usize {
        let Some(row) = self.labels.iter().position(|&l| l == actual) else {
            return 0;
        };
        let col = match predicted {
            Some(p) => match self.labels.iter().position(|&l| l == p) {
                Some(c) => c,
                None => return 0,
            },
            None => self.labels.len(),
        };
        self.counts[row][col]
    }

    /// Total number of recorded outcomes.
    pub fn total(&self) -> usize {
        self.counts.iter().flatten().sum()
    }

    /// Number of correct (diagonal) outcomes.
    pub fn correct(&self) -> usize {
        self.counts.iter().enumerate().map(|(i, row)| row[i]).sum()
    }

    /// Overall accuracy (0.0 when the matrix is empty).
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    /// Per-class recall: fraction of each actual class predicted correctly.
    /// Classes with no test instances report a recall of 0.0.
    pub fn per_class_recall(&self) -> Vec<(ObjectLabel, f64)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, &label)| {
                let row_total: usize = self.counts[i].iter().sum();
                let recall = if row_total == 0 {
                    0.0
                } else {
                    self.counts[i][i] as f64 / row_total as f64
                };
                (label, recall)
            })
            .collect()
    }

    /// Number of outcomes rejected as unknown.
    pub fn unknown_count(&self) -> usize {
        self.counts.iter().map(|row| row[self.labels.len()]).sum()
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "actual\\pred")?;
        for l in &self.labels {
            write!(f, "\t{}", l.id())?;
        }
        writeln!(f, "\t?")?;
        for (i, l) in self.labels.iter().enumerate() {
            write!(f, "{}", l.id())?;
            for c in &self.counts[i] {
                write!(f, "\t{c}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The result of evaluating a classifier over a labelled test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Number of test signatures presented.
    pub total: usize,
    /// Number classified with the correct label.
    pub correct: usize,
    /// Number rejected as unknown.
    pub unknown: usize,
    /// The full confusion matrix.
    pub confusion: ConfusionMatrix,
}

impl Evaluation {
    /// Recognition accuracy in `[0, 1]` (0.0 for an empty test set).
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Recognition accuracy as a percentage, the unit used by Table I.
    pub fn accuracy_percent(&self) -> f64 {
        self.accuracy() * 100.0
    }

    /// Error rate as a percentage (the paper quotes "less than 15.97% error").
    pub fn error_percent(&self) -> f64 {
        100.0 - self.accuracy_percent()
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} correct ({:.2}%), {} unknown",
            self.correct,
            self.total,
            self.accuracy_percent(),
            self.unknown
        )
    }
}

/// Evaluates a labelled SOM classifier on a labelled test set, reproducing
/// the accuracy metric of Table I.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::BinaryVector;
/// use bsom_som::{evaluate, BSom, BSomConfig, LabelledSom, ObjectLabel, SelfOrganizingMap, TrainSchedule};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), bsom_som::SomError> {
/// let mut rng = StdRng::seed_from_u64(3);
/// let a = BinaryVector::from_bits((0..32).map(|i| i < 16));
/// let b = BinaryVector::from_bits((0..32).map(|i| i >= 16));
/// let data = vec![(a, ObjectLabel::new(0)), (b, ObjectLabel::new(1))];
/// let mut som = BSom::new(BSomConfig::new(4, 32), &mut rng);
/// som.train_labelled_data(&data, TrainSchedule::new(100), &mut rng)?;
/// let classifier = LabelledSom::label(som, &data);
/// let eval = evaluate(&classifier, &data);
/// assert_eq!(eval.accuracy(), 1.0);
/// # Ok(())
/// # }
/// ```
pub fn evaluate<M: SelfOrganizingMap>(
    classifier: &LabelledSom<M>,
    test_data: &[(BinaryVector, ObjectLabel)],
) -> Evaluation {
    let mut confusion = ConfusionMatrix::new(test_data.iter().map(|(_, l)| *l));
    let mut correct = 0;
    let mut unknown = 0;
    for (signature, actual) in test_data {
        let prediction = classifier.classify(signature);
        match prediction.label() {
            Some(label) => {
                if label == *actual {
                    correct += 1;
                }
            }
            None => unknown += 1,
        }
        confusion.record(*actual, prediction.label());
    }
    Evaluation {
        total: test_data.len(),
        correct,
        unknown,
        confusion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsom::{BSom, BSomConfig};
    use crate::schedule::TrainSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn label(i: usize) -> ObjectLabel {
        ObjectLabel::new(i)
    }

    #[test]
    fn prediction_accessors() {
        let known = Prediction::Known {
            label: label(2),
            neuron: 5,
            distance: 3.0,
        };
        assert_eq!(known.label(), Some(label(2)));
        assert!(known.is_known());
        assert!(!Prediction::Unknown.is_known());
        assert_eq!(Prediction::Unknown.label(), None);
        assert!(known.to_string().contains("object-2"));
        assert_eq!(Prediction::Unknown.to_string(), "unknown");
    }

    #[test]
    fn confusion_matrix_accumulates_and_scores() {
        let mut m = ConfusionMatrix::new([label(0), label(1), label(1)]);
        assert_eq!(m.labels(), &[label(0), label(1)]);
        m.record(label(0), Some(label(0)));
        m.record(label(0), Some(label(1)));
        m.record(label(1), Some(label(1)));
        m.record(label(1), None);
        assert_eq!(m.total(), 4);
        assert_eq!(m.correct(), 2);
        assert_eq!(m.accuracy(), 0.5);
        assert_eq!(m.unknown_count(), 1);
        assert_eq!(m.count(label(0), Some(label(1))), 1);
        assert_eq!(m.count(label(1), None), 1);
        let recalls = m.per_class_recall();
        assert_eq!(recalls[0], (label(0), 0.5));
        assert_eq!(recalls[1], (label(1), 0.5));
        assert!(!m.to_string().is_empty());
    }

    #[test]
    fn confusion_matrix_ignores_untracked_actuals_and_maps_untracked_predictions_to_unknown() {
        let mut m = ConfusionMatrix::new([label(0)]);
        m.record(label(9), Some(label(0))); // untracked actual: ignored
        assert_eq!(m.total(), 0);
        m.record(label(0), Some(label(9))); // untracked prediction: unknown column
        assert_eq!(m.unknown_count(), 1);
        assert_eq!(m.count(label(0), Some(label(9))), 0);
    }

    #[test]
    fn empty_matrix_accuracy_is_zero() {
        let m = ConfusionMatrix::new(std::iter::empty());
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.total(), 0);
        assert!(m.per_class_recall().is_empty());
    }

    #[test]
    fn evaluation_percentages_are_consistent() {
        let mut confusion = ConfusionMatrix::new([label(0)]);
        confusion.record(label(0), Some(label(0)));
        let eval = Evaluation {
            total: 8,
            correct: 6,
            unknown: 1,
            confusion,
        };
        assert!((eval.accuracy() - 0.75).abs() < 1e-12);
        assert!((eval.accuracy_percent() - 75.0).abs() < 1e-12);
        assert!((eval.error_percent() - 25.0).abs() < 1e-12);
        assert!(eval.to_string().contains("6/8"));
    }

    #[test]
    fn empty_evaluation_is_zero_accuracy() {
        let eval = Evaluation {
            total: 0,
            correct: 0,
            unknown: 0,
            confusion: ConfusionMatrix::new(std::iter::empty()),
        };
        assert_eq!(eval.accuracy(), 0.0);
    }

    #[test]
    fn end_to_end_evaluation_on_separable_data() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = BinaryVector::from_bits((0..48).map(|i| i < 24));
        let b = BinaryVector::from_bits((0..48).map(|i| i >= 24));
        let train = vec![
            (a.clone(), label(0)),
            (b.clone(), label(1)),
            (a.clone(), label(0)),
            (b.clone(), label(1)),
        ];
        let mut som = BSom::new(BSomConfig::new(6, 48), &mut rng);
        som.train_labelled_data(&train, TrainSchedule::new(150), &mut rng)
            .unwrap();
        let classifier = LabelledSom::label(som, &train);
        let eval = evaluate(&classifier, &train);
        assert_eq!(eval.accuracy(), 1.0);
        assert_eq!(eval.unknown, 0);
        assert_eq!(eval.confusion.correct(), 4);
    }

    #[test]
    fn evaluation_counts_unknowns() {
        let mut rng = StdRng::seed_from_u64(23);
        let a = BinaryVector::from_bits((0..48).map(|i| i < 24));
        let train = vec![(a.clone(), label(0))];
        let mut som = BSom::new(BSomConfig::new(4, 48), &mut rng);
        som.train_labelled_data(&train, TrainSchedule::new(50), &mut rng)
            .unwrap();
        let classifier = LabelledSom::label(som, &train).with_unknown_threshold(1.0);
        let stranger = BinaryVector::from_bits((0..48).map(|i| i % 2 == 0));
        let test = vec![(a, label(0)), (stranger, label(0))];
        let eval = evaluate(&classifier, &test);
        assert_eq!(eval.total, 2);
        assert_eq!(eval.correct, 1);
        assert_eq!(eval.unknown, 1);
        assert!((eval.accuracy() - 0.5).abs() < 1e-12);
    }
}
