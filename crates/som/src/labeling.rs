//! Win-frequency node labelling and the labelled-SOM classifier (paper §III-B).
//!
//! After (unsupervised) training, the paper turns the map into a classifier:
//! every labelled training signature is presented once more, the win
//! frequencies `count[neuron][label]` are accumulated, and each neuron is
//! assigned the label it won most often. At recognition time the nearest
//! neuron's label is returned, unless the minimum distance exceeds a
//! threshold set during training, in which case the object is reported as
//! *unknown*.

use std::collections::BTreeMap;
use std::fmt;

use bsom_signature::BinaryVector;
use serde::{Deserialize, Serialize};

use crate::classifier::Prediction;
use crate::error::SomError;
use crate::som_trait::SelfOrganizingMap;

/// An opaque object identity (one of the paper's nine tracked people).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ObjectLabel(usize);

impl ObjectLabel {
    /// Creates a label from its numeric identity.
    pub fn new(id: usize) -> Self {
        ObjectLabel(id)
    }

    /// The numeric identity.
    pub fn id(self) -> usize {
        self.0
    }
}

impl fmt::Display for ObjectLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "object-{}", self.0)
    }
}

impl From<usize> for ObjectLabel {
    fn from(id: usize) -> Self {
        ObjectLabel(id)
    }
}

/// Per-neuron win-frequency statistics gathered during the labelling pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct NeuronLabelStats {
    /// How many times each label won this neuron.
    pub wins: BTreeMap<ObjectLabel, usize>,
}

impl NeuronLabelStats {
    /// Records one win of `label` on this neuron — the single accumulation
    /// rule behind both the batch labelling pass ([`LabelledSom::label`])
    /// and the engine's online labelling.
    pub fn record_win(&mut self, label: ObjectLabel) {
        *self.wins.entry(label).or_insert(0) += 1;
    }

    /// Total number of wins across all labels.
    pub fn total_wins(&self) -> usize {
        self.wins.values().sum()
    }

    /// The most frequent label, ties broken towards the smaller label id.
    /// Returns `None` if the neuron never won.
    pub fn majority_label(&self) -> Option<ObjectLabel> {
        self.wins
            .iter()
            .max_by(|(la, ca), (lb, cb)| ca.cmp(cb).then(lb.cmp(la)))
            .map(|(l, _)| *l)
    }

    /// The purity of the neuron: fraction of its wins belonging to its
    /// majority label (1.0 for a never-won neuron).
    pub fn purity(&self) -> f64 {
        let total = self.total_wins();
        if total == 0 {
            return 1.0;
        }
        let max = self.wins.values().copied().max().unwrap_or(0);
        max as f64 / total as f64
    }
}

/// A trained self-organizing map with labelled neurons — the complete
/// identification system of §III-B.
///
/// `LabelledSom` owns the map so that the weights and their labels can never
/// drift apart; access the underlying map through [`LabelledSom::map`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabelledSom<M> {
    map: M,
    labels: Vec<Option<ObjectLabel>>,
    stats: Vec<NeuronLabelStats>,
    unknown_threshold: Option<f64>,
}

impl<M: SelfOrganizingMap> LabelledSom<M> {
    /// Runs the labelling pass: presents every labelled training signature,
    /// accumulates win frequencies and assigns each neuron its majority
    /// label. No distance threshold is set, so classification never returns
    /// *unknown*; use [`with_unknown_threshold`](Self::with_unknown_threshold)
    /// or [`calibrate_threshold`](Self::calibrate_threshold) to enable
    /// rejection.
    ///
    /// Signatures whose length does not match the map are skipped (they
    /// cannot win any neuron); an all-mismatched dataset simply leaves every
    /// neuron unlabelled.
    pub fn label(map: M, training_data: &[(BinaryVector, ObjectLabel)]) -> Self {
        let mut stats = vec![NeuronLabelStats::default(); map.neuron_count()];
        for (signature, label) in training_data {
            if let Ok(winner) = map.winner(signature) {
                stats[winner.index].record_win(*label);
            }
        }
        let labels = stats.iter().map(NeuronLabelStats::majority_label).collect();
        LabelledSom {
            map,
            labels,
            stats,
            unknown_threshold: None,
        }
    }

    /// Sets the distance threshold above which an input is classified as
    /// unknown (paper: "if the minimum Hamming distance exceeds a threshold
    /// value set during training, the object is classified as unknown").
    pub fn with_unknown_threshold(mut self, threshold: f64) -> Self {
        self.unknown_threshold = Some(threshold);
        self
    }

    /// Calibrates the unknown threshold from the training data itself: the
    /// threshold is set to `margin` times the maximum winning distance
    /// observed across the training signatures, so that every training
    /// instance would still be accepted.
    pub fn calibrate_threshold(
        mut self,
        training_data: &[(BinaryVector, ObjectLabel)],
        margin: f64,
    ) -> Self {
        let max_distance = training_data
            .iter()
            .filter_map(|(s, _)| self.map.winner(s).ok())
            .map(|w| w.distance)
            .fold(0.0_f64, f64::max);
        self.unknown_threshold = Some(max_distance * margin);
        self
    }

    /// Classifies a signature: the label of the nearest neuron, or
    /// [`Prediction::Unknown`] if that neuron is unlabelled, the distance
    /// exceeds the threshold, or the input length does not match the map.
    pub fn classify(&self, signature: &BinaryVector) -> Prediction {
        let winner = match self.map.winner(signature) {
            Ok(w) => w,
            Err(_) => return Prediction::Unknown,
        };
        if let Some(threshold) = self.unknown_threshold {
            if winner.distance > threshold {
                return Prediction::Unknown;
            }
        }
        match self.labels[winner.index] {
            Some(label) => Prediction::Known {
                label,
                neuron: winner.index,
                distance: winner.distance,
            },
            None => Prediction::Unknown,
        }
    }

    /// The underlying trained map.
    pub fn map(&self) -> &M {
        &self.map
    }

    /// Consumes the classifier and returns the underlying map.
    pub fn into_map(self) -> M {
        self.map
    }

    /// The label assigned to each neuron (`None` for neurons that never won
    /// a training signature).
    pub fn neuron_labels(&self) -> &[Option<ObjectLabel>] {
        &self.labels
    }

    /// The win-frequency statistics recorded for each neuron.
    pub fn neuron_stats(&self) -> &[NeuronLabelStats] {
        &self.stats
    }

    /// The configured unknown-distance threshold, if any.
    pub fn unknown_threshold(&self) -> Option<f64> {
        self.unknown_threshold
    }

    /// Number of neurons that never won any training signature — the paper
    /// observes that for maps with more than 50 neurons "some neurons do not
    /// get used".
    pub fn unused_neurons(&self) -> usize {
        self.stats.iter().filter(|s| s.total_wins() == 0).count()
    }

    /// Mean purity across the neurons that won at least one signature.
    pub fn mean_purity(&self) -> f64 {
        let used: Vec<&NeuronLabelStats> =
            self.stats.iter().filter(|s| s.total_wins() > 0).collect();
        if used.is_empty() {
            return 1.0;
        }
        used.iter().map(|s| s.purity()).sum::<f64>() / used.len() as f64
    }

    /// Re-labels the classifier with a fresh dataset without retraining the
    /// map (useful after on-line weight updates, the paper's future-work
    /// scenario).
    pub fn relabel(self, training_data: &[(BinaryVector, ObjectLabel)]) -> Self {
        let threshold = self.unknown_threshold;
        let mut relabelled = Self::label(self.map, training_data);
        relabelled.unknown_threshold = threshold;
        relabelled
    }

    /// Returns the number of neurons in the underlying map.
    pub fn neuron_count(&self) -> usize {
        self.map.neuron_count()
    }
}

impl<M: SelfOrganizingMap> LabelledSom<M> {
    /// Winner lookup that also reports the winning neuron's label, exposed
    /// for diagnostics and the FPGA post-training flow (§V-F).
    ///
    /// # Errors
    ///
    /// Propagates [`SomError`] from the underlying map (e.g. a length
    /// mismatch).
    pub fn winner_with_label(
        &self,
        signature: &BinaryVector,
    ) -> Result<(usize, f64, Option<ObjectLabel>), SomError> {
        let w = self.map.winner(signature)?;
        Ok((w.index, w.distance, self.labels[w.index]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsom::{BSom, BSomConfig};
    use crate::schedule::TrainSchedule;
    use crate::som_trait::SelfOrganizingMap;
    use bsom_signature::TriStateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_class_data(len: usize) -> Vec<(BinaryVector, ObjectLabel)> {
        let a = BinaryVector::from_bits((0..len).map(|i| i < len / 2));
        let b = BinaryVector::from_bits((0..len).map(|i| i >= len / 2));
        vec![
            (a.clone(), ObjectLabel::new(0)),
            (a, ObjectLabel::new(0)),
            (b.clone(), ObjectLabel::new(1)),
            (b, ObjectLabel::new(1)),
        ]
    }

    fn trained_bsom(data: &[(BinaryVector, ObjectLabel)]) -> BSom {
        let mut rng = StdRng::seed_from_u64(99);
        let mut som = BSom::new(BSomConfig::new(6, data[0].0.len()), &mut rng);
        som.train_labelled_data(data, TrainSchedule::new(200), &mut rng)
            .unwrap();
        som
    }

    #[test]
    fn object_label_basics() {
        let l = ObjectLabel::new(7);
        assert_eq!(l.id(), 7);
        assert_eq!(l.to_string(), "object-7");
        assert_eq!(ObjectLabel::from(7), l);
    }

    #[test]
    fn majority_label_breaks_ties_towards_smaller_id() {
        let mut stats = NeuronLabelStats::default();
        stats.wins.insert(ObjectLabel::new(3), 5);
        stats.wins.insert(ObjectLabel::new(1), 5);
        assert_eq!(stats.majority_label(), Some(ObjectLabel::new(1)));
        assert_eq!(stats.total_wins(), 10);
        assert_eq!(stats.purity(), 0.5);
    }

    #[test]
    fn empty_stats_have_no_majority_and_full_purity() {
        let stats = NeuronLabelStats::default();
        assert_eq!(stats.majority_label(), None);
        assert_eq!(stats.purity(), 1.0);
    }

    #[test]
    fn labelling_assigns_correct_classes() {
        let data = two_class_data(32);
        let som = trained_bsom(&data);
        let classifier = LabelledSom::label(som, &data);
        let a = &data[0].0;
        let b = &data[2].0;
        assert_eq!(classifier.classify(a).label(), Some(ObjectLabel::new(0)));
        assert_eq!(classifier.classify(b).label(), Some(ObjectLabel::new(1)));
        assert!(classifier.mean_purity() > 0.99);
    }

    #[test]
    fn unknown_threshold_rejects_distant_signatures() {
        // Build the classifier from explicit specialist neurons so the test
        // exercises the threshold logic rather than training dynamics.
        let data = two_class_data(32);
        let weights = vec![
            TriStateVector::from_binary(&data[0].0),
            TriStateVector::from_binary(&data[2].0),
        ];
        let som = BSom::from_weights(weights).unwrap();
        let classifier = LabelledSom::label(som, &data).with_unknown_threshold(2.0);
        assert_eq!(classifier.unknown_threshold(), Some(2.0));
        // An alternating pattern is 16 bits away from both prototypes.
        let stranger = BinaryVector::from_bits((0..32).map(|i| i % 2 == 0));
        assert_eq!(classifier.classify(&stranger), Prediction::Unknown);
        // Training patterns themselves are still accepted.
        assert!(classifier.classify(&data[0].0).is_known());
    }

    #[test]
    fn calibrated_threshold_accepts_all_training_data() {
        let data = two_class_data(32);
        let som = trained_bsom(&data);
        let classifier = LabelledSom::label(som, &data).calibrate_threshold(&data, 1.0);
        for (sig, _) in &data {
            assert!(classifier.classify(sig).is_known());
        }
    }

    #[test]
    fn unlabelled_neuron_yields_unknown() {
        // Build a map by hand where neuron 1 is never the winner of any
        // training data but is the nearest to a probe signature.
        let weights = vec![
            TriStateVector::from_str("11110000").unwrap(),
            TriStateVector::from_str("00001111").unwrap(),
        ];
        let som = BSom::from_weights(weights).unwrap();
        let data = vec![(
            BinaryVector::from_bit_str("11110000").unwrap(),
            ObjectLabel::new(0),
        )];
        let classifier = LabelledSom::label(som, &data);
        assert_eq!(classifier.unused_neurons(), 1);
        let probe = BinaryVector::from_bit_str("00001111").unwrap();
        assert_eq!(classifier.classify(&probe), Prediction::Unknown);
    }

    #[test]
    fn wrong_length_input_is_unknown_not_panic() {
        let data = two_class_data(32);
        let som = trained_bsom(&data);
        let classifier = LabelledSom::label(som, &data);
        assert_eq!(
            classifier.classify(&BinaryVector::zeros(8)),
            Prediction::Unknown
        );
    }

    #[test]
    fn winner_with_label_reports_consistent_information() {
        let data = two_class_data(32);
        let som = trained_bsom(&data);
        let classifier = LabelledSom::label(som, &data);
        let (idx, dist, label) = classifier.winner_with_label(&data[0].0).unwrap();
        assert!(idx < classifier.neuron_count());
        assert_eq!(dist, 0.0);
        assert_eq!(label, Some(ObjectLabel::new(0)));
        assert!(classifier
            .winner_with_label(&BinaryVector::zeros(4))
            .is_err());
    }

    #[test]
    fn relabel_preserves_threshold_and_updates_labels() {
        let data = two_class_data(32);
        let som = trained_bsom(&data);
        let classifier = LabelledSom::label(som, &data).with_unknown_threshold(5.0);
        // Swap the labels and relabel.
        let swapped: Vec<(BinaryVector, ObjectLabel)> = data
            .iter()
            .map(|(s, l)| (s.clone(), ObjectLabel::new(1 - l.id())))
            .collect();
        let relabelled = classifier.relabel(&swapped);
        assert_eq!(relabelled.unknown_threshold(), Some(5.0));
        assert_eq!(
            relabelled.classify(&data[0].0).label(),
            Some(ObjectLabel::new(1))
        );
    }

    #[test]
    fn into_map_returns_trained_map() {
        let data = two_class_data(32);
        let som = trained_bsom(&data);
        let expected_neurons = som.neuron_count();
        let classifier = LabelledSom::label(som, &data);
        assert_eq!(classifier.map().neuron_count(), expected_neurons);
        let map = classifier.into_map();
        assert_eq!(map.neuron_count(), expected_neurons);
    }

    #[test]
    fn label_with_empty_training_data_leaves_all_neurons_unlabelled() {
        let data = two_class_data(32);
        let som = trained_bsom(&data);
        let classifier = LabelledSom::label(som, &[]);
        assert_eq!(classifier.unused_neurons(), classifier.neuron_count());
        assert_eq!(classifier.classify(&data[0].0), Prediction::Unknown);
        assert_eq!(classifier.mean_purity(), 1.0);
    }
}
