//! The tri-state binary Self-Organizing Map (bSOM).
//!
//! The bSOM (paper §III, based on Appiah et al., IJCNN 2009) is a SOM whose
//! input layer takes binary vectors and whose competitive-layer neurons hold
//! tri-state weight vectors over `{0, 1, #}`. The similarity measure is the
//! #-aware Hamming distance: a `#` ("don't care") weight position matches
//! either input bit and never contributes to the distance.
//!
//! ## Reconstructed training rule
//!
//! This SOCC 2010 paper does not restate the full update rule of its
//! reference \[5\]; the rule implemented here (and documented in DESIGN.md
//! §"The reconstructed update rule" as a substitution) is the natural
//! tri-state rule with the properties the paper
//! relies on, damped stochastically so that a prototype reflects the
//! *majority* of the patterns a neuron wins rather than just the last one.
//!
//! For the winning neuron and every neuron in its current neighbourhood, each
//! weight trit `w_k` is updated against the input bit `x_k`:
//!
//! | current `w_k` | input `x_k` | new `w_k` | rationale |
//! |---|---|---|---|
//! | `0` or `1`, equal to `x_k` | — | unchanged | the weight already explains the input |
//! | `0` or `1`, different from `x_k` | — | `#` *with probability* `relax_probability` | conflicting evidence ⇒ stop caring |
//! | `#` | `0`/`1` | `x_k` *with probability* `commit_probability` | commit to the observed value |
//!
//! With probabilities of 1.0 this is the raw single-step tri-state rule; the
//! defaults of 0.3 low-pass filter each bit over a handful of wins, which is
//! what brings the bSOM's recognition accuracy level with the averaging cSOM
//! (Table I) while staying a pure bit-manipulation pipeline — in hardware the
//! damping is a single AND against an LFSR bit stream. Neighbours follow
//! [`NeighbourRule`]; the default applies the same update to the whole
//! neighbourhood window, mirroring the FPGA's neighbourhood-update block.
//!
//! The rule is learning-rate free. Bits that are consistent within the
//! cluster of inputs a neuron wins converge to concrete values; bits that
//! vary spend time in `#`, harmlessly excluded from the distance.
//!
//! ## The plane-sliced training datapath
//!
//! [`BSom::train_step`] applies the table above **64 trits × the whole
//! neighbourhood at a time** (DESIGN.md §"The neighbourhood broadcast
//! update"): because the neighbourhood is a contiguous run of neuron
//! addresses, its update runs directly on the shared
//! [`PackedLayer`] — per 64-bit word index **one** broadcast Bernoulli mask
//! pair ([`bsom_signature::draw_broadcast_masks`]) is drawn and applied to
//! the window's run of packed column words
//! ([`bsom_signature::update_window_word`]), with a per-neuron gate word
//! carrying the [`NeighbourRule`], mirroring the FPGA's single update
//! circuit broadcast to the address window. The per-neuron `#`-counts the
//! WTA key needs are maintained incrementally from the popcount deltas of
//! each masked write — `winner` never re-popcounts a care plane.
//!
//! Two slower datapaths are retained on purpose:
//!
//! * [`BSom::train_step_per_neuron`] — the PR 3/4 word-parallel path that
//!   visits neighbourhood neurons one at a time, re-drawing masks per
//!   neuron. It is the baseline the `neighbourhood_update` bench measures
//!   the window speedup from and one reference of the
//!   `window_update_equivalence` proptests.
//! * [`BSom::train_step_bit_serial`] — the original per-trit loop with one
//!   scalar coin per bit, reference for the `word_update_equivalence`
//!   proptests and baseline of the `train_throughput` bench.
//!
//! The three paths consume the shared xorshift64* state differently, so for
//! interior probabilities they agree *in distribution*, not bit for bit;
//! for probabilities 0 and 1 none of them consumes randomness and all three
//! are bit-identical.

use bsom_signature::bernoulli::{gate_word, CoinThreshold, MaskPlan};
use bsom_signature::{BinaryVector, TriStateVector, Trit};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SomError;
use crate::packed::PackedLayer;
use crate::schedule::TrainSchedule;
use crate::som_trait::{line_neighbourhood, SelfOrganizingMap, Winner};

/// How neurons in the neighbourhood of the winner (excluding the winner
/// itself) are updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NeighbourRule {
    /// Neighbours receive the same (damped) tri-state update as the winner.
    /// This is the default and mirrors the FPGA neighbourhood-update block,
    /// which applies one update circuit to the selected address window.
    #[default]
    SameAsWinner,
    /// Neighbours only relax conflicting bits to `#`; they do not commit `#`
    /// positions to the input value — the tri-state analogue of giving
    /// neighbours a smaller learning rate. Kept for the update-rule ablation.
    RelaxOnly,
    /// Neighbours are not updated at all (winner-take-all learning). The
    /// ablation benches show this collapses onto a single over-general
    /// neuron; it exists to demonstrate that the neighbourhood block matters.
    WinnerOnly,
}

/// Configuration for a [`BSom`].
///
/// The defaults of [`BSomConfig::paper_default`] reproduce Table III: 40
/// neurons, 768-bit vectors, random initial weights, maximum neighbourhood 4
/// (the neighbourhood policy itself lives in
/// [`TrainSchedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BSomConfig {
    /// Number of neurons in the competitive layer.
    pub neurons: usize,
    /// Length of the input and weight vectors in bits.
    pub vector_len: usize,
    /// How neighbours of the winner are updated.
    pub neighbour_rule: NeighbourRule,
    /// Probability that a concrete weight trit that *disagrees* with the
    /// input relaxes to `#` during an update. 1.0 recovers the raw tri-state
    /// rule; lower values low-pass filter the weights over several wins,
    /// which is what gives the bSOM prototype quality comparable to the
    /// averaging cSOM (in hardware this is one AND gate against an LFSR bit
    /// stream).
    pub relax_probability: f64,
    /// Probability that a `#` trit commits to the observed input bit during
    /// an update. 1.0 recovers the raw tri-state rule.
    pub commit_probability: f64,
}

impl BSomConfig {
    /// Creates a configuration with the given shape and the default update
    /// behaviour.
    pub fn new(neurons: usize, vector_len: usize) -> Self {
        BSomConfig {
            neurons,
            vector_len,
            neighbour_rule: NeighbourRule::default(),
            relax_probability: 0.3,
            commit_probability: 0.3,
        }
    }

    /// The paper's configuration (Table III): 40 neurons × 768 bits.
    pub fn paper_default() -> Self {
        BSomConfig::new(40, 768)
    }

    /// Overrides the neighbour update rule.
    pub fn with_neighbour_rule(mut self, rule: NeighbourRule) -> Self {
        self.neighbour_rule = rule;
        self
    }

    /// Overrides the stochastic update probabilities (relax, commit). Pass
    /// `(1.0, 1.0)` for the undamped tri-state rule used by the ablation
    /// benches.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn with_update_probabilities(mut self, relax: f64, commit: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&relax) && (0.0..=1.0).contains(&commit),
            "update probabilities must be within [0, 1], got ({relax}, {commit})"
        );
        self.relax_probability = relax;
        self.commit_probability = commit;
        self
    }
}

impl Default for BSomConfig {
    fn default() -> Self {
        BSomConfig::paper_default()
    }
}

/// Precompiled stochastic-update machinery, derived from the configured
/// probabilities once instead of per coin flip: whole-word Bernoulli mask
/// plans for the word-parallel trainer and integer comparison thresholds for
/// the bit-serial reference path. Rebuilt whenever the probabilities change;
/// never serialized (it is a pure function of the config).
#[derive(Debug, Clone, PartialEq)]
struct UpdateTables {
    /// Mask plan realising `relax_probability` 64 lanes at a time.
    relax_plan: MaskPlan,
    /// Mask plan realising `commit_probability` 64 lanes at a time.
    commit_plan: MaskPlan,
    /// The draw-free probability-0 plan used for relax-only neighbours.
    no_commit_plan: MaskPlan,
    /// Integer coin threshold for `relax_probability` (bit-serial path).
    relax_coin: CoinThreshold,
    /// Integer coin threshold for `commit_probability` (bit-serial path).
    commit_coin: CoinThreshold,
}

impl UpdateTables {
    fn from_config(config: &BSomConfig) -> Self {
        UpdateTables {
            relax_plan: MaskPlan::from_probability(config.relax_probability),
            commit_plan: MaskPlan::from_probability(config.commit_probability),
            no_commit_plan: MaskPlan::never(),
            relax_coin: CoinThreshold::from_probability(config.relax_probability),
            commit_coin: CoinThreshold::from_probability(config.commit_probability),
        }
    }
}

/// Reusable scratch for the plane-sliced window update: the per-neuron
/// commit gates and flip counters of one neighbourhood. Owned by the map so
/// the training hot path performs no per-step allocation; never serialized
/// or compared (its contents are meaningless between steps).
#[derive(Debug, Clone, Default)]
struct WindowScratch {
    /// One [`gate_word`] per neuron in the window.
    gates: Vec<u64>,
    /// Per-neuron relaxed-bit counts, filled by the window update.
    relaxed: Vec<u32>,
    /// Per-neuron committed-bit counts, filled by the window update.
    committed: Vec<u32>,
}

/// The tri-state binary Self-Organizing Map.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::BinaryVector;
/// use bsom_som::{BSom, BSomConfig, SelfOrganizingMap, TrainSchedule};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), bsom_som::SomError> {
/// let mut rng = StdRng::seed_from_u64(9);
/// let mut som = BSom::new(BSomConfig::new(8, 64), &mut rng);
/// let pattern = BinaryVector::random(64, &mut rng);
/// som.train(std::slice::from_ref(&pattern), TrainSchedule::new(50), &mut rng)?;
/// // After training on a single repeated pattern, some neuron matches it exactly.
/// let winner = som.winner(&pattern)?;
/// assert_eq!(winner.distance, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BSom {
    config: BSomConfig,
    neurons: Vec<TriStateVector>,
    /// Internal xorshift state driving the stochastic update decisions — the
    /// software analogue of the LFSR bit stream a hardware implementation
    /// would use. Keeping it inside the map keeps `train_step` deterministic
    /// for a given construction seed.
    rng_state: u64,
    /// Cached per-neuron `#`-counts, maintained incrementally from the
    /// popcount delta of every masked weight write, so the `{distance,
    /// #-count, address}` WTA key in [`BSom::winner`] (via
    /// [`SelfOrganizingMap::winner`]) never re-popcounts a care plane.
    /// Invariant: `dont_care_counts[i] == neurons[i].count_dont_care()`,
    /// debug-asserted after every update.
    dont_care_counts: Vec<u32>,
    /// Precompiled mask plans / coin thresholds for the configured update
    /// probabilities.
    tables: UpdateTables,
    /// The plane-sliced layout of the same weights, maintained incrementally
    /// on every weight write ([`PackedLayer::apply_neuron_update`]). This is
    /// the **only** winner-search path: training-time and serve-time search
    /// run the same word-sliced batch kernels, and publishing a serving
    /// snapshot is a plain clone of this field instead of a re-pack.
    /// Invariant: `packed == PackedLayer::pack(self)` word for word,
    /// debug-asserted per touched neuron after every update.
    packed: PackedLayer,
    /// Reusable window-update scratch (see [`WindowScratch`]).
    scratch: WindowScratch,
}

/// Equality is over the map's intrinsic state — configuration, weights and
/// RNG state. The `#`-count cache, the update tables and the packed layer are
/// pure functions of those fields (and are debug-asserted in sync), so
/// comparing them would be redundant.
impl PartialEq for BSom {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config
            && self.neurons == other.neurons
            && self.rng_state == other.rng_state
    }
}

impl BSom {
    /// Creates a bSOM with every weight initialised to a random concrete bit,
    /// the start-up state produced by the FPGA weight-initialisation block.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero neurons or a zero vector length;
    /// use [`BSom::try_new`] for a fallible constructor.
    pub fn new<R: Rng + ?Sized>(config: BSomConfig, rng: &mut R) -> Self {
        Self::try_new(config, rng).expect("bSOM configuration must be non-empty")
    }

    /// Fallible counterpart of [`BSom::new`].
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyConfiguration`] if `config.neurons` or
    /// `config.vector_len` is zero.
    pub fn try_new<R: Rng + ?Sized>(config: BSomConfig, rng: &mut R) -> Result<Self, SomError> {
        if config.neurons == 0 || config.vector_len == 0 {
            return Err(SomError::EmptyConfiguration {
                neurons: config.neurons,
                vector_len: config.vector_len,
            });
        }
        let neurons: Vec<TriStateVector> = (0..config.neurons)
            .map(|_| TriStateVector::random_concrete(config.vector_len, rng))
            .collect();
        let rng_state = rng.gen::<u64>() | 1;
        // Fresh random weights are fully concrete: every cached count is 0.
        let dont_care_counts = vec![0u32; neurons.len()];
        let tables = UpdateTables::from_config(&config);
        let packed = PackedLayer::from_neurons(&neurons).expect("shape checked above");
        Ok(BSom {
            config,
            neurons,
            rng_state,
            dont_care_counts,
            tables,
            packed,
            scratch: WindowScratch::default(),
        })
    }

    /// Creates a bSOM from explicit weight vectors (e.g. weights exported
    /// from the FPGA BlockRAM after off-line training, §V-F).
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyConfiguration`] for an empty weight list and
    /// [`SomError::InputLengthMismatch`] if any weight vector's length
    /// differs from the first one's.
    pub fn from_weights(weights: Vec<TriStateVector>) -> Result<Self, SomError> {
        let vector_len = weights.first().map(TriStateVector::len).unwrap_or(0);
        if weights.is_empty() || vector_len == 0 {
            return Err(SomError::EmptyConfiguration {
                neurons: weights.len(),
                vector_len,
            });
        }
        if let Some(bad) = weights.iter().find(|w| w.len() != vector_len) {
            return Err(SomError::InputLengthMismatch {
                expected: vector_len,
                actual: bad.len(),
            });
        }
        let config = BSomConfig::new(weights.len(), vector_len);
        let dont_care_counts = weights.iter().map(|w| w.count_dont_care() as u32).collect();
        let tables = UpdateTables::from_config(&config);
        let packed = PackedLayer::from_neurons(&weights).expect("shape checked above");
        Ok(BSom {
            config,
            neurons: weights,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            dont_care_counts,
            tables,
            packed,
            scratch: WindowScratch::default(),
        })
    }

    /// The map's configuration.
    pub fn config(&self) -> &BSomConfig {
        &self.config
    }

    /// Overrides the stochastic update probabilities of an existing map
    /// (useful after [`BSom::from_weights`], which uses the defaults).
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn with_update_probabilities(mut self, relax: f64, commit: f64) -> Self {
        self.config = self.config.with_update_probabilities(relax, commit);
        self.tables = UpdateTables::from_config(&self.config);
        self
    }

    /// Overrides the neighbour update rule of an existing map.
    pub fn with_neighbour_rule(mut self, rule: NeighbourRule) -> Self {
        self.config = self.config.with_neighbour_rule(rule);
        self
    }

    /// The weight vector of neuron `index`.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::NeuronOutOfRange`] for an invalid index.
    pub fn neuron(&self, index: usize) -> Result<&TriStateVector, SomError> {
        self.neurons.get(index).ok_or(SomError::NeuronOutOfRange {
            index,
            neurons: self.neurons.len(),
        })
    }

    /// All neuron weight vectors in index order.
    pub fn neurons(&self) -> &[TriStateVector] {
        &self.neurons
    }

    /// Replaces the weight vector of neuron `index`, keeping the cached
    /// `#`-count in sync (weights can only be mutated through the update
    /// rule or through this method — never patch a neuron behind the map's
    /// back).
    ///
    /// # Errors
    ///
    /// Returns [`SomError::NeuronOutOfRange`] for an invalid index and
    /// [`SomError::InputLengthMismatch`] if the new weight's length differs
    /// from the map's vector length.
    pub fn set_neuron(&mut self, index: usize, weight: TriStateVector) -> Result<(), SomError> {
        if index >= self.neurons.len() {
            return Err(SomError::NeuronOutOfRange {
                index,
                neurons: self.neurons.len(),
            });
        }
        if weight.len() != self.config.vector_len {
            return Err(SomError::InputLengthMismatch {
                expected: self.config.vector_len,
                actual: weight.len(),
            });
        }
        let count = weight.count_dont_care() as u32;
        self.dont_care_counts[index] = count;
        self.packed.apply_neuron_update(index, &weight, count);
        self.neurons[index] = weight;
        Ok(())
    }

    /// The plane-sliced layout of the current weights, maintained
    /// incrementally on every update — the layout both training-time winner
    /// search and serving snapshots run on. Cloning it is how a serving
    /// snapshot is published (no re-pack).
    pub fn packed_layer(&self) -> &PackedLayer {
        &self.packed
    }

    /// The cached per-neuron `#`-counts in address order — the secondary
    /// comparator key of the WTA search, maintained incrementally on every
    /// weight write.
    pub fn dont_care_counts(&self) -> &[u32] {
        &self.dont_care_counts
    }

    /// Total number of `#` trits across all neurons — a measure of how much
    /// of the map has relaxed to "don't care". Served from the incremental
    /// cache; O(neurons) rather than O(neurons × words).
    pub fn total_dont_care(&self) -> usize {
        self.dont_care_counts.iter().map(|&c| c as usize).sum()
    }

    /// `true` iff every cached `#`-count matches a full recount of its care
    /// plane. Debug-asserted by the update and winner paths.
    fn cache_matches_recount(&self) -> bool {
        self.neurons
            .iter()
            .zip(&self.dont_care_counts)
            .all(|(n, &c)| n.count_dont_care() == c as usize)
    }

    /// Applies the word-parallel stochastically damped tri-state update to
    /// neuron `neuron_index` for the given input: agreeing bits are kept,
    /// disagreeing bits relax to `#` under a Bernoulli(relax) mask word, and
    /// `#` bits commit to the input under a Bernoulli(commit) mask word
    /// (suppressed entirely for relax-only neighbour updates). The cached
    /// `#`-count is updated from the popcount delta of the masked write.
    fn update_neuron(&mut self, neuron_index: usize, input: &BinaryVector, commit: bool) {
        let BSom {
            neurons,
            rng_state,
            dont_care_counts,
            tables,
            packed,
            ..
        } = self;
        let commit_plan = if commit {
            &tables.commit_plan
        } else {
            &tables.no_commit_plan
        };
        let delta = neurons[neuron_index].stochastic_update(
            input,
            &tables.relax_plan,
            commit_plan,
            rng_state,
        );
        let count = &mut dont_care_counts[neuron_index];
        *count = (i64::from(*count) + delta.dont_care_delta()) as u32;
        debug_assert_eq!(
            *count as usize,
            neurons[neuron_index].count_dont_care(),
            "incremental #-count cache out of sync for neuron {neuron_index}"
        );
        packed.apply_neuron_update(neuron_index, &neurons[neuron_index], *count);
        debug_assert!(
            packed.neuron_matches(neuron_index, &neurons[neuron_index]),
            "packed layer out of sync for neuron {neuron_index}"
        );
    }

    /// The plane-sliced neighbourhood update: one broadcast mask stream
    /// applied to the contiguous window `[lo, hi]` of packed neuron columns
    /// in a single pass ([`PackedLayer::apply_window_update`]), with the
    /// commit transition gated per neuron by the [`NeighbourRule`] (only the
    /// winner commits under [`NeighbourRule::RelaxOnly`]). The updated
    /// column words are mirrored back into the per-neuron planes and both
    /// `#`-count caches are maintained from the popcount deltas.
    fn update_window(&mut self, lo: usize, hi: usize, winner: usize, input: &BinaryVector) {
        let BSom {
            config,
            neurons,
            rng_state,
            dont_care_counts,
            tables,
            packed,
            scratch,
        } = self;
        let window = lo..hi + 1;
        let width = window.len();
        scratch.gates.clear();
        scratch.gates.extend(window.clone().map(|idx| {
            gate_word(match config.neighbour_rule {
                NeighbourRule::RelaxOnly => idx == winner,
                _ => true,
            })
        }));
        scratch.relaxed.resize(width, 0);
        scratch.committed.resize(width, 0);
        packed.apply_window_update(
            window.clone(),
            input,
            &tables.relax_plan,
            &tables.commit_plan,
            &scratch.gates,
            rng_state,
            &mut scratch.relaxed,
            &mut scratch.committed,
        );
        for (offset, idx) in window.enumerate() {
            packed.copy_neuron_into(idx, &mut neurons[idx]);
            let count = &mut dont_care_counts[idx];
            *count = (i64::from(*count) + i64::from(scratch.relaxed[offset])
                - i64::from(scratch.committed[offset])) as u32;
            debug_assert_eq!(
                *count as usize,
                neurons[idx].count_dont_care(),
                "incremental #-count cache out of sync for neuron {idx}"
            );
            debug_assert!(
                packed.neuron_matches(idx, &neurons[idx]),
                "packed layer out of sync for neuron {idx}"
            );
        }
    }

    /// One training step through the **per-neuron word-parallel datapath**:
    /// the same winner search, neighbourhood policy and word-parallel update
    /// kernel as [`SelfOrganizingMap::train_step`], but the neighbourhood
    /// neurons are visited one at a time, each drawing its own Bernoulli
    /// mask words — the PR 3/4 trainer, retained as the baseline the
    /// `neighbourhood_update` bench measures the plane-sliced window path
    /// against and as one reference of the `window_update_equivalence`
    /// proptests.
    ///
    /// The window path draws one broadcast mask stream for the whole
    /// neighbourhood, so the two paths consume the shared RNG state
    /// differently: for interior probabilities they agree *in distribution*
    /// (and flip-count statistics), and for probabilities 0 and 1 — where
    /// neither consumes randomness — they are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] if the input length differs
    /// from the configured vector length.
    pub fn train_step_per_neuron(
        &mut self,
        input: &BinaryVector,
        t: usize,
        schedule: &TrainSchedule,
    ) -> Result<Winner, SomError> {
        let winner = self.winner(input)?;
        let radius = schedule.radius_at(t);
        let neighbourhood = line_neighbourhood(winner.index, radius, self.config.neurons);
        for idx in neighbourhood {
            if idx == winner.index {
                self.update_neuron(idx, input, true);
                continue;
            }
            match self.config.neighbour_rule {
                NeighbourRule::SameAsWinner => self.update_neuron(idx, input, true),
                NeighbourRule::RelaxOnly => self.update_neuron(idx, input, false),
                NeighbourRule::WinnerOnly => {}
            }
        }
        Ok(winner)
    }

    /// The pre-word-parallel update: walk all bits of the neuron with one
    /// integer-threshold coin per stochastic decision. Kept as the reference
    /// implementation for the equivalence proptests and as the baseline the
    /// train-throughput bench measures against.
    fn update_neuron_bit_serial(
        &mut self,
        neuron_index: usize,
        input: &BinaryVector,
        relax: CoinThreshold,
        commit: CoinThreshold,
    ) {
        for k in 0..input.len() {
            let x = input.bit(k);
            match self.neurons[neuron_index].trit(k) {
                Trit::DontCare => {
                    if commit.flip(&mut self.rng_state) {
                        self.neurons[neuron_index].set(k, Trit::from_bit(x));
                        self.dont_care_counts[neuron_index] -= 1;
                    }
                }
                t => {
                    if !t.matches(x) && relax.flip(&mut self.rng_state) {
                        self.neurons[neuron_index].set(k, Trit::DontCare);
                        self.dont_care_counts[neuron_index] += 1;
                    }
                }
            }
        }
        debug_assert_eq!(
            self.dont_care_counts[neuron_index] as usize,
            self.neurons[neuron_index].count_dont_care(),
            "incremental #-count cache out of sync for neuron {neuron_index}"
        );
        // The bit-serial reference must keep the shared layout current too:
        // its winner search runs on the packed kernels like everyone else's.
        self.packed.apply_neuron_update(
            neuron_index,
            &self.neurons[neuron_index],
            self.dont_care_counts[neuron_index],
        );
    }

    /// One training step through the **bit-serial reference datapath**: the
    /// same winner search and neighbourhood policy as
    /// [`SelfOrganizingMap::train_step`], but every weight bit is visited
    /// individually and damped with its own scalar coin (an integer
    /// threshold comparison — the last remnant of the pre-word-parallel
    /// implementation, kept measurable on purpose).
    ///
    /// The word-parallel path consumes the shared RNG state differently, so
    /// a map trained through this method matches the word-parallel result in
    /// distribution — and bit for bit when both probabilities are 0 or 1,
    /// where neither path consumes randomness (the `word_update_equivalence`
    /// proptests pin both properties down).
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] if the input length differs
    /// from the configured vector length.
    pub fn train_step_bit_serial(
        &mut self,
        input: &BinaryVector,
        t: usize,
        schedule: &TrainSchedule,
    ) -> Result<Winner, SomError> {
        let winner = self.winner(input)?;
        let radius = schedule.radius_at(t);
        let relax = self.tables.relax_coin;
        let commit = self.tables.commit_coin;
        let neighbourhood = line_neighbourhood(winner.index, radius, self.config.neurons);
        for idx in neighbourhood {
            if idx == winner.index {
                self.update_neuron_bit_serial(idx, input, relax, commit);
                continue;
            }
            match self.config.neighbour_rule {
                NeighbourRule::SameAsWinner => {
                    self.update_neuron_bit_serial(idx, input, relax, commit)
                }
                NeighbourRule::RelaxOnly => {
                    self.update_neuron_bit_serial(idx, input, relax, CoinThreshold::Never)
                }
                NeighbourRule::WinnerOnly => {}
            }
        }
        Ok(winner)
    }
}

impl SelfOrganizingMap for BSom {
    fn neuron_count(&self) -> usize {
        self.config.neurons
    }

    fn vector_len(&self) -> usize {
        self.config.vector_len
    }

    fn winner(&self, input: &BinaryVector) -> Result<Winner, SomError> {
        debug_assert!(
            self.cache_matches_recount(),
            "cached #-counts diverged from the care planes"
        );
        // Winner-take-all on the #-aware Hamming distance, computed by the
        // same plane-sliced word-slice kernels serve-time search runs on —
        // there is exactly one distance path in the system. Ties are broken
        // towards the most *specific* neuron (fewest don't-cares, served
        // from the incremental cache) and then towards the lower index: a
        // heavily-relaxed neuron has an artificially small distance to
        // everything, so among equidistant candidates the one that actually
        // commits to more bits is the better explanation of the input. In
        // hardware this is a wider comparator key ({distance, #-count,
        // address}); see DESIGN.md §"Winner selection and the WTA tie-break
        // key".
        let w = self.packed.winner(input)?;
        Ok(Winner::new(w.index, f64::from(w.distance)))
    }

    /// One training step through the plane-sliced window datapath: winner
    /// search on the shared packed layout, then **one** broadcast mask
    /// stream applied to the whole neighbourhood address window directly on
    /// the packed columns (see the module docs and DESIGN.md §"The
    /// neighbourhood broadcast update").
    fn train_step(
        &mut self,
        input: &BinaryVector,
        t: usize,
        schedule: &TrainSchedule,
    ) -> Result<Winner, SomError> {
        let winner = self.winner(input)?;
        let radius = schedule.radius_at(t);
        // The address window [lo, hi], clamped at the line's ends exactly
        // like `line_neighbourhood` (winner-take-all learning collapses the
        // window to the winner itself).
        let (lo, hi) = match self.config.neighbour_rule {
            NeighbourRule::WinnerOnly => (winner.index, winner.index),
            NeighbourRule::SameAsWinner | NeighbourRule::RelaxOnly => (
                winner.index.saturating_sub(radius),
                (winner.index + radius).min(self.config.neurons - 1),
            ),
        };
        self.update_window(lo, hi, winner.index, input);
        Ok(winner)
    }

    fn distances(&self, input: &BinaryVector) -> Result<Vec<f64>, SomError> {
        Ok(self
            .packed
            .distances(input)?
            .into_iter()
            .map(f64::from)
            .collect())
    }
}

/// The raw wire shape of a [`BSom`] — identical to what the former derive
/// produced, so snapshots serialized before the word-parallel trainer still
/// load. The incremental `#`-count cache and the precompiled update tables
/// are *not* serialized: both are pure functions of the other fields, and
/// rebuilding them on deserialization means a tampered snapshot can never
/// smuggle in an inconsistent cache.
#[derive(Deserialize)]
struct RawBSom {
    config: BSomConfig,
    neurons: Vec<TriStateVector>,
    rng_state: u64,
}

impl BSom {
    /// Validates a raw snapshot and rebuilds the derived state.
    fn from_raw(raw: RawBSom) -> Result<Self, String> {
        if raw.config.neurons == 0 || raw.config.vector_len == 0 {
            return Err(format!(
                "BSom must be non-empty (neurons = {}, vector_len = {})",
                raw.config.neurons, raw.config.vector_len
            ));
        }
        if raw.neurons.len() != raw.config.neurons {
            return Err(format!(
                "snapshot holds {} neurons for a config of {}",
                raw.neurons.len(),
                raw.config.neurons
            ));
        }
        if let Some(bad) = raw
            .neurons
            .iter()
            .find(|n| n.len() != raw.config.vector_len)
        {
            return Err(format!(
                "neuron length {} does not match vector_len {}",
                bad.len(),
                raw.config.vector_len
            ));
        }
        for p in [raw.config.relax_probability, raw.config.commit_probability] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("update probability {p} outside [0, 1]"));
            }
        }
        if raw.rng_state == 0 {
            return Err("rng_state must be non-zero (xorshift fixed point)".to_string());
        }
        let dont_care_counts = raw
            .neurons
            .iter()
            .map(|n| n.count_dont_care() as u32)
            .collect();
        let tables = UpdateTables::from_config(&raw.config);
        let packed = PackedLayer::from_neurons(&raw.neurons).expect("shape checked above");
        Ok(BSom {
            config: raw.config,
            neurons: raw.neurons,
            rng_state: raw.rng_state,
            dont_care_counts,
            tables,
            packed,
            scratch: WindowScratch::default(),
        })
    }
}

impl serde::Serialize for BSom {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("config".to_string(), self.config.to_value()),
            ("neurons".to_string(), self.neurons.to_value()),
            ("rng_state".to_string(), self.rng_state.to_value()),
        ])
    }
}

// Written against the vendored serde stand-in's `from_value` trait; with
// registry serde this collapses to `#[serde(try_from = "RawBSom")]` on the
// struct (see vendor/README.md).
impl serde::Deserialize for BSom {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let raw = RawBSom::from_value(value)?;
        BSom::from_raw(raw).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB50A)
    }

    #[test]
    fn paper_default_config_matches_table_three() {
        let c = BSomConfig::paper_default();
        assert_eq!(c.neurons, 40);
        assert_eq!(c.vector_len, 768);
        assert_eq!(BSomConfig::default(), c);
    }

    #[test]
    fn new_initialises_random_concrete_weights() {
        let som = BSom::new(BSomConfig::paper_default(), &mut rng());
        assert_eq!(som.neuron_count(), 40);
        assert_eq!(som.vector_len(), 768);
        assert_eq!(som.total_dont_care(), 0);
        // Neurons should not all be identical.
        assert!(som.neurons().windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn try_new_rejects_empty_configurations() {
        assert!(matches!(
            BSom::try_new(BSomConfig::new(0, 768), &mut rng()),
            Err(SomError::EmptyConfiguration { .. })
        ));
        assert!(matches!(
            BSom::try_new(BSomConfig::new(40, 0), &mut rng()),
            Err(SomError::EmptyConfiguration { .. })
        ));
    }

    #[test]
    fn from_weights_validates_lengths() {
        let good = vec![TriStateVector::all_dont_care(8), TriStateVector::zeros(8)];
        assert!(BSom::from_weights(good).is_ok());
        let bad = vec![TriStateVector::zeros(8), TriStateVector::zeros(9)];
        assert!(matches!(
            BSom::from_weights(bad),
            Err(SomError::InputLengthMismatch {
                expected: 8,
                actual: 9
            })
        ));
        assert!(BSom::from_weights(Vec::new()).is_err());
    }

    #[test]
    fn winner_finds_exact_match() {
        let weights = vec![
            TriStateVector::from_str("1111").unwrap(),
            TriStateVector::from_str("0000").unwrap(),
            TriStateVector::from_str("1100").unwrap(),
        ];
        let som = BSom::from_weights(weights).unwrap();
        let w = som
            .winner(&BinaryVector::from_bit_str("1100").unwrap())
            .unwrap();
        assert_eq!(w.index, 2);
        assert_eq!(w.distance, 0.0);
    }

    #[test]
    fn winner_breaks_ties_towards_lower_index() {
        let weights = vec![
            TriStateVector::from_str("1111").unwrap(),
            TriStateVector::from_str("1111").unwrap(),
        ];
        let som = BSom::from_weights(weights).unwrap();
        let w = som
            .winner(&BinaryVector::from_bit_str("1110").unwrap())
            .unwrap();
        assert_eq!(w.index, 0);
        assert_eq!(w.distance, 1.0);
    }

    #[test]
    fn all_dont_care_neuron_always_wins_with_distance_zero() {
        // The paper calls this case out explicitly.
        let weights = vec![
            TriStateVector::from_str("1010").unwrap(),
            TriStateVector::from_str("####").unwrap(),
        ];
        let som = BSom::from_weights(weights).unwrap();
        let w = som
            .winner(&BinaryVector::from_bit_str("0101").unwrap())
            .unwrap();
        assert_eq!(w.index, 1);
        assert_eq!(w.distance, 0.0);
    }

    #[test]
    fn winner_tie_break_uses_the_cached_count_key() {
        // Both neurons sit at distance 0; the concrete one must win on the
        // cached #-count, exercising the {distance, #-count, address} key.
        let weights = vec![
            TriStateVector::from_str("##10").unwrap(),
            TriStateVector::from_str("1010").unwrap(),
        ];
        let som = BSom::from_weights(weights).unwrap();
        assert_eq!(som.dont_care_counts(), &[2, 0]);
        let w = som
            .winner(&BinaryVector::from_bit_str("1010").unwrap())
            .unwrap();
        assert_eq!(w.index, 1);
        assert_eq!(w.distance, 0.0);
    }

    #[test]
    fn winner_rejects_wrong_length_input() {
        let som = BSom::new(BSomConfig::new(4, 16), &mut rng());
        assert!(matches!(
            som.winner(&BinaryVector::zeros(8)),
            Err(SomError::InputLengthMismatch {
                expected: 16,
                actual: 8
            })
        ));
        assert!(som.distances(&BinaryVector::zeros(8)).is_err());
    }

    #[test]
    fn update_rule_agreement_keeps_disagreement_relaxes_dont_care_commits() {
        let weights = vec![TriStateVector::from_str("01#").unwrap()];
        // Undamped probabilities so the single-step rule is deterministic.
        let mut som = BSom::from_weights(weights)
            .unwrap()
            .with_update_probabilities(1.0, 1.0);
        let input = BinaryVector::from_bit_str("001").unwrap();
        // Radius is irrelevant for a single-neuron map.
        som.train_step(&input, 0, &TrainSchedule::new(1)).unwrap();
        let w = som.neuron(0).unwrap();
        // position 0: weight 0, input 0 -> keep 0
        // position 1: weight 1, input 0 -> relax to #
        // position 2: weight #, input 1 -> commit to 1
        assert_eq!(w.to_trit_string(), "0#1");
    }

    #[test]
    fn bit_serial_and_word_parallel_agree_exactly_for_undamped_probabilities() {
        // With p = 1 neither path consumes randomness, so the two datapaths
        // must produce bit-identical maps (the proptest suite broadens this).
        let mut r = rng();
        let config = BSomConfig::new(6, 70).with_update_probabilities(1.0, 1.0);
        let word = BSom::new(config, &mut r);
        let mut serial = word.clone();
        let mut word = word;
        let schedule = TrainSchedule::new(8);
        for t in 0..8 {
            let input = BinaryVector::random(70, &mut r);
            let ww = word.train_step(&input, t, &schedule).unwrap();
            let ws = serial.train_step_bit_serial(&input, t, &schedule).unwrap();
            assert_eq!(ww.index, ws.index);
        }
        assert_eq!(word, serial);
    }

    #[test]
    fn window_and_per_neuron_paths_agree_exactly_for_undamped_probabilities() {
        // With p = 1 neither the broadcast window path nor the per-neuron
        // word-parallel path consumes randomness, so the two must produce
        // bit-identical maps under every neighbour rule (the
        // `window_update_equivalence` proptest suite broadens this).
        for rule in [
            NeighbourRule::SameAsWinner,
            NeighbourRule::RelaxOnly,
            NeighbourRule::WinnerOnly,
        ] {
            let mut r = rng();
            let config = BSomConfig::new(6, 70)
                .with_update_probabilities(1.0, 1.0)
                .with_neighbour_rule(rule);
            let reference = BSom::new(config, &mut r);
            let mut per_neuron = reference.clone();
            let mut window = reference;
            let schedule = TrainSchedule::new(8);
            for t in 0..8 {
                let input = BinaryVector::random(70, &mut r);
                let ww = window.train_step(&input, t, &schedule).unwrap();
                let wp = per_neuron
                    .train_step_per_neuron(&input, t, &schedule)
                    .unwrap();
                assert_eq!(ww.index, wp.index, "rule {rule:?}");
            }
            assert_eq!(window, per_neuron, "rule {rule:?}");
            assert_eq!(window.dont_care_counts(), per_neuron.dont_care_counts());
        }
    }

    #[test]
    fn window_update_keeps_the_packed_layout_in_lockstep() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(9, 130), &mut r);
        let schedule = TrainSchedule::new(6);
        for t in 0..6 {
            let input = BinaryVector::random(130, &mut r);
            som.train_step(&input, t, &schedule).unwrap();
        }
        assert_eq!(som.packed_layer(), &PackedLayer::pack(&som));
    }

    #[test]
    fn repeated_pattern_converges_to_exact_match() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let pattern = BinaryVector::random(64, &mut r);
        som.train(
            std::slice::from_ref(&pattern),
            TrainSchedule::new(64),
            &mut r,
        )
        .unwrap();
        let w = som.winner(&pattern).unwrap();
        assert_eq!(w.distance, 0.0);
    }

    #[test]
    fn training_two_patterns_separates_them() {
        let mut r = rng();
        let a = BinaryVector::from_bits((0..64).map(|i| i < 32));
        let b = BinaryVector::from_bits((0..64).map(|i| i >= 32));
        let mut som = BSom::new(BSomConfig::new(8, 64), &mut r);
        som.train(&[a.clone(), b.clone()], TrainSchedule::new(200), &mut r)
            .unwrap();
        let wa = som.winner(&a).unwrap();
        let wb = som.winner(&b).unwrap();
        assert_eq!(wa.distance, 0.0);
        assert_eq!(wb.distance, 0.0);
        // The two patterns are 64 bits apart, so distinct neurons must win
        // (a single neuron cannot match both exactly unless it is all-#, and
        // the commit rule prevents a stable all-# winner for both).
        assert_ne!(wa.index, wb.index);
    }

    #[test]
    fn train_on_empty_dataset_errors() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(4, 16), &mut r);
        let empty: Vec<BinaryVector> = Vec::new();
        assert_eq!(
            som.train(&empty, TrainSchedule::new(10), &mut r),
            Err(SomError::EmptyTrainingSet)
        );
    }

    #[test]
    fn winner_only_rule_leaves_other_neurons_untouched() {
        let mut r = rng();
        let config = BSomConfig::new(6, 32).with_neighbour_rule(NeighbourRule::WinnerOnly);
        let mut som = BSom::new(config, &mut r);
        let before = som.neurons().to_vec();
        let input = BinaryVector::random(32, &mut r);
        let w = som.train_step(&input, 0, &TrainSchedule::new(1)).unwrap();
        for (i, (b, a)) in before.iter().zip(som.neurons()).enumerate() {
            if i != w.index {
                assert_eq!(b, a, "neuron {i} changed despite WinnerOnly rule");
            }
        }
    }

    #[test]
    fn relax_only_neighbours_never_gain_concrete_bits() {
        let mut r = rng();
        let config = BSomConfig::new(6, 32).with_neighbour_rule(NeighbourRule::RelaxOnly);
        let mut som = BSom::new(config, &mut r);
        // Pre-relax neuron 1 fully so we can observe that it never re-commits.
        som.set_neuron(1, TriStateVector::all_dont_care(32))
            .unwrap();
        let input = BinaryVector::random(32, &mut r);
        // Force neuron 0 to be the winner by making it an exact match.
        som.set_neuron(0, TriStateVector::from_binary(&input))
            .unwrap();
        som.train_step(&input, 0, &TrainSchedule::new(1)).unwrap();
        assert_eq!(som.neuron(1).unwrap().count_dont_care(), 32);
    }

    #[test]
    fn set_neuron_validates_and_updates_the_cache() {
        let mut som = BSom::new(BSomConfig::new(4, 16), &mut rng());
        assert!(matches!(
            som.set_neuron(4, TriStateVector::all_dont_care(16)),
            Err(SomError::NeuronOutOfRange {
                index: 4,
                neurons: 4
            })
        ));
        assert!(matches!(
            som.set_neuron(0, TriStateVector::all_dont_care(8)),
            Err(SomError::InputLengthMismatch {
                expected: 16,
                actual: 8
            })
        ));
        som.set_neuron(2, TriStateVector::all_dont_care(16))
            .unwrap();
        assert_eq!(som.dont_care_counts(), &[0, 0, 16, 0]);
        assert_eq!(som.total_dont_care(), 16);
    }

    #[test]
    fn cached_counts_stay_consistent_through_stochastic_training() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(8, 70), &mut r);
        let data: Vec<BinaryVector> = (0..5).map(|_| BinaryVector::random(70, &mut r)).collect();
        som.train(&data, TrainSchedule::new(30), &mut r).unwrap();
        for (i, neuron) in som.neurons().iter().enumerate() {
            assert_eq!(
                som.dont_care_counts()[i] as usize,
                neuron.count_dont_care(),
                "neuron {i}"
            );
        }
        assert_eq!(
            som.total_dont_care(),
            som.neurons()
                .iter()
                .map(TriStateVector::count_dont_care)
                .sum::<usize>()
        );
    }

    #[test]
    fn distances_are_consistent_with_winner() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(16, 96), &mut r);
        let input = BinaryVector::random(96, &mut r);
        let dists = som.distances(&input).unwrap();
        let w = som.winner(&input).unwrap();
        let min = dists.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(w.distance, min);
        assert_eq!(dists[w.index], min);
    }

    #[test]
    fn neuron_out_of_range_errors() {
        let som = BSom::new(BSomConfig::new(4, 16), &mut rng());
        assert!(matches!(
            som.neuron(4),
            Err(SomError::NeuronOutOfRange {
                index: 4,
                neurons: 4
            })
        ));
    }

    #[test]
    fn serde_roundtrip_preserves_weights() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let data: Vec<BinaryVector> = (0..4).map(|_| BinaryVector::random(64, &mut r)).collect();
        som.train(&data, TrainSchedule::new(50), &mut r).unwrap();
        let json = serde_json::to_string(&som).unwrap();
        let back: BSom = serde_json::from_str(&json).unwrap();
        assert_eq!(som, back);
    }

    #[test]
    fn deserialize_rejects_inconsistent_snapshots() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(4, 16), &mut r);
        let json = serde_json::to_string(&som).unwrap();

        // Neuron count disagreeing with the stored weights.
        let bad = json.replace("\"neurons\":4", "\"neurons\":5");
        assert_ne!(bad, json, "fixture must tamper the config");
        assert!(serde_json::from_str::<BSom>(&bad).is_err());

        // Out-of-range probability.
        let bad = json.replace("\"relax_probability\":0.3", "\"relax_probability\":1.5");
        assert_ne!(bad, json);
        assert!(serde_json::from_str::<BSom>(&bad).is_err());

        // The xorshift fixed point.
        let state = som.rng_state;
        let bad = json.replace(&format!("\"rng_state\":{state}"), "\"rng_state\":0");
        assert_ne!(bad, json);
        assert!(serde_json::from_str::<BSom>(&bad).is_err());
    }
}
