//! The tri-state binary Self-Organizing Map (bSOM).
//!
//! The bSOM (paper §III, based on Appiah et al., IJCNN 2009) is a SOM whose
//! input layer takes binary vectors and whose competitive-layer neurons hold
//! tri-state weight vectors over `{0, 1, #}`. The similarity measure is the
//! #-aware Hamming distance: a `#` ("don't care") weight position matches
//! either input bit and never contributes to the distance.
//!
//! ## Reconstructed training rule
//!
//! This SOCC 2010 paper does not restate the full update rule of its
//! reference \[5\]; the rule implemented here (and documented in DESIGN.md
//! §"The reconstructed update rule" as a substitution) is the natural
//! tri-state rule with the properties the paper
//! relies on, damped stochastically so that a prototype reflects the
//! *majority* of the patterns a neuron wins rather than just the last one.
//!
//! For the winning neuron and every neuron in its current neighbourhood, each
//! weight trit `w_k` is updated against the input bit `x_k`:
//!
//! | current `w_k` | input `x_k` | new `w_k` | rationale |
//! |---|---|---|---|
//! | `0` or `1`, equal to `x_k` | — | unchanged | the weight already explains the input |
//! | `0` or `1`, different from `x_k` | — | `#` *with probability* `relax_probability` | conflicting evidence ⇒ stop caring |
//! | `#` | `0`/`1` | `x_k` *with probability* `commit_probability` | commit to the observed value |
//!
//! With probabilities of 1.0 this is the raw single-step tri-state rule; the
//! defaults of 0.3 low-pass filter each bit over a handful of wins, which is
//! what brings the bSOM's recognition accuracy level with the averaging cSOM
//! (Table I) while staying a pure bit-manipulation pipeline — in hardware the
//! damping is a single AND against an LFSR bit stream. Neighbours follow
//! [`NeighbourRule`]; the default applies the same update to the whole
//! neighbourhood window, mirroring the FPGA's neighbourhood-update block.
//!
//! The rule is learning-rate free. Bits that are consistent within the
//! cluster of inputs a neuron wins converge to concrete values; bits that
//! vary spend time in `#`, harmlessly excluded from the distance.

use bsom_signature::{BinaryVector, TriStateVector, Trit};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SomError;
use crate::schedule::TrainSchedule;
use crate::som_trait::{line_neighbourhood, SelfOrganizingMap, Winner};

/// How neurons in the neighbourhood of the winner (excluding the winner
/// itself) are updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NeighbourRule {
    /// Neighbours receive the same (damped) tri-state update as the winner.
    /// This is the default and mirrors the FPGA neighbourhood-update block,
    /// which applies one update circuit to the selected address window.
    #[default]
    SameAsWinner,
    /// Neighbours only relax conflicting bits to `#`; they do not commit `#`
    /// positions to the input value — the tri-state analogue of giving
    /// neighbours a smaller learning rate. Kept for the update-rule ablation.
    RelaxOnly,
    /// Neighbours are not updated at all (winner-take-all learning). The
    /// ablation benches show this collapses onto a single over-general
    /// neuron; it exists to demonstrate that the neighbourhood block matters.
    WinnerOnly,
}

/// Configuration for a [`BSom`].
///
/// The defaults of [`BSomConfig::paper_default`] reproduce Table III: 40
/// neurons, 768-bit vectors, random initial weights, maximum neighbourhood 4
/// (the neighbourhood policy itself lives in
/// [`TrainSchedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BSomConfig {
    /// Number of neurons in the competitive layer.
    pub neurons: usize,
    /// Length of the input and weight vectors in bits.
    pub vector_len: usize,
    /// How neighbours of the winner are updated.
    pub neighbour_rule: NeighbourRule,
    /// Probability that a concrete weight trit that *disagrees* with the
    /// input relaxes to `#` during an update. 1.0 recovers the raw tri-state
    /// rule; lower values low-pass filter the weights over several wins,
    /// which is what gives the bSOM prototype quality comparable to the
    /// averaging cSOM (in hardware this is one AND gate against an LFSR bit
    /// stream).
    pub relax_probability: f64,
    /// Probability that a `#` trit commits to the observed input bit during
    /// an update. 1.0 recovers the raw tri-state rule.
    pub commit_probability: f64,
}

impl BSomConfig {
    /// Creates a configuration with the given shape and the default update
    /// behaviour.
    pub fn new(neurons: usize, vector_len: usize) -> Self {
        BSomConfig {
            neurons,
            vector_len,
            neighbour_rule: NeighbourRule::default(),
            relax_probability: 0.3,
            commit_probability: 0.3,
        }
    }

    /// The paper's configuration (Table III): 40 neurons × 768 bits.
    pub fn paper_default() -> Self {
        BSomConfig::new(40, 768)
    }

    /// Overrides the neighbour update rule.
    pub fn with_neighbour_rule(mut self, rule: NeighbourRule) -> Self {
        self.neighbour_rule = rule;
        self
    }

    /// Overrides the stochastic update probabilities (relax, commit). Pass
    /// `(1.0, 1.0)` for the undamped tri-state rule used by the ablation
    /// benches.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn with_update_probabilities(mut self, relax: f64, commit: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&relax) && (0.0..=1.0).contains(&commit),
            "update probabilities must be within [0, 1], got ({relax}, {commit})"
        );
        self.relax_probability = relax;
        self.commit_probability = commit;
        self
    }
}

impl Default for BSomConfig {
    fn default() -> Self {
        BSomConfig::paper_default()
    }
}

/// The tri-state binary Self-Organizing Map.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::BinaryVector;
/// use bsom_som::{BSom, BSomConfig, SelfOrganizingMap, TrainSchedule};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), bsom_som::SomError> {
/// let mut rng = StdRng::seed_from_u64(9);
/// let mut som = BSom::new(BSomConfig::new(8, 64), &mut rng);
/// let pattern = BinaryVector::random(64, &mut rng);
/// som.train(std::slice::from_ref(&pattern), TrainSchedule::new(50), &mut rng)?;
/// // After training on a single repeated pattern, some neuron matches it exactly.
/// let winner = som.winner(&pattern)?;
/// assert_eq!(winner.distance, 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BSom {
    config: BSomConfig,
    neurons: Vec<TriStateVector>,
    /// Internal xorshift state driving the stochastic update decisions — the
    /// software analogue of the LFSR bit stream a hardware implementation
    /// would use. Keeping it inside the map keeps `train_step` deterministic
    /// for a given construction seed.
    rng_state: u64,
}

impl BSom {
    /// Creates a bSOM with every weight initialised to a random concrete bit,
    /// the start-up state produced by the FPGA weight-initialisation block.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero neurons or a zero vector length;
    /// use [`BSom::try_new`] for a fallible constructor.
    pub fn new<R: Rng + ?Sized>(config: BSomConfig, rng: &mut R) -> Self {
        Self::try_new(config, rng).expect("bSOM configuration must be non-empty")
    }

    /// Fallible counterpart of [`BSom::new`].
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyConfiguration`] if `config.neurons` or
    /// `config.vector_len` is zero.
    pub fn try_new<R: Rng + ?Sized>(config: BSomConfig, rng: &mut R) -> Result<Self, SomError> {
        if config.neurons == 0 || config.vector_len == 0 {
            return Err(SomError::EmptyConfiguration {
                neurons: config.neurons,
                vector_len: config.vector_len,
            });
        }
        let neurons = (0..config.neurons)
            .map(|_| TriStateVector::random_concrete(config.vector_len, rng))
            .collect();
        let rng_state = rng.gen::<u64>() | 1;
        Ok(BSom {
            config,
            neurons,
            rng_state,
        })
    }

    /// Creates a bSOM from explicit weight vectors (e.g. weights exported
    /// from the FPGA BlockRAM after off-line training, §V-F).
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyConfiguration`] for an empty weight list and
    /// [`SomError::InputLengthMismatch`] if any weight vector's length
    /// differs from the first one's.
    pub fn from_weights(weights: Vec<TriStateVector>) -> Result<Self, SomError> {
        let vector_len = weights.first().map(TriStateVector::len).unwrap_or(0);
        if weights.is_empty() || vector_len == 0 {
            return Err(SomError::EmptyConfiguration {
                neurons: weights.len(),
                vector_len,
            });
        }
        if let Some(bad) = weights.iter().find(|w| w.len() != vector_len) {
            return Err(SomError::InputLengthMismatch {
                expected: vector_len,
                actual: bad.len(),
            });
        }
        let config = BSomConfig::new(weights.len(), vector_len);
        Ok(BSom {
            config,
            neurons: weights,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        })
    }

    /// The map's configuration.
    pub fn config(&self) -> &BSomConfig {
        &self.config
    }

    /// Overrides the stochastic update probabilities of an existing map
    /// (useful after [`BSom::from_weights`], which uses the defaults).
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    pub fn with_update_probabilities(mut self, relax: f64, commit: f64) -> Self {
        self.config = self.config.with_update_probabilities(relax, commit);
        self
    }

    /// Overrides the neighbour update rule of an existing map.
    pub fn with_neighbour_rule(mut self, rule: NeighbourRule) -> Self {
        self.config = self.config.with_neighbour_rule(rule);
        self
    }

    /// The weight vector of neuron `index`.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::NeuronOutOfRange`] for an invalid index.
    pub fn neuron(&self, index: usize) -> Result<&TriStateVector, SomError> {
        self.neurons.get(index).ok_or(SomError::NeuronOutOfRange {
            index,
            neurons: self.neurons.len(),
        })
    }

    /// All neuron weight vectors in index order.
    pub fn neurons(&self) -> &[TriStateVector] {
        &self.neurons
    }

    /// Total number of `#` trits across all neurons — a measure of how much
    /// of the map has relaxed to "don't care".
    pub fn total_dont_care(&self) -> usize {
        self.neurons
            .iter()
            .map(TriStateVector::count_dont_care)
            .sum()
    }

    /// Advances the internal xorshift64* state and returns a coin flip that
    /// is `true` with the given probability.
    fn coin(&mut self, probability: f64) -> bool {
        if probability >= 1.0 {
            return true;
        }
        if probability <= 0.0 {
            return false;
        }
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let sample = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        sample < probability
    }

    /// Applies the (stochastically damped) tri-state update to neuron
    /// `neuron_index` for the given input: agreeing bits are kept,
    /// disagreeing bits relax to `#` with `relax_probability`, and `#` bits
    /// commit to the input with `commit_probability` (passed as 0 for
    /// relax-only neighbour updates).
    fn update_neuron(
        &mut self,
        neuron_index: usize,
        input: &BinaryVector,
        relax_probability: f64,
        commit_probability: f64,
    ) {
        for k in 0..input.len() {
            let x = input.bit(k);
            match self.neurons[neuron_index].trit(k) {
                Trit::DontCare => {
                    if self.coin(commit_probability) {
                        self.neurons[neuron_index].set(k, Trit::from_bit(x));
                    }
                }
                t => {
                    if !t.matches(x) && self.coin(relax_probability) {
                        self.neurons[neuron_index].set(k, Trit::DontCare);
                    }
                }
            }
        }
    }

    fn check_input(&self, input: &BinaryVector) -> Result<(), SomError> {
        if input.len() != self.config.vector_len {
            return Err(SomError::InputLengthMismatch {
                expected: self.config.vector_len,
                actual: input.len(),
            });
        }
        Ok(())
    }
}

impl SelfOrganizingMap for BSom {
    fn neuron_count(&self) -> usize {
        self.config.neurons
    }

    fn vector_len(&self) -> usize {
        self.config.vector_len
    }

    fn winner(&self, input: &BinaryVector) -> Result<Winner, SomError> {
        self.check_input(input)?;
        // Winner-take-all on the #-aware Hamming distance. Ties are broken
        // towards the most *specific* neuron (fewest don't-cares) and then
        // towards the lower index: a heavily-relaxed neuron has an
        // artificially small distance to everything, so among equidistant
        // candidates the one that actually commits to more bits is the better
        // explanation of the input. In hardware this is a wider comparator
        // key ({distance, #-count, address}); see DESIGN.md §"Winner
        // selection and the WTA tie-break key".
        let mut best_key = (usize::MAX, usize::MAX);
        let mut best = Winner::new(0, f64::INFINITY);
        for (i, neuron) in self.neurons.iter().enumerate() {
            let d = neuron
                .hamming(input)
                .expect("neuron and input lengths verified");
            let key = (d, neuron.count_dont_care());
            if key < best_key {
                best_key = key;
                best = Winner::new(i, d as f64);
            }
        }
        Ok(best)
    }

    fn train_step(
        &mut self,
        input: &BinaryVector,
        t: usize,
        schedule: &TrainSchedule,
    ) -> Result<Winner, SomError> {
        let winner = self.winner(input)?;
        let radius = schedule.radius_at(t);
        let relax = self.config.relax_probability;
        let commit = self.config.commit_probability;
        let neighbourhood = line_neighbourhood(winner.index, radius, self.config.neurons);
        for idx in neighbourhood {
            if idx == winner.index {
                self.update_neuron(idx, input, relax, commit);
                continue;
            }
            match self.config.neighbour_rule {
                NeighbourRule::SameAsWinner => self.update_neuron(idx, input, relax, commit),
                NeighbourRule::RelaxOnly => self.update_neuron(idx, input, relax, 0.0),
                NeighbourRule::WinnerOnly => {}
            }
        }
        Ok(winner)
    }

    fn distances(&self, input: &BinaryVector) -> Result<Vec<f64>, SomError> {
        self.check_input(input)?;
        Ok(self
            .neurons
            .iter()
            .map(|n| n.hamming(input).expect("lengths verified") as f64)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB50A)
    }

    #[test]
    fn paper_default_config_matches_table_three() {
        let c = BSomConfig::paper_default();
        assert_eq!(c.neurons, 40);
        assert_eq!(c.vector_len, 768);
        assert_eq!(BSomConfig::default(), c);
    }

    #[test]
    fn new_initialises_random_concrete_weights() {
        let som = BSom::new(BSomConfig::paper_default(), &mut rng());
        assert_eq!(som.neuron_count(), 40);
        assert_eq!(som.vector_len(), 768);
        assert_eq!(som.total_dont_care(), 0);
        // Neurons should not all be identical.
        assert!(som.neurons().windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn try_new_rejects_empty_configurations() {
        assert!(matches!(
            BSom::try_new(BSomConfig::new(0, 768), &mut rng()),
            Err(SomError::EmptyConfiguration { .. })
        ));
        assert!(matches!(
            BSom::try_new(BSomConfig::new(40, 0), &mut rng()),
            Err(SomError::EmptyConfiguration { .. })
        ));
    }

    #[test]
    fn from_weights_validates_lengths() {
        let good = vec![TriStateVector::all_dont_care(8), TriStateVector::zeros(8)];
        assert!(BSom::from_weights(good).is_ok());
        let bad = vec![TriStateVector::zeros(8), TriStateVector::zeros(9)];
        assert!(matches!(
            BSom::from_weights(bad),
            Err(SomError::InputLengthMismatch {
                expected: 8,
                actual: 9
            })
        ));
        assert!(BSom::from_weights(Vec::new()).is_err());
    }

    #[test]
    fn winner_finds_exact_match() {
        let weights = vec![
            TriStateVector::from_str("1111").unwrap(),
            TriStateVector::from_str("0000").unwrap(),
            TriStateVector::from_str("1100").unwrap(),
        ];
        let som = BSom::from_weights(weights).unwrap();
        let w = som
            .winner(&BinaryVector::from_bit_str("1100").unwrap())
            .unwrap();
        assert_eq!(w.index, 2);
        assert_eq!(w.distance, 0.0);
    }

    #[test]
    fn winner_breaks_ties_towards_lower_index() {
        let weights = vec![
            TriStateVector::from_str("1111").unwrap(),
            TriStateVector::from_str("1111").unwrap(),
        ];
        let som = BSom::from_weights(weights).unwrap();
        let w = som
            .winner(&BinaryVector::from_bit_str("1110").unwrap())
            .unwrap();
        assert_eq!(w.index, 0);
        assert_eq!(w.distance, 1.0);
    }

    #[test]
    fn all_dont_care_neuron_always_wins_with_distance_zero() {
        // The paper calls this case out explicitly.
        let weights = vec![
            TriStateVector::from_str("1010").unwrap(),
            TriStateVector::from_str("####").unwrap(),
        ];
        let som = BSom::from_weights(weights).unwrap();
        let w = som
            .winner(&BinaryVector::from_bit_str("0101").unwrap())
            .unwrap();
        assert_eq!(w.index, 1);
        assert_eq!(w.distance, 0.0);
    }

    #[test]
    fn winner_rejects_wrong_length_input() {
        let som = BSom::new(BSomConfig::new(4, 16), &mut rng());
        assert!(matches!(
            som.winner(&BinaryVector::zeros(8)),
            Err(SomError::InputLengthMismatch {
                expected: 16,
                actual: 8
            })
        ));
        assert!(som.distances(&BinaryVector::zeros(8)).is_err());
    }

    #[test]
    fn update_rule_agreement_keeps_disagreement_relaxes_dont_care_commits() {
        let weights = vec![TriStateVector::from_str("01#").unwrap()];
        // Undamped probabilities so the single-step rule is deterministic.
        let mut som = BSom::from_weights(weights)
            .unwrap()
            .with_update_probabilities(1.0, 1.0);
        let input = BinaryVector::from_bit_str("001").unwrap();
        // Radius is irrelevant for a single-neuron map.
        som.train_step(&input, 0, &TrainSchedule::new(1)).unwrap();
        let w = som.neuron(0).unwrap();
        // position 0: weight 0, input 0 -> keep 0
        // position 1: weight 1, input 0 -> relax to #
        // position 2: weight #, input 1 -> commit to 1
        assert_eq!(w.to_trit_string(), "0#1");
    }

    #[test]
    fn repeated_pattern_converges_to_exact_match() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let pattern = BinaryVector::random(64, &mut r);
        som.train(
            std::slice::from_ref(&pattern),
            TrainSchedule::new(64),
            &mut r,
        )
        .unwrap();
        let w = som.winner(&pattern).unwrap();
        assert_eq!(w.distance, 0.0);
    }

    #[test]
    fn training_two_patterns_separates_them() {
        let mut r = rng();
        let a = BinaryVector::from_bits((0..64).map(|i| i < 32));
        let b = BinaryVector::from_bits((0..64).map(|i| i >= 32));
        let mut som = BSom::new(BSomConfig::new(8, 64), &mut r);
        som.train(&[a.clone(), b.clone()], TrainSchedule::new(200), &mut r)
            .unwrap();
        let wa = som.winner(&a).unwrap();
        let wb = som.winner(&b).unwrap();
        assert_eq!(wa.distance, 0.0);
        assert_eq!(wb.distance, 0.0);
        // The two patterns are 64 bits apart, so distinct neurons must win
        // (a single neuron cannot match both exactly unless it is all-#, and
        // the commit rule prevents a stable all-# winner for both).
        assert_ne!(wa.index, wb.index);
    }

    #[test]
    fn train_on_empty_dataset_errors() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(4, 16), &mut r);
        let empty: Vec<BinaryVector> = Vec::new();
        assert_eq!(
            som.train(&empty, TrainSchedule::new(10), &mut r),
            Err(SomError::EmptyTrainingSet)
        );
    }

    #[test]
    fn winner_only_rule_leaves_other_neurons_untouched() {
        let mut r = rng();
        let config = BSomConfig::new(6, 32).with_neighbour_rule(NeighbourRule::WinnerOnly);
        let mut som = BSom::new(config, &mut r);
        let before = som.neurons().to_vec();
        let input = BinaryVector::random(32, &mut r);
        let w = som.train_step(&input, 0, &TrainSchedule::new(1)).unwrap();
        for (i, (b, a)) in before.iter().zip(som.neurons()).enumerate() {
            if i != w.index {
                assert_eq!(b, a, "neuron {i} changed despite WinnerOnly rule");
            }
        }
    }

    #[test]
    fn relax_only_neighbours_never_gain_concrete_bits() {
        let mut r = rng();
        let config = BSomConfig::new(6, 32).with_neighbour_rule(NeighbourRule::RelaxOnly);
        let mut som = BSom::new(config, &mut r);
        // Pre-relax neuron 1 fully so we can observe that it never re-commits.
        som.neurons[1] = TriStateVector::all_dont_care(32);
        let input = BinaryVector::random(32, &mut r);
        // Force neuron 0 to be the winner by making it an exact match.
        som.neurons[0] = TriStateVector::from_binary(&input);
        som.train_step(&input, 0, &TrainSchedule::new(1)).unwrap();
        assert_eq!(som.neuron(1).unwrap().count_dont_care(), 32);
    }

    #[test]
    fn distances_are_consistent_with_winner() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(16, 96), &mut r);
        let input = BinaryVector::random(96, &mut r);
        let dists = som.distances(&input).unwrap();
        let w = som.winner(&input).unwrap();
        let min = dists.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(w.distance, min);
        assert_eq!(dists[w.index], min);
    }

    #[test]
    fn neuron_out_of_range_errors() {
        let som = BSom::new(BSomConfig::new(4, 16), &mut rng());
        assert!(matches!(
            som.neuron(4),
            Err(SomError::NeuronOutOfRange {
                index: 4,
                neurons: 4
            })
        ));
    }

    #[test]
    fn serde_roundtrip_preserves_weights() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let data: Vec<BinaryVector> = (0..4).map(|_| BinaryVector::random(64, &mut r)).collect();
        som.train(&data, TrainSchedule::new(50), &mut r).unwrap();
        let json = serde_json::to_string(&som).unwrap();
        let back: BSom = serde_json::from_str(&json).unwrap();
        assert_eq!(som, back);
    }
}
