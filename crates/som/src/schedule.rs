//! Training schedules: iteration budgets and the shrinking neighbourhood.
//!
//! Paper §V-D fixes the neighbourhood policy used by the FPGA implementation:
//! the maximum neighbourhood size is 4 and it decreases as training
//! progresses — with a budget of 100 iterations, iterations 1–25 use radius
//! 4, 26–50 use 3, 51–75 use 2 and 76–100 use 1. [`NeighbourhoodSchedule`]
//! generalises that quarter-wise policy to any budget and maximum radius, and
//! also provides a linear-decay alternative used by the ablation benches.

use serde::{Deserialize, Serialize};

/// The neighbourhood-radius policy followed during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NeighbourhoodSchedule {
    /// The paper's policy: the iteration budget is split into `max_radius`
    /// equal phases and the radius steps down by one at each phase boundary,
    /// ending at radius 1.
    Quartered {
        /// Radius used during the first phase (paper: 4).
        max_radius: usize,
    },
    /// Linear interpolation from `max_radius` down to 1 across the budget.
    /// Provided for the schedule ablation; not used by the paper.
    Linear {
        /// Radius at iteration 0.
        max_radius: usize,
    },
    /// A constant radius for every iteration.
    Constant {
        /// The radius to use throughout.
        radius: usize,
    },
}

impl NeighbourhoodSchedule {
    /// The paper's schedule: quartered descent from a maximum radius of 4
    /// (Table III, §V-D).
    pub fn paper_default() -> Self {
        NeighbourhoodSchedule::Quartered { max_radius: 4 }
    }

    /// The neighbourhood radius to use at iteration `t` (0-based) of a
    /// training run with `total` iterations.
    ///
    /// The radius never falls below 1: even at the end of training the
    /// winning neuron itself is always updated.
    pub fn radius_at(&self, t: usize, total: usize) -> usize {
        match *self {
            NeighbourhoodSchedule::Constant { radius } => radius.max(1),
            NeighbourhoodSchedule::Quartered { max_radius } => {
                let max_radius = max_radius.max(1);
                if total == 0 {
                    return max_radius;
                }
                let phase_len = total.div_ceil(max_radius);
                let phase = (t / phase_len.max(1)).min(max_radius - 1);
                max_radius - phase
            }
            NeighbourhoodSchedule::Linear { max_radius } => {
                let max_radius = max_radius.max(1);
                if total <= 1 {
                    return max_radius;
                }
                let span = (max_radius - 1) as f64;
                let progress = t as f64 / (total - 1) as f64;
                (max_radius as f64 - span * progress).round().max(1.0) as usize
            }
        }
    }
}

impl Default for NeighbourhoodSchedule {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A complete training schedule: how many iterations to perform and how the
/// neighbourhood radius evolves over them.
///
/// One *iteration* is a full pass over the training set (every pattern
/// presented once in shuffled order), matching the paper's Table I budgets of
/// 10–500 iterations over 2,248 signatures: both SOMs are already near their
/// plateau at 10 iterations, which only makes sense if an iteration sweeps
/// the whole training set. The neighbourhood radius and the cSOM learning
/// rate are functions of the iteration index, not of the individual pattern
/// presentation, exactly as in §V-D.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainSchedule {
    /// Number of pattern presentations.
    pub iterations: usize,
    /// Neighbourhood radius policy.
    pub neighbourhood: NeighbourhoodSchedule,
    /// Initial learning rate (used only by the real-valued cSOM; the bSOM's
    /// tri-state rule has no learning rate).
    pub initial_learning_rate: f64,
    /// Final learning rate reached at the last iteration (cSOM only).
    pub final_learning_rate: f64,
}

impl TrainSchedule {
    /// Creates the paper's default schedule for a given iteration budget:
    /// quartered neighbourhood from radius 4, cSOM learning rate decaying
    /// linearly from 0.5 to 0.01.
    pub fn new(iterations: usize) -> Self {
        TrainSchedule {
            iterations,
            neighbourhood: NeighbourhoodSchedule::paper_default(),
            initial_learning_rate: 0.5,
            final_learning_rate: 0.01,
        }
    }

    /// Replaces the neighbourhood policy.
    pub fn with_neighbourhood(mut self, neighbourhood: NeighbourhoodSchedule) -> Self {
        self.neighbourhood = neighbourhood;
        self
    }

    /// Replaces the learning-rate range (cSOM only).
    pub fn with_learning_rate(mut self, initial: f64, final_rate: f64) -> Self {
        self.initial_learning_rate = initial;
        self.final_learning_rate = final_rate;
        self
    }

    /// The neighbourhood radius at iteration `t`.
    pub fn radius_at(&self, t: usize) -> usize {
        self.neighbourhood.radius_at(t, self.iterations)
    }

    /// The cSOM learning rate at iteration `t`, interpolated linearly from
    /// the initial to the final rate.
    pub fn learning_rate_at(&self, t: usize) -> f64 {
        if self.iterations <= 1 {
            return self.initial_learning_rate;
        }
        let progress = t as f64 / (self.iterations - 1) as f64;
        self.initial_learning_rate
            + (self.final_learning_rate - self.initial_learning_rate) * progress
    }
}

impl Default for TrainSchedule {
    fn default() -> Self {
        TrainSchedule::new(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartered_schedule_matches_paper_example() {
        // Paper: 100 iterations -> radius 4 for 1..=25, 3 for 26..=50,
        // 2 for 51..=75, 1 for 76..=100 (1-based); we are 0-based.
        let s = NeighbourhoodSchedule::paper_default();
        assert_eq!(s.radius_at(0, 100), 4);
        assert_eq!(s.radius_at(24, 100), 4);
        assert_eq!(s.radius_at(25, 100), 3);
        assert_eq!(s.radius_at(49, 100), 3);
        assert_eq!(s.radius_at(50, 100), 2);
        assert_eq!(s.radius_at(74, 100), 2);
        assert_eq!(s.radius_at(75, 100), 1);
        assert_eq!(s.radius_at(99, 100), 1);
    }

    #[test]
    fn quartered_schedule_handles_budgets_not_divisible_by_four() {
        let s = NeighbourhoodSchedule::paper_default();
        for total in [1usize, 3, 7, 10, 13, 500] {
            for t in 0..total {
                let r = s.radius_at(t, total);
                assert!((1..=4).contains(&r), "total={total}, t={t}, r={r}");
            }
            // Monotonically non-increasing.
            let radii: Vec<usize> = (0..total).map(|t| s.radius_at(t, total)).collect();
            assert!(radii.windows(2).all(|w| w[0] >= w[1]), "total={total}");
            // Ends at 1 whenever the budget allows all four phases.
            if total >= 4 {
                assert_eq!(radii[total - 1], 1, "total={total}");
            }
        }
    }

    #[test]
    fn quartered_schedule_zero_total_returns_max() {
        assert_eq!(NeighbourhoodSchedule::paper_default().radius_at(0, 0), 4);
    }

    #[test]
    fn linear_schedule_descends_from_max_to_one() {
        let s = NeighbourhoodSchedule::Linear { max_radius: 4 };
        assert_eq!(s.radius_at(0, 100), 4);
        assert_eq!(s.radius_at(99, 100), 1);
        let radii: Vec<usize> = (0..100).map(|t| s.radius_at(t, 100)).collect();
        assert!(radii.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn constant_schedule_never_changes_and_never_drops_below_one() {
        let s = NeighbourhoodSchedule::Constant { radius: 2 };
        assert!((0..50).all(|t| s.radius_at(t, 50) == 2));
        let zero = NeighbourhoodSchedule::Constant { radius: 0 };
        assert_eq!(zero.radius_at(10, 50), 1);
    }

    #[test]
    fn learning_rate_interpolates_linearly() {
        let s = TrainSchedule::new(101);
        assert!((s.learning_rate_at(0) - 0.5).abs() < 1e-12);
        assert!((s.learning_rate_at(100) - 0.01).abs() < 1e-12);
        let mid = s.learning_rate_at(50);
        assert!((mid - 0.255).abs() < 1e-9);
    }

    #[test]
    fn learning_rate_single_iteration_uses_initial() {
        let s = TrainSchedule::new(1);
        assert_eq!(s.learning_rate_at(0), 0.5);
    }

    #[test]
    fn builder_methods_override_fields() {
        let s = TrainSchedule::new(200)
            .with_neighbourhood(NeighbourhoodSchedule::Constant { radius: 3 })
            .with_learning_rate(0.9, 0.1);
        assert_eq!(s.radius_at(150), 3);
        assert!((s.learning_rate_at(0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn default_schedule_is_paper_default() {
        let s = TrainSchedule::default();
        assert_eq!(s.iterations, 100);
        assert_eq!(s.neighbourhood, NeighbourhoodSchedule::paper_default());
    }
}
