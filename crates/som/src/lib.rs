//! # bsom-som
//!
//! The paper's primary contribution: a **tri-state binary Self-Organizing Map
//! (bSOM)** for appearance-based object identification, together with the
//! conventional Kohonen SOM (**cSOM**) baseline it is benchmarked against.
//!
//! ## Contents
//!
//! * [`BSom`] — a SOM whose neurons hold tri-state weight vectors over
//!   `{0, 1, #}` and whose similarity measure is the #-aware Hamming
//!   distance (paper §III, §V). Training uses the reconstructed tri-state
//!   rule documented on [`bsom::BSom::train_step`].
//! * [`CSom`] — the conventional real-valued Kohonen SOM used as the paper's
//!   baseline (Table I), operating on the same binary signatures interpreted
//!   as 0.0/1.0 values.
//! * [`SelfOrganizingMap`] — the common interface that lets the labelling,
//!   evaluation and benchmark code treat both maps uniformly.
//! * [`LabelledSom`] — a trained map plus the win-frequency node labelling of
//!   §III-B, turning the map into an object classifier with an *unknown*
//!   rejection threshold.
//! * [`evaluate`] / [`Evaluation`] — train/test evaluation producing the
//!   accuracy numbers reported in Table I, plus confusion matrices.
//!
//! ## Quick example
//!
//! ```rust
//! use bsom_signature::BinaryVector;
//! use bsom_som::{BSom, BSomConfig, LabelledSom, ObjectLabel, SelfOrganizingMap, TrainSchedule};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! // Two clearly separated 32-bit "signatures".
//! let a = BinaryVector::from_bit_str("11111111111111110000000000000000").unwrap();
//! let b = BinaryVector::from_bit_str("00000000000000001111111111111111").unwrap();
//! let data = vec![
//!     (a.clone(), ObjectLabel::new(0)),
//!     (b.clone(), ObjectLabel::new(1)),
//! ];
//!
//! let config = BSomConfig::new(4, 32);
//! let mut som = BSom::new(config, &mut rng);
//! som.train_labelled_data(&data, TrainSchedule::new(100), &mut rng);
//! let classifier = LabelledSom::label(som, &data);
//! assert_eq!(classifier.classify(&a).label(), Some(ObjectLabel::new(0)));
//! assert_eq!(classifier.classify(&b).label(), Some(ObjectLabel::new(1)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bsom;
pub mod classifier;
pub mod csom;
pub mod error;
pub mod labeling;
pub mod packed;
pub mod schedule;
pub mod som_trait;

pub use bsom::{BSom, BSomConfig, NeighbourRule};
pub use classifier::{evaluate, ConfusionMatrix, Evaluation, Prediction};
pub use csom::{CSom, CSomConfig, NeighbourhoodKernel};
pub use error::SomError;
pub use labeling::{LabelledSom, ObjectLabel};
pub use packed::{BatchWinner, PackedLayer, WTA_SHARD_LEN};
pub use schedule::{NeighbourhoodSchedule, TrainSchedule};
pub use som_trait::{SelfOrganizingMap, Winner};
