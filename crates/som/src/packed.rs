//! The plane-sliced competitive layer for batched winner search.
//!
//! [`BSom`] stores each neuron as its own pair of bit-planes,
//! which is the right shape for training (weights mutate neuron by neuron)
//! but the wrong shape for recognition traffic: the scalar winner search
//! walks 40 separate heap allocations per input. [`PackedLayer`] is the
//! recognition-side snapshot of the same weights in the layout the FPGA
//! datapath implies (DESIGN.md §"The batched engine layout"): for each 64-bit
//! word index, the corresponding value/care word of **every** neuron is
//! stored contiguously, so one sequential pass over the input words computes
//! the #-aware Hamming distance to all neurons at once and the whole layer
//! fits the cache line by line.
//!
//! The winner returned by [`PackedLayer::winner`] is bit-identical to
//! [`BSom::winner`](crate::SelfOrganizingMap::winner) — including the
//! `{distance, #-count, address}` tie-break — a property pinned down by the
//! `packed_equivalence` proptest suite.

use bsom_signature::{batch_masked_hamming, select_winner, BinaryVector, TriStateVector};
use serde::{Deserialize, Serialize};

use crate::bsom::BSom;
use crate::error::SomError;

/// The result of a batched winner search, carrying the full FPGA comparator
/// key so callers can audit tie-breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchWinner {
    /// Address of the winning neuron.
    pub index: usize,
    /// Its #-aware Hamming distance to the input.
    pub distance: u32,
    /// The winning neuron's `#`-count (the secondary comparator key).
    pub dont_care_count: u32,
}

/// A read-only, plane-sliced snapshot of a bSOM competitive layer.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::BinaryVector;
/// use bsom_som::{BSom, BSomConfig, PackedLayer, SelfOrganizingMap};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let som = BSom::new(BSomConfig::new(8, 64), &mut rng);
/// let layer = PackedLayer::from_som(&som);
/// let input = BinaryVector::random(64, &mut rng);
/// let batched = layer.winner(&input).unwrap();
/// let scalar = som.winner(&input).unwrap();
/// assert_eq!(batched.index, scalar.index);
/// assert_eq!(batched.distance as f64, scalar.distance);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PackedLayer {
    neurons: usize,
    vector_len: usize,
    words_per_vector: usize,
    /// Value words, word-major: `values[w * neurons + i]` is neuron `i`'s
    /// `w`-th value word.
    values: Vec<u64>,
    /// Care words in the same layout.
    cares: Vec<u64>,
    /// Per-neuron `#`-counts, precomputed for the tie-break key.
    dont_care_counts: Vec<u32>,
}

impl PackedLayer {
    /// Builds a packed layer from explicit tri-state weight vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyConfiguration`] for an empty weight list and
    /// [`SomError::InputLengthMismatch`] if the weights disagree on length.
    pub fn from_neurons(weights: &[TriStateVector]) -> Result<Self, SomError> {
        let vector_len = weights.first().map(TriStateVector::len).unwrap_or(0);
        if weights.is_empty() || vector_len == 0 {
            return Err(SomError::EmptyConfiguration {
                neurons: weights.len(),
                vector_len,
            });
        }
        if let Some(bad) = weights.iter().find(|w| w.len() != vector_len) {
            return Err(SomError::InputLengthMismatch {
                expected: vector_len,
                actual: bad.len(),
            });
        }
        let neurons = weights.len();
        let words_per_vector = vector_len.div_ceil(64);
        let mut values = vec![0u64; words_per_vector * neurons];
        let mut cares = vec![0u64; words_per_vector * neurons];
        for (i, weight) in weights.iter().enumerate() {
            for (w, &v) in weight.value_plane().as_words().iter().enumerate() {
                values[w * neurons + i] = v;
            }
            for (w, &c) in weight.care_plane().as_words().iter().enumerate() {
                cares[w * neurons + i] = c;
            }
        }
        let dont_care_counts = weights.iter().map(|w| w.count_dont_care() as u32).collect();
        Ok(PackedLayer {
            neurons,
            vector_len,
            words_per_vector,
            values,
            cares,
            dont_care_counts,
        })
    }

    /// Packs a [`BSom`]'s competitive layer from scratch — the reference
    /// layout that [`apply_neuron_update`](Self::apply_neuron_update)
    /// maintains incrementally (the `incremental_packed` test pins down that
    /// the two routes agree word for word).
    pub fn pack(som: &BSom) -> Self {
        Self::from_neurons(som.neurons()).expect("a constructed BSom is never empty")
    }

    /// Snapshots a trained [`BSom`]'s competitive layer. Alias of
    /// [`pack`](Self::pack), kept for existing call sites.
    pub fn from_som(som: &BSom) -> Self {
        Self::pack(som)
    }

    /// Rewrites the words of neuron `index` in place from its new weight
    /// vector — the incremental-maintenance hook that lets a training loop
    /// keep one packed layout current instead of re-packing the whole layer
    /// per publish. Only the `words_per_vector` value/care words belonging to
    /// this neuron are touched; every other neuron's words are untouched, so
    /// concurrent readers of a *cloned* layer are unaffected.
    ///
    /// `dont_care_count` is the neuron's new `#`-count (callers maintain it
    /// incrementally from update deltas; debug-asserted against a recount).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `weight` has the wrong length.
    pub fn apply_neuron_update(
        &mut self,
        index: usize,
        weight: &TriStateVector,
        dont_care_count: u32,
    ) {
        assert!(
            index < self.neurons,
            "neuron {index} out of range for a {}-neuron layer",
            self.neurons
        );
        assert_eq!(
            weight.len(),
            self.vector_len,
            "weight length must match the layer's vector length"
        );
        debug_assert_eq!(
            weight.count_dont_care(),
            dont_care_count as usize,
            "stale #-count handed to apply_neuron_update for neuron {index}"
        );
        for (w, &v) in weight.value_plane().as_words().iter().enumerate() {
            self.values[w * self.neurons + index] = v;
        }
        for (w, &c) in weight.care_plane().as_words().iter().enumerate() {
            self.cares[w * self.neurons + index] = c;
        }
        self.dont_care_counts[index] = dont_care_count;
    }

    /// `true` iff neuron `index`'s packed words and `#`-count equal `weight`'s
    /// planes — the per-neuron sync check the [`BSom`] update paths
    /// debug-assert after every incremental write.
    pub fn neuron_matches(&self, index: usize, weight: &TriStateVector) -> bool {
        index < self.neurons
            && weight.len() == self.vector_len
            && weight
                .value_plane()
                .as_words()
                .iter()
                .enumerate()
                .all(|(w, &v)| self.values[w * self.neurons + index] == v)
            && weight
                .care_plane()
                .as_words()
                .iter()
                .enumerate()
                .all(|(w, &c)| self.cares[w * self.neurons + index] == c)
            && self.dont_care_counts[index] as usize == weight.count_dont_care()
    }

    /// Number of neurons in the layer.
    pub fn neuron_count(&self) -> usize {
        self.neurons
    }

    /// Length of the weight vectors / expected input length in bits.
    pub fn vector_len(&self) -> usize {
        self.vector_len
    }

    /// Per-neuron `#`-counts in address order (the secondary comparator key).
    pub fn dont_care_counts(&self) -> &[u32] {
        &self.dont_care_counts
    }

    /// The word-major value plane (`neurons` words per input word index).
    pub fn value_words(&self) -> &[u64] {
        &self.values
    }

    /// The word-major care plane, in the same layout as
    /// [`value_words`](Self::value_words).
    pub fn care_words(&self) -> &[u64] {
        &self.cares
    }

    fn check_input(&self, input: &BinaryVector) -> Result<(), SomError> {
        if input.len() != self.vector_len {
            return Err(SomError::InputLengthMismatch {
                expected: self.vector_len,
                actual: input.len(),
            });
        }
        Ok(())
    }

    /// Accumulates the #-aware Hamming distances from `input` to every neuron
    /// into `distances` (which must hold one zeroed slot per neuron). Exposed
    /// so callers that classify in a tight loop can reuse the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length input.
    ///
    /// # Panics
    ///
    /// Panics if `distances.len() != self.neuron_count()`.
    pub fn distances_into(
        &self,
        input: &BinaryVector,
        distances: &mut [u32],
    ) -> Result<(), SomError> {
        self.check_input(input)?;
        batch_masked_hamming(
            &self.values,
            &self.cares,
            input.as_words(),
            self.neurons,
            distances,
        );
        Ok(())
    }

    /// Distances from `input` to every neuron, in address order.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length input.
    pub fn distances(&self, input: &BinaryVector) -> Result<Vec<u32>, SomError> {
        let mut distances = vec![0u32; self.neurons];
        self.distances_into(input, &mut distances)?;
        Ok(distances)
    }

    /// Batched winner search: one sequential pass over the input words
    /// against the plane-sliced layer, then the `{distance, #-count,
    /// address}` reduction.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length input.
    pub fn winner(&self, input: &BinaryVector) -> Result<BatchWinner, SomError> {
        let mut distances = vec![0u32; self.neurons];
        self.winner_with_buffer(input, &mut distances)
    }

    /// [`winner`](Self::winner) with a caller-provided distance buffer,
    /// avoiding the per-call allocation in batch loops. The buffer is
    /// overwritten.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length input.
    ///
    /// # Panics
    ///
    /// Panics if `distances.len() != self.neuron_count()`.
    pub fn winner_with_buffer(
        &self,
        input: &BinaryVector,
        distances: &mut [u32],
    ) -> Result<BatchWinner, SomError> {
        distances.fill(0);
        self.distances_into(input, distances)?;
        let (index, distance) = select_winner(distances, &self.dont_care_counts)
            .expect("a constructed PackedLayer is never empty");
        Ok(BatchWinner {
            index,
            distance,
            dont_care_count: self.dont_care_counts[index],
        })
    }

    /// Winner search over a whole batch of inputs, reusing one distance
    /// buffer across the batch.
    ///
    /// # Errors
    ///
    /// Returns the first [`SomError::InputLengthMismatch`] encountered.
    pub fn winners(&self, inputs: &[BinaryVector]) -> Result<Vec<BatchWinner>, SomError> {
        let mut distances = vec![0u32; self.neurons];
        inputs
            .iter()
            .map(|input| self.winner_with_buffer(input, &mut distances))
            .collect()
    }
}

/// The raw wire shape of a [`PackedLayer`], deserialized without invariants.
///
/// The public type's constructors all enforce the cross-field invariants the
/// search kernels index by; deserialization must not be a back door around
/// them, so [`PackedLayer`]'s `Deserialize` goes through this struct plus
/// [`PackedLayer::validate_raw`].
#[derive(Deserialize)]
struct RawPackedLayer {
    neurons: usize,
    vector_len: usize,
    words_per_vector: usize,
    values: Vec<u64>,
    cares: Vec<u64>,
    dont_care_counts: Vec<u32>,
}

impl PackedLayer {
    /// Checks every invariant the hand-written constructors guarantee; a
    /// snapshot violating any of them would panic or mis-index at
    /// classification time.
    fn validate_raw(raw: RawPackedLayer) -> Result<Self, String> {
        if raw.neurons == 0 || raw.vector_len == 0 {
            return Err(format!(
                "PackedLayer must be non-empty (neurons = {}, vector_len = {})",
                raw.neurons, raw.vector_len
            ));
        }
        if raw.words_per_vector != raw.vector_len.div_ceil(64) {
            return Err(format!(
                "words_per_vector {} does not match vector_len {}",
                raw.words_per_vector, raw.vector_len
            ));
        }
        let expected_words = raw.words_per_vector * raw.neurons;
        if raw.values.len() != expected_words || raw.cares.len() != expected_words {
            return Err(format!(
                "plane sizes ({} values, {} cares) do not match {} words x {} neurons",
                raw.values.len(),
                raw.cares.len(),
                raw.words_per_vector,
                raw.neurons
            ));
        }
        if raw.dont_care_counts.len() != raw.neurons {
            return Err(format!(
                "{} #-counts for {} neurons",
                raw.dont_care_counts.len(),
                raw.neurons
            ));
        }
        // Tail bits beyond vector_len must be zero in both planes — Eq. 3
        // popcounts would otherwise see phantom trits.
        let rem = raw.vector_len % 64;
        if rem != 0 {
            let tail_mask = !((1u64 << rem) - 1);
            let tail_row = (raw.words_per_vector - 1) * raw.neurons;
            for plane in [&raw.values, &raw.cares] {
                if plane[tail_row..].iter().any(|w| w & tail_mask != 0) {
                    return Err(format!(
                        "tail bits beyond vector_len {} are set",
                        raw.vector_len
                    ));
                }
            }
        }
        Ok(PackedLayer {
            neurons: raw.neurons,
            vector_len: raw.vector_len,
            words_per_vector: raw.words_per_vector,
            values: raw.values,
            cares: raw.cares,
            dont_care_counts: raw.dont_care_counts,
        })
    }
}

// Written against the vendored serde stand-in's `from_value` trait; with
// registry serde this collapses to `#[serde(try_from = "RawPackedLayer")]`
// on the struct (see vendor/README.md).
impl serde::Deserialize for PackedLayer {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let raw = RawPackedLayer::from_value(value)?;
        PackedLayer::validate_raw(raw).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsom::BSomConfig;
    use crate::som_trait::SelfOrganizingMap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBA7C4ED)
    }

    #[test]
    fn from_neurons_validates_shapes() {
        assert!(matches!(
            PackedLayer::from_neurons(&[]),
            Err(SomError::EmptyConfiguration { .. })
        ));
        let bad = [TriStateVector::zeros(8), TriStateVector::zeros(9)];
        assert!(matches!(
            PackedLayer::from_neurons(&bad),
            Err(SomError::InputLengthMismatch {
                expected: 8,
                actual: 9
            })
        ));
    }

    #[test]
    fn packed_distances_match_scalar_distances() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::paper_default(), &mut r);
        let layer = PackedLayer::from_som(&som);
        assert_eq!(layer.neuron_count(), 40);
        assert_eq!(layer.vector_len(), 768);
        for _ in 0..10 {
            let input = BinaryVector::random(768, &mut r);
            let scalar = som.distances(&input).unwrap();
            let packed = layer.distances(&input).unwrap();
            for (s, p) in scalar.iter().zip(&packed) {
                assert_eq!(*s, *p as f64);
            }
        }
    }

    #[test]
    fn packed_winner_matches_scalar_winner_after_training() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(16, 96), &mut r);
        let data: Vec<BinaryVector> = (0..8).map(|_| BinaryVector::random(96, &mut r)).collect();
        som.train(&data, crate::TrainSchedule::new(30), &mut r)
            .unwrap();
        let layer = PackedLayer::from_som(&som);
        for input in &data {
            let scalar = som.winner(input).unwrap();
            let packed = layer.winner(input).unwrap();
            assert_eq!(packed.index, scalar.index);
            assert_eq!(packed.distance as f64, scalar.distance);
        }
    }

    #[test]
    fn tie_break_prefers_specific_then_low_address() {
        // Neuron 0 is all-#: distance 0 everywhere but maximally unspecific.
        // Neuron 1 exactly matches the input: distance 0 and fully concrete.
        let weights = [
            TriStateVector::from_str("####").unwrap(),
            TriStateVector::from_str("1010").unwrap(),
            TriStateVector::from_str("1010").unwrap(),
        ];
        let layer = PackedLayer::from_neurons(&weights).unwrap();
        let w = layer
            .winner(&BinaryVector::from_bit_str("1010").unwrap())
            .unwrap();
        assert_eq!(w.index, 1, "specificity beats the all-# neuron");
        assert_eq!(w.distance, 0);
        assert_eq!(w.dont_care_count, 0);
    }

    #[test]
    fn wrong_length_input_errors() {
        let layer = PackedLayer::from_neurons(&[TriStateVector::zeros(16)]).unwrap();
        assert!(matches!(
            layer.winner(&BinaryVector::zeros(8)),
            Err(SomError::InputLengthMismatch {
                expected: 16,
                actual: 8
            })
        ));
        assert!(layer.winners(&[BinaryVector::zeros(8)]).is_err());
    }

    #[test]
    fn winners_batch_matches_individual_calls() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(12, 128), &mut r);
        let layer = PackedLayer::from_som(&som);
        let inputs: Vec<BinaryVector> = (0..6).map(|_| BinaryVector::random(128, &mut r)).collect();
        let batch = layer.winners(&inputs).unwrap();
        for (input, batched) in inputs.iter().zip(&batch) {
            assert_eq!(*batched, layer.winner(input).unwrap());
        }
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(4, 70), &mut r);
        let layer = PackedLayer::from_som(&som);
        let json = serde_json::to_string(&layer).unwrap();
        let back: PackedLayer = serde_json::from_str(&json).unwrap();
        assert_eq!(layer, back);
    }

    #[test]
    fn deserialize_rejects_inconsistent_snapshots() {
        let mut r = rng();
        let layer = PackedLayer::from_som(&BSom::new(BSomConfig::new(4, 70), &mut r));
        let json = serde_json::to_string(&layer).unwrap();

        // Structural tampering: wrong neuron count for the stored planes.
        let bad = json.replace("\"neurons\":4", "\"neurons\":5");
        assert!(serde_json::from_str::<PackedLayer>(&bad).is_err());

        // Empty layer.
        let empty = json
            .replace("\"neurons\":4", "\"neurons\":0")
            .replace("\"vector_len\":70", "\"vector_len\":0");
        assert!(serde_json::from_str::<PackedLayer>(&empty).is_err());

        // Wrong words_per_vector for the claimed vector_len.
        let skewed = json.replace("\"words_per_vector\":2", "\"words_per_vector\":3");
        assert!(serde_json::from_str::<PackedLayer>(&skewed).is_err());

        // #-count table not one-per-neuron.
        let counts = json.replace("\"dont_care_counts\":[0,0,0,0]", "\"dont_care_counts\":[0]");
        assert_ne!(counts, json, "fixture must actually tamper the counts");
        assert!(serde_json::from_str::<PackedLayer>(&counts).is_err());
    }

    #[test]
    fn deserialize_rejects_set_tail_bits() {
        // 70-bit vectors leave 58 tail bits in the second word; phantom trits
        // there would corrupt every popcount. All-# layer except for a care
        // tail word with every bit set.
        let good = r#"{"neurons":1,"vector_len":70,"words_per_vector":2,
            "values":[0,0],"cares":[0,0],"dont_care_counts":[70]}"#;
        assert!(serde_json::from_str::<PackedLayer>(good).is_ok());
        let bad = good.replace("\"cares\":[0,0]", "\"cares\":[0,18446744073709551615]");
        assert!(serde_json::from_str::<PackedLayer>(&bad).is_err());
    }
}
