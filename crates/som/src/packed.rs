//! The plane-sliced competitive layer: one layout for search **and** update.
//!
//! [`PackedLayer`] stores the competitive layer in the layout the FPGA
//! datapath implies (DESIGN.md §"The batched engine layout"): for each
//! 64-bit word index `w`, the `w`-th value/care word of **every** neuron is
//! stored contiguously in a *word row* (`value_row(w)[i]` is neuron `i`'s
//! word `w`). One sequential pass over the input words then computes the
//! #-aware Hamming distance to all neurons at once, the whole layer fits the
//! cache line by line — and, because a neighbourhood is a contiguous run of
//! neuron addresses, the `w`-th words of a whole neighbourhood are a
//! contiguous run inside row `w`, which is what
//! [`PackedLayer::apply_window_update`] exploits to train every neuron in
//! the winner's address window in a single pass under one broadcast
//! Bernoulli mask stream (DESIGN.md §"The neighbourhood broadcast update").
//!
//! ## Copy-on-write rows
//!
//! Each word row lives behind its own [`Arc`], so cloning a `PackedLayer` —
//! the serving-snapshot publish in `bsom-engine` — copies only the spine of
//! row pointers, O(`words_per_vector`) refcount bumps instead of O(map)
//! words. The update paths ([`apply_neuron_update`](PackedLayer::apply_neuron_update),
//! [`apply_window_update`](PackedLayer::apply_window_update)) only
//! [`Arc::make_mut`] a row when they are about to change at least one of its
//! words, so rows untouched since the last publish stay physically shared
//! between consecutive snapshots and a publish allocates O(rows touched
//! since the last publish) (DESIGN.md §"Copy-on-write publication and the
//! tournament WTA"). [`shared_row_count`](PackedLayer::shared_row_count)
//! exposes the sharing for tests and diagnostics.
//!
//! ## The tournament winner search
//!
//! [`PackedLayer::winner`] reduces the distance vector with
//! [`select_winner_tournament`]: shard champions over
//! [`WTA_SHARD_LEN`]-neuron shards, folded pairwise through the
//! `{distance, #-count, address}` comparator key — the software shape of the
//! FPGA comparator tree, bit-identical to the linear scan (the
//! `tournament_wta` suite proves it, boundary ties included).
//!
//! ## The incremental-layout invariant
//!
//! [`BSom`] *owns* a `PackedLayer` and maintains it incrementally on every
//! weight write — per-neuron column rewrites through
//! [`apply_neuron_update`](PackedLayer::apply_neuron_update), whole-window
//! writes through [`apply_window_update`](PackedLayer::apply_window_update).
//! The invariant, debug-asserted after every update and pinned down by the
//! `incremental_packed` proptest suite, is that the maintained layout always
//! equals a from-scratch [`PackedLayer::pack`] of the same map, **word for
//! word** (planes, `#`-counts and shape). Publishing a serving snapshot is
//! therefore a plain clone of this field, never a re-pack, and the winner
//! returned by [`PackedLayer::winner`] is bit-identical to
//! [`BSom::winner`](crate::SelfOrganizingMap::winner) — including the
//! `{distance, #-count, address}` tie-break (`packed_equivalence` suite).
//!
//! ```rust
//! use bsom_signature::BinaryVector;
//! use bsom_som::{BSom, BSomConfig, PackedLayer, SelfOrganizingMap, TrainSchedule};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), bsom_som::SomError> {
//! let mut rng = StdRng::seed_from_u64(9);
//! let mut som = BSom::new(BSomConfig::new(8, 70), &mut rng);
//! let input = BinaryVector::random(70, &mut rng);
//! som.train_step(&input, 0, &TrainSchedule::new(1))?;
//! // The incrementally maintained layout equals a fresh pack word for word.
//! assert_eq!(som.packed_layer(), &PackedLayer::pack(&som));
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use bsom_signature::bernoulli::{draw_broadcast_masks, MaskPlan};
use bsom_signature::{
    accumulate_masked_hamming_row, select_winner_tournament, update_window_word, window_word_needs,
    window_word_would_change, BinaryVector, TriStateVector,
};
use serde::{Deserialize, Serialize};

use crate::bsom::BSom;
use crate::error::SomError;

/// Shard width of the tournament winner search, in neurons.
///
/// Each shard is one leaf comparator of the FPGA tree; 64 keeps a leaf scan
/// inside one cache line of distances while giving a 1024-neuron map a
/// 16-leaf tournament. Any positive value yields the identical winner
/// ([`select_winner_tournament`] is proptest-proven bit-identical to the
/// linear scan for arbitrary shard widths); this constant only picks the
/// performance point.
pub const WTA_SHARD_LEN: usize = 64;

/// Neuron-axis block width of the cache-blocked distance pass.
///
/// The winner search walks every word row of the plane-sliced layer over
/// the whole distance table; once the table (4 bytes per neuron) plus one
/// block of each plane row stops fitting in L1, each word row evicts the
/// distances the previous row just touched. Blocking the column walk at
/// 1024 neurons keeps a 4 KiB distance block resident across all word rows
/// while the 8 KiB value/care row blocks stream through once each. Any
/// positive value yields bit-identical distances (the per-neuron
/// accumulation order over words is unchanged); this constant only picks
/// the performance point.
pub const DISTANCE_BLOCK_NEURONS: usize = 1024;

/// The result of a batched winner search, carrying the full FPGA comparator
/// key so callers can audit tie-breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchWinner {
    /// Address of the winning neuron.
    pub index: usize,
    /// Its #-aware Hamming distance to the input.
    pub distance: u32,
    /// The winning neuron's `#`-count (the secondary comparator key).
    pub dont_care_count: u32,
}

/// One word row of the plane-sliced layout: the `w`-th value and care word
/// of every neuron, bundled so a window update that touches both planes
/// copies the row once. Private — rows are an ownership detail; callers see
/// [`PackedLayer::value_row`] / [`PackedLayer::care_row`] slices.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlaneRow {
    values: Vec<u64>,
    cares: Vec<u64>,
}

/// A read-only, plane-sliced snapshot of a bSOM competitive layer.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::BinaryVector;
/// use bsom_som::{BSom, BSomConfig, PackedLayer, SelfOrganizingMap};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let som = BSom::new(BSomConfig::new(8, 64), &mut rng);
/// let layer = PackedLayer::from_som(&som);
/// let input = BinaryVector::random(64, &mut rng);
/// let batched = layer.winner(&input).unwrap();
/// let scalar = som.winner(&input).unwrap();
/// assert_eq!(batched.index, scalar.index);
/// assert_eq!(batched.distance as f64, scalar.distance);
///
/// // Cloning is a copy-on-write publish: every row is shared, not copied.
/// let snapshot = layer.clone();
/// assert_eq!(snapshot.shared_row_count(&layer), layer.word_row_count());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLayer {
    neurons: usize,
    vector_len: usize,
    words_per_vector: usize,
    /// One copy-on-write word row per input word index: `rows[w]` holds
    /// neuron `i`'s `w`-th value word at `rows[w].values[i]` (cares
    /// likewise).
    rows: Vec<Arc<PlaneRow>>,
    /// Per-neuron `#`-counts, precomputed for the tie-break key. Behind its
    /// own `Arc` on the same copy-on-write discipline as the rows.
    dont_care_counts: Arc<Vec<u32>>,
}

impl PackedLayer {
    /// Builds a packed layer from explicit tri-state weight vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyConfiguration`] for an empty weight list and
    /// [`SomError::InputLengthMismatch`] if the weights disagree on length.
    pub fn from_neurons(weights: &[TriStateVector]) -> Result<Self, SomError> {
        let vector_len = weights.first().map(TriStateVector::len).unwrap_or(0);
        if weights.is_empty() || vector_len == 0 {
            return Err(SomError::EmptyConfiguration {
                neurons: weights.len(),
                vector_len,
            });
        }
        if let Some(bad) = weights.iter().find(|w| w.len() != vector_len) {
            return Err(SomError::InputLengthMismatch {
                expected: vector_len,
                actual: bad.len(),
            });
        }
        let neurons = weights.len();
        let words_per_vector = vector_len.div_ceil(64);
        let mut rows: Vec<PlaneRow> = (0..words_per_vector)
            .map(|_| PlaneRow {
                values: vec![0u64; neurons],
                cares: vec![0u64; neurons],
            })
            .collect();
        for (i, weight) in weights.iter().enumerate() {
            for (w, &v) in weight.value_plane().as_words().iter().enumerate() {
                rows[w].values[i] = v;
            }
            for (w, &c) in weight.care_plane().as_words().iter().enumerate() {
                rows[w].cares[i] = c;
            }
        }
        let dont_care_counts = weights.iter().map(|w| w.count_dont_care() as u32).collect();
        Ok(PackedLayer {
            neurons,
            vector_len,
            words_per_vector,
            rows: rows.into_iter().map(Arc::new).collect(),
            dont_care_counts: Arc::new(dont_care_counts),
        })
    }

    /// Packs a [`BSom`]'s competitive layer from scratch — the reference
    /// layout that [`apply_neuron_update`](Self::apply_neuron_update)
    /// maintains incrementally (the `incremental_packed` test pins down that
    /// the two routes agree word for word).
    pub fn pack(som: &BSom) -> Self {
        Self::from_neurons(som.neurons()).expect("a constructed BSom is never empty")
    }

    /// Snapshots a trained [`BSom`]'s competitive layer. Alias of
    /// [`pack`](Self::pack), kept for existing call sites.
    pub fn from_som(som: &BSom) -> Self {
        Self::pack(som)
    }

    /// Rewrites the words of neuron `index` in place from its new weight
    /// vector — the incremental-maintenance hook that lets a training loop
    /// keep one packed layout current instead of re-packing the whole layer
    /// per publish. Only rows whose word for this neuron actually changes
    /// are unshared ([`Arc::make_mut`]); every row the write leaves
    /// bit-identical stays physically shared with previously published
    /// snapshots.
    ///
    /// `dont_care_count` is the neuron's new `#`-count (callers maintain it
    /// incrementally from update deltas; debug-asserted against a recount).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `weight` has the wrong length.
    pub fn apply_neuron_update(
        &mut self,
        index: usize,
        weight: &TriStateVector,
        dont_care_count: u32,
    ) {
        assert!(
            index < self.neurons,
            "neuron {index} out of range for a {}-neuron layer",
            self.neurons
        );
        assert_eq!(
            weight.len(),
            self.vector_len,
            "weight length must match the layer's vector length"
        );
        debug_assert_eq!(
            weight.count_dont_care(),
            dont_care_count as usize,
            "stale #-count handed to apply_neuron_update for neuron {index}"
        );
        let value_words = weight.value_plane().as_words();
        let care_words = weight.care_plane().as_words();
        for (w, row) in self.rows.iter_mut().enumerate() {
            let (v, c) = (value_words[w], care_words[w]);
            if row.values[index] == v && row.cares[index] == c {
                continue; // row untouched: stays shared with live snapshots
            }
            let row = Arc::make_mut(row);
            row.values[index] = v;
            row.cares[index] = c;
        }
        if self.dont_care_counts[index] != dont_care_count {
            Arc::make_mut(&mut self.dont_care_counts)[index] = dont_care_count;
        }
    }

    /// Applies one stochastically damped tri-state update to **every neuron
    /// in the contiguous address window** `window`, directly on the packed
    /// column words — the software shape of the FPGA's single update circuit
    /// broadcast to the neighbourhood (DESIGN.md §"The neighbourhood
    /// broadcast update").
    ///
    /// Per 64-bit word index one broadcast (relax, commit) mask pair is
    /// drawn from the plans ([`draw_broadcast_masks`], skipping draws for
    /// words where no neuron in the window can take the transition) and
    /// applied to the window's run of row `w` with [`update_window_word`];
    /// `commit_gates[i]` (all-ones or zero) is neuron `window.start + i`'s
    /// update-enable line for the commit transition. The per-neuron
    /// `#`-counts of the layer are updated from the popcount deltas, and the
    /// same deltas are written into the caller's `relaxed` / `committed`
    /// counters so callers can maintain their own caches — scratch slices
    /// rather than returned vectors, so a training loop performs no per-step
    /// allocation (the counters are zeroed here, not accumulated).
    ///
    /// A row is unshared ([`Arc::make_mut`]) only when the drawn masks will
    /// actually flip at least one bit in it
    /// ([`window_word_would_change`]) — rows the step leaves bit-identical
    /// stay physically shared with previously published snapshots, which is
    /// what makes consecutive publishes O(rows touched). The skip is
    /// RNG-transparent: mask words are still drawn (or skipped) exactly as
    /// before, so the Bernoulli stream — and therefore every subsequent
    /// weight — is bit-identical to the always-write path.
    ///
    /// RNG cost is per *window word*, not per neuron — updating a 9-neuron
    /// neighbourhood draws exactly as many mask words as updating one
    /// neuron, which is where the plane-sliced trainer's speedup over the
    /// per-neuron path comes from.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or out of range, if `commit_gates`,
    /// `relaxed` or `committed` are not exactly `window.len()` long, or if
    /// `input` has the wrong length.
    // A hot-path entry point over parallel per-neuron slices, like the
    // `bsom_signature::batch` kernels it drives: bundling the operands into
    // a struct would only move the field list.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_window_update(
        &mut self,
        window: std::ops::Range<usize>,
        input: &BinaryVector,
        relax: &MaskPlan,
        commit: &MaskPlan,
        commit_gates: &[u64],
        state: &mut u64,
        relaxed: &mut [u32],
        committed: &mut [u32],
    ) {
        assert!(
            window.start < window.end && window.end <= self.neurons,
            "window {window:?} out of range for a {}-neuron layer",
            self.neurons
        );
        let width = window.end - window.start;
        assert_eq!(width, commit_gates.len(), "one commit gate per neuron");
        assert_eq!(width, relaxed.len(), "one relax counter per neuron");
        assert_eq!(width, committed.len(), "one commit counter per neuron");
        assert_eq!(
            input.len(),
            self.vector_len,
            "input length must match the layer's vector length"
        );
        relaxed.fill(0);
        committed.fill(0);
        for (w, &x) in input.as_words().iter().enumerate() {
            let lane_mask = if (w + 1) * 64 <= self.vector_len {
                u64::MAX
            } else {
                (1u64 << (self.vector_len % 64)) - 1
            };
            let row = &self.rows[w];
            let run_values = &row.values[window.start..window.end];
            let run_cares = &row.cares[window.start..window.end];
            let (needs_relax, needs_commit) =
                window_word_needs(run_values, run_cares, commit_gates, x, lane_mask);
            if !needs_relax && !needs_commit {
                // No neuron in the window can take either transition in this
                // word; draw_broadcast_masks would consume nothing from the
                // stream and update_window_word would write nothing.
                continue;
            }
            let masks = draw_broadcast_masks(relax, commit, needs_relax, needs_commit, state);
            let commit_mask = masks.commit & lane_mask;
            if !window_word_would_change(
                run_values,
                run_cares,
                commit_gates,
                x,
                masks.relax,
                commit_mask,
            ) {
                // Masks drawn (stream position preserved) but every
                // transition was masked off: the row stays shared.
                continue;
            }
            let row = Arc::make_mut(&mut self.rows[w]);
            update_window_word(
                &mut row.values[window.start..window.end],
                &mut row.cares[window.start..window.end],
                x,
                masks.relax,
                commit_mask,
                commit_gates,
                relaxed,
                committed,
            );
        }
        if relaxed.iter().zip(committed.iter()).any(|(&r, &c)| r != c) {
            let counts = Arc::make_mut(&mut self.dont_care_counts);
            for (i, (&r, &c)) in relaxed.iter().zip(committed.iter()).enumerate() {
                let count = &mut counts[window.start + i];
                *count = (i64::from(*count) + i64::from(r) - i64::from(c)) as u32;
            }
        }
    }

    /// Copies neuron `index`'s packed column words back into `weight`'s
    /// per-neuron planes — the write-back half of
    /// [`apply_window_update`](Self::apply_window_update), which keeps the
    /// two representations of the weights in lock-step.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or `weight` has the wrong length.
    pub fn copy_neuron_into(&self, index: usize, weight: &mut TriStateVector) {
        assert!(
            index < self.neurons,
            "neuron {index} out of range for a {}-neuron layer",
            self.neurons
        );
        assert_eq!(
            weight.len(),
            self.vector_len,
            "weight length must match the layer's vector length"
        );
        for (w, row) in self.rows.iter().enumerate() {
            weight.set_plane_word(w, row.values[index], row.cares[index]);
        }
    }

    /// `true` iff neuron `index`'s packed words and `#`-count equal `weight`'s
    /// planes — the per-neuron sync check the [`BSom`] update paths
    /// debug-assert after every incremental write.
    pub fn neuron_matches(&self, index: usize, weight: &TriStateVector) -> bool {
        index < self.neurons
            && weight.len() == self.vector_len
            && weight
                .value_plane()
                .as_words()
                .iter()
                .zip(&self.rows)
                .all(|(&v, row)| row.values[index] == v)
            && weight
                .care_plane()
                .as_words()
                .iter()
                .zip(&self.rows)
                .all(|(&c, row)| row.cares[index] == c)
            && self.dont_care_counts[index] as usize == weight.count_dont_care()
    }

    /// Number of neurons in the layer.
    pub fn neuron_count(&self) -> usize {
        self.neurons
    }

    /// Length of the weight vectors / expected input length in bits.
    pub fn vector_len(&self) -> usize {
        self.vector_len
    }

    /// Per-neuron `#`-counts in address order (the secondary comparator key).
    pub fn dont_care_counts(&self) -> &[u32] {
        &self.dont_care_counts
    }

    /// Number of word rows (one per 64-bit word index of the vectors).
    pub fn word_row_count(&self) -> usize {
        self.words_per_vector
    }

    /// Word row `w` of the value plane: neuron `i`'s `w`-th value word is
    /// `value_row(w)[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.word_row_count()`.
    pub fn value_row(&self, w: usize) -> &[u64] {
        &self.rows[w].values
    }

    /// Word row `w` of the care plane, in the same layout as
    /// [`value_row`](Self::value_row).
    ///
    /// # Panics
    ///
    /// Panics if `w >= self.word_row_count()`.
    pub fn care_row(&self, w: usize) -> &[u64] {
        &self.rows[w].cares
    }

    /// Number of word rows physically shared (same allocation, not merely
    /// equal) between `self` and `other` — the copy-on-write observable the
    /// `cow_snapshot` suite asserts on. Layers of different shapes share
    /// nothing.
    pub fn shared_row_count(&self, other: &PackedLayer) -> usize {
        self.rows
            .iter()
            .zip(&other.rows)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// `true` iff the `#`-count table is physically shared with `other`'s.
    pub fn shares_counts_with(&self, other: &PackedLayer) -> bool {
        Arc::ptr_eq(&self.dont_care_counts, &other.dont_care_counts)
    }

    fn check_input(&self, input: &BinaryVector) -> Result<(), SomError> {
        if input.len() != self.vector_len {
            return Err(SomError::InputLengthMismatch {
                expected: self.vector_len,
                actual: input.len(),
            });
        }
        Ok(())
    }

    /// Accumulates the #-aware Hamming distances from `input` to every neuron
    /// into `distances` (which must hold one zeroed slot per neuron). Exposed
    /// so callers that classify in a tight loop can reuse the buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length input.
    ///
    /// # Panics
    ///
    /// Panics if `distances.len() != self.neuron_count()`.
    pub fn distances_into(
        &self,
        input: &BinaryVector,
        distances: &mut [u32],
    ) -> Result<(), SomError> {
        self.check_input(input)?;
        assert_eq!(
            distances.len(),
            self.neurons,
            "one distance slot per neuron"
        );
        // Cache-block the column walk once the map outgrows one block: the
        // word-row loop re-walks the distance table once per input word, so
        // for large maps the table is carved into L1-resident blocks and
        // each block sees all word rows before the next block starts. The
        // per-neuron accumulation order over `w` is unchanged, so blocking
        // is bit-identical to the unblocked walk (the `packed_equivalence`
        // suite covers maps on both sides of the threshold).
        let words = input.as_words();
        if self.neurons <= DISTANCE_BLOCK_NEURONS {
            for (row, &x) in self.rows.iter().zip(words) {
                accumulate_masked_hamming_row(&row.values, &row.cares, x, distances);
            }
            return Ok(());
        }
        let mut start = 0;
        while start < self.neurons {
            let end = (start + DISTANCE_BLOCK_NEURONS).min(self.neurons);
            for (row, &x) in self.rows.iter().zip(words) {
                accumulate_masked_hamming_row(
                    &row.values[start..end],
                    &row.cares[start..end],
                    x,
                    &mut distances[start..end],
                );
            }
            start = end;
        }
        Ok(())
    }

    /// Distances from `input` to every neuron, in address order.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length input.
    pub fn distances(&self, input: &BinaryVector) -> Result<Vec<u32>, SomError> {
        let mut distances = vec![0u32; self.neurons];
        self.distances_into(input, &mut distances)?;
        Ok(distances)
    }

    /// Batched winner search: one sequential pass over the input words
    /// against the plane-sliced layer, then the tournament `{distance,
    /// #-count, address}` reduction over [`WTA_SHARD_LEN`]-neuron shards —
    /// bit-identical to the linear scan (the `tournament_wta` suite), but
    /// shaped like the FPGA comparator tree.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length input.
    pub fn winner(&self, input: &BinaryVector) -> Result<BatchWinner, SomError> {
        let mut distances = vec![0u32; self.neurons];
        self.winner_with_buffer(input, &mut distances)
    }

    /// [`winner`](Self::winner) with a caller-provided distance buffer,
    /// avoiding the per-call allocation in batch loops. The buffer is
    /// overwritten.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] for a wrong-length input.
    ///
    /// # Panics
    ///
    /// Panics if `distances.len() != self.neuron_count()`.
    pub fn winner_with_buffer(
        &self,
        input: &BinaryVector,
        distances: &mut [u32],
    ) -> Result<BatchWinner, SomError> {
        distances.fill(0);
        self.distances_into(input, distances)?;
        let key = select_winner_tournament(distances, &self.dont_care_counts, WTA_SHARD_LEN)
            .expect("a constructed PackedLayer is never empty");
        Ok(BatchWinner {
            index: key.address,
            distance: key.distance,
            dont_care_count: key.dont_care_count,
        })
    }

    /// Winner search over a whole batch of inputs, reusing one distance
    /// buffer across the batch.
    ///
    /// # Errors
    ///
    /// Returns the first [`SomError::InputLengthMismatch`] encountered.
    pub fn winners(&self, inputs: &[BinaryVector]) -> Result<Vec<BatchWinner>, SomError> {
        let mut distances = vec![0u32; self.neurons];
        inputs
            .iter()
            .map(|input| self.winner_with_buffer(input, &mut distances))
            .collect()
    }
}

// The copy-on-write rows are an ownership detail, not a wire concept: the
// serialized form stays the flat word-major planes of the pre-CoW layout
// (field order matters — readers and the tamper-rejection fixtures key on
// it). Hand-written because the vendored serde stand-in has no `Arc` impls;
// with registry serde this would be `#[serde(into/try_from)]` glue.
impl Serialize for PackedLayer {
    fn to_value(&self) -> serde::Value {
        let flatten = |plane: fn(&PlaneRow) -> &[u64]| {
            serde::Value::Array(
                self.rows
                    .iter()
                    .flat_map(|row| plane(row).iter().map(|&w| serde::Value::UInt(w)))
                    .collect(),
            )
        };
        serde::Value::Object(vec![
            ("neurons".into(), self.neurons.to_value()),
            ("vector_len".into(), self.vector_len.to_value()),
            ("words_per_vector".into(), self.words_per_vector.to_value()),
            ("values".into(), flatten(|row| &row.values)),
            ("cares".into(), flatten(|row| &row.cares)),
            (
                "dont_care_counts".into(),
                self.dont_care_counts.as_slice().to_value(),
            ),
        ])
    }
}

/// The raw wire shape of a [`PackedLayer`], deserialized without invariants.
///
/// The public type's constructors all enforce the cross-field invariants the
/// search kernels index by; deserialization must not be a back door around
/// them, so [`PackedLayer`]'s `Deserialize` goes through this struct plus
/// [`PackedLayer::validate_raw`].
#[derive(Deserialize)]
struct RawPackedLayer {
    neurons: usize,
    vector_len: usize,
    words_per_vector: usize,
    values: Vec<u64>,
    cares: Vec<u64>,
    dont_care_counts: Vec<u32>,
}

impl PackedLayer {
    /// Checks every invariant the hand-written constructors guarantee; a
    /// snapshot violating any of them would panic or mis-index at
    /// classification time.
    fn validate_raw(raw: RawPackedLayer) -> Result<Self, String> {
        if raw.neurons == 0 || raw.vector_len == 0 {
            return Err(format!(
                "PackedLayer must be non-empty (neurons = {}, vector_len = {})",
                raw.neurons, raw.vector_len
            ));
        }
        if raw.words_per_vector != raw.vector_len.div_ceil(64) {
            return Err(format!(
                "words_per_vector {} does not match vector_len {}",
                raw.words_per_vector, raw.vector_len
            ));
        }
        let expected_words = raw.words_per_vector * raw.neurons;
        if raw.values.len() != expected_words || raw.cares.len() != expected_words {
            return Err(format!(
                "plane sizes ({} values, {} cares) do not match {} words x {} neurons",
                raw.values.len(),
                raw.cares.len(),
                raw.words_per_vector,
                raw.neurons
            ));
        }
        if raw.dont_care_counts.len() != raw.neurons {
            return Err(format!(
                "{} #-counts for {} neurons",
                raw.dont_care_counts.len(),
                raw.neurons
            ));
        }
        // Tail bits beyond vector_len must be zero in both planes — Eq. 3
        // popcounts would otherwise see phantom trits.
        let rem = raw.vector_len % 64;
        if rem != 0 {
            let tail_mask = !((1u64 << rem) - 1);
            let tail_row = (raw.words_per_vector - 1) * raw.neurons;
            for plane in [&raw.values, &raw.cares] {
                if plane[tail_row..].iter().any(|w| w & tail_mask != 0) {
                    return Err(format!(
                        "tail bits beyond vector_len {} are set",
                        raw.vector_len
                    ));
                }
            }
        }
        let rows = raw
            .values
            .chunks_exact(raw.neurons)
            .zip(raw.cares.chunks_exact(raw.neurons))
            .map(|(values, cares)| {
                Arc::new(PlaneRow {
                    values: values.to_vec(),
                    cares: cares.to_vec(),
                })
            })
            .collect();
        Ok(PackedLayer {
            neurons: raw.neurons,
            vector_len: raw.vector_len,
            words_per_vector: raw.words_per_vector,
            rows,
            dont_care_counts: Arc::new(raw.dont_care_counts),
        })
    }
}

// Written against the vendored serde stand-in's `from_value` trait; with
// registry serde this collapses to `#[serde(try_from = "RawPackedLayer")]`
// on the struct (see vendor/README.md).
impl serde::Deserialize for PackedLayer {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let raw = RawPackedLayer::from_value(value)?;
        PackedLayer::validate_raw(raw).map_err(serde::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsom::BSomConfig;
    use crate::som_trait::SelfOrganizingMap;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBA7C4ED)
    }

    #[test]
    fn from_neurons_validates_shapes() {
        assert!(matches!(
            PackedLayer::from_neurons(&[]),
            Err(SomError::EmptyConfiguration { .. })
        ));
        let bad = [TriStateVector::zeros(8), TriStateVector::zeros(9)];
        assert!(matches!(
            PackedLayer::from_neurons(&bad),
            Err(SomError::InputLengthMismatch {
                expected: 8,
                actual: 9
            })
        ));
    }

    #[test]
    fn packed_distances_match_scalar_distances() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::paper_default(), &mut r);
        let layer = PackedLayer::from_som(&som);
        assert_eq!(layer.neuron_count(), 40);
        assert_eq!(layer.vector_len(), 768);
        assert_eq!(layer.word_row_count(), 12);
        for _ in 0..10 {
            let input = BinaryVector::random(768, &mut r);
            let scalar = som.distances(&input).unwrap();
            let packed = layer.distances(&input).unwrap();
            for (s, p) in scalar.iter().zip(&packed) {
                assert_eq!(*s, *p as f64);
            }
        }
    }

    #[test]
    fn packed_winner_matches_scalar_winner_after_training() {
        let mut r = rng();
        let mut som = BSom::new(BSomConfig::new(16, 96), &mut r);
        let data: Vec<BinaryVector> = (0..8).map(|_| BinaryVector::random(96, &mut r)).collect();
        som.train(&data, crate::TrainSchedule::new(30), &mut r)
            .unwrap();
        let layer = PackedLayer::from_som(&som);
        for input in &data {
            let scalar = som.winner(input).unwrap();
            let packed = layer.winner(input).unwrap();
            assert_eq!(packed.index, scalar.index);
            assert_eq!(packed.distance as f64, scalar.distance);
        }
    }

    #[test]
    fn tie_break_prefers_specific_then_low_address() {
        // Neuron 0 is all-#: distance 0 everywhere but maximally unspecific.
        // Neuron 1 exactly matches the input: distance 0 and fully concrete.
        let weights = [
            TriStateVector::from_str("####").unwrap(),
            TriStateVector::from_str("1010").unwrap(),
            TriStateVector::from_str("1010").unwrap(),
        ];
        let layer = PackedLayer::from_neurons(&weights).unwrap();
        let w = layer
            .winner(&BinaryVector::from_bit_str("1010").unwrap())
            .unwrap();
        assert_eq!(w.index, 1, "specificity beats the all-# neuron");
        assert_eq!(w.distance, 0);
        assert_eq!(w.dont_care_count, 0);
    }

    #[test]
    fn wrong_length_input_errors() {
        let layer = PackedLayer::from_neurons(&[TriStateVector::zeros(16)]).unwrap();
        assert!(matches!(
            layer.winner(&BinaryVector::zeros(8)),
            Err(SomError::InputLengthMismatch {
                expected: 16,
                actual: 8
            })
        ));
        assert!(layer.winners(&[BinaryVector::zeros(8)]).is_err());
    }

    #[test]
    fn winners_batch_matches_individual_calls() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(12, 128), &mut r);
        let layer = PackedLayer::from_som(&som);
        let inputs: Vec<BinaryVector> = (0..6).map(|_| BinaryVector::random(128, &mut r)).collect();
        let batch = layer.winners(&inputs).unwrap();
        for (input, batched) in inputs.iter().zip(&batch) {
            assert_eq!(*batched, layer.winner(input).unwrap());
        }
    }

    #[test]
    fn clone_shares_every_row() {
        let mut r = rng();
        let layer = PackedLayer::from_som(&BSom::new(BSomConfig::new(8, 192), &mut r));
        let snapshot = layer.clone();
        assert_eq!(snapshot.shared_row_count(&layer), layer.word_row_count());
        assert!(snapshot.shares_counts_with(&layer));
        assert_eq!(snapshot, layer);
    }

    #[test]
    fn neuron_update_unshares_only_touched_rows() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(8, 192), &mut r);
        let mut layer = PackedLayer::from_som(&som);
        let snapshot = layer.clone();

        // A no-op rewrite (same weight) must leave every row shared.
        let mut weight = TriStateVector::zeros(192);
        layer.copy_neuron_into(3, &mut weight);
        let count = layer.dont_care_counts()[3];
        layer.apply_neuron_update(3, &weight, count);
        assert_eq!(layer.shared_row_count(&snapshot), 3);
        assert!(layer.shares_counts_with(&snapshot));

        // Flip one trit in word 1 only: exactly that row must unshare.
        let old = weight.trit(70);
        weight.set(70, different_trit(old));
        layer.apply_neuron_update(3, &weight, weight.count_dont_care() as u32);
        assert_eq!(layer.shared_row_count(&snapshot), 2);
        assert!(std::sync::Arc::ptr_eq(&layer.rows[0], &snapshot.rows[0]));
        assert!(!std::sync::Arc::ptr_eq(&layer.rows[1], &snapshot.rows[1]));
        assert!(std::sync::Arc::ptr_eq(&layer.rows[2], &snapshot.rows[2]));
        // Still word-for-word correct after the copy-on-write.
        assert!(layer.neuron_matches(3, &weight));
    }

    fn different_trit(t: bsom_signature::Trit) -> bsom_signature::Trit {
        match t {
            bsom_signature::Trit::Zero => bsom_signature::Trit::One,
            _ => bsom_signature::Trit::Zero,
        }
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(4, 70), &mut r);
        let layer = PackedLayer::from_som(&som);
        let json = serde_json::to_string(&layer).unwrap();
        let back: PackedLayer = serde_json::from_str(&json).unwrap();
        assert_eq!(layer, back);
    }

    #[test]
    fn deserialize_rejects_inconsistent_snapshots() {
        let mut r = rng();
        let layer = PackedLayer::from_som(&BSom::new(BSomConfig::new(4, 70), &mut r));
        let json = serde_json::to_string(&layer).unwrap();

        // Structural tampering: wrong neuron count for the stored planes.
        let bad = json.replace("\"neurons\":4", "\"neurons\":5");
        assert!(serde_json::from_str::<PackedLayer>(&bad).is_err());

        // Empty layer.
        let empty = json
            .replace("\"neurons\":4", "\"neurons\":0")
            .replace("\"vector_len\":70", "\"vector_len\":0");
        assert!(serde_json::from_str::<PackedLayer>(&empty).is_err());

        // Wrong words_per_vector for the claimed vector_len.
        let skewed = json.replace("\"words_per_vector\":2", "\"words_per_vector\":3");
        assert!(serde_json::from_str::<PackedLayer>(&skewed).is_err());

        // #-count table not one-per-neuron.
        let counts = json.replace("\"dont_care_counts\":[0,0,0,0]", "\"dont_care_counts\":[0]");
        assert_ne!(counts, json, "fixture must actually tamper the counts");
        assert!(serde_json::from_str::<PackedLayer>(&counts).is_err());
    }

    #[test]
    fn deserialize_rejects_set_tail_bits() {
        // 70-bit vectors leave 58 tail bits in the second word; phantom trits
        // there would corrupt every popcount. All-# layer except for a care
        // tail word with every bit set.
        let good = r#"{"neurons":1,"vector_len":70,"words_per_vector":2,
            "values":[0,0],"cares":[0,0],"dont_care_counts":[70]}"#;
        assert!(serde_json::from_str::<PackedLayer>(good).is_ok());
        let bad = good.replace("\"cares\":[0,0]", "\"cares\":[0,18446744073709551615]");
        assert!(serde_json::from_str::<PackedLayer>(&bad).is_err());
    }
}
