//! The conventional Kohonen SOM (cSOM) baseline.
//!
//! Table I of the paper benchmarks the bSOM against "the conventional SOM
//! (cSOM) originally proposed by Kohonen". The cSOM here follows the textbook
//! formulation: real-valued weight vectors, Euclidean distance, and the
//! update `w ← w + α(t) · h(j, winner, t) · (x − w)` with a decaying learning
//! rate and shrinking neighbourhood. The binary signatures are presented as
//! vectors of 0.0/1.0 so both maps consume exactly the same data.

use bsom_signature::BinaryVector;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SomError;
use crate::schedule::TrainSchedule;
use crate::som_trait::{line_neighbourhood, SelfOrganizingMap, Winner};

/// The neighbourhood kernel `h(j, winner, t)` used by the cSOM update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum NeighbourhoodKernel {
    /// `h = 1` for every neuron within the radius, 0 outside ("bubble"
    /// kernel). This matches the hard neighbourhood window of the paper's
    /// FPGA design and is the default.
    #[default]
    Bubble,
    /// `h = exp(-d² / (2·radius²))` where `d` is the index distance to the
    /// winner. A softer pull used in most software SOMs.
    Gaussian,
}

/// Configuration for a [`CSom`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CSomConfig {
    /// Number of neurons in the competitive layer.
    pub neurons: usize,
    /// Length of the weight vectors / expected input length.
    pub vector_len: usize,
    /// Neighbourhood kernel.
    pub kernel: NeighbourhoodKernel,
}

impl CSomConfig {
    /// Creates a configuration with the given shape and the default kernel.
    pub fn new(neurons: usize, vector_len: usize) -> Self {
        CSomConfig {
            neurons,
            vector_len,
            kernel: NeighbourhoodKernel::default(),
        }
    }

    /// The configuration used against the paper's Table I: 40 neurons ×
    /// 768-dimensional weights.
    pub fn paper_default() -> Self {
        CSomConfig::new(40, 768)
    }

    /// Overrides the neighbourhood kernel.
    pub fn with_kernel(mut self, kernel: NeighbourhoodKernel) -> Self {
        self.kernel = kernel;
        self
    }
}

impl Default for CSomConfig {
    fn default() -> Self {
        CSomConfig::paper_default()
    }
}

/// The conventional real-valued Kohonen SOM.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::BinaryVector;
/// use bsom_som::{CSom, CSomConfig, SelfOrganizingMap, TrainSchedule};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), bsom_som::SomError> {
/// let mut rng = StdRng::seed_from_u64(5);
/// let mut som = CSom::new(CSomConfig::new(8, 64), &mut rng);
/// let pattern = BinaryVector::random(64, &mut rng);
/// som.train(std::slice::from_ref(&pattern), TrainSchedule::new(200), &mut rng)?;
/// let winner = som.winner(&pattern)?;
/// assert!(winner.distance < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CSom {
    config: CSomConfig,
    /// Weight vectors, `neurons × vector_len`, stored row-major.
    weights: Vec<Vec<f64>>,
}

impl CSom {
    /// Creates a cSOM with weights initialised uniformly at random in
    /// `[0, 1]`, the same range the 0/1 inputs occupy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero neurons or a zero vector length;
    /// use [`CSom::try_new`] for a fallible constructor.
    pub fn new<R: Rng + ?Sized>(config: CSomConfig, rng: &mut R) -> Self {
        Self::try_new(config, rng).expect("cSOM configuration must be non-empty")
    }

    /// Fallible counterpart of [`CSom::new`].
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyConfiguration`] if `config.neurons` or
    /// `config.vector_len` is zero.
    pub fn try_new<R: Rng + ?Sized>(config: CSomConfig, rng: &mut R) -> Result<Self, SomError> {
        if config.neurons == 0 || config.vector_len == 0 {
            return Err(SomError::EmptyConfiguration {
                neurons: config.neurons,
                vector_len: config.vector_len,
            });
        }
        let weights = (0..config.neurons)
            .map(|_| (0..config.vector_len).map(|_| rng.gen::<f64>()).collect())
            .collect();
        Ok(CSom { config, weights })
    }

    /// Creates a cSOM from explicit weight vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyConfiguration`] for an empty weight list and
    /// [`SomError::InputLengthMismatch`] if row lengths are inconsistent.
    pub fn from_weights(weights: Vec<Vec<f64>>) -> Result<Self, SomError> {
        let vector_len = weights.first().map(Vec::len).unwrap_or(0);
        if weights.is_empty() || vector_len == 0 {
            return Err(SomError::EmptyConfiguration {
                neurons: weights.len(),
                vector_len,
            });
        }
        if let Some(bad) = weights.iter().find(|w| w.len() != vector_len) {
            return Err(SomError::InputLengthMismatch {
                expected: vector_len,
                actual: bad.len(),
            });
        }
        let config = CSomConfig::new(weights.len(), vector_len);
        Ok(CSom { config, weights })
    }

    /// The map's configuration.
    pub fn config(&self) -> &CSomConfig {
        &self.config
    }

    /// The weight vector of neuron `index`.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::NeuronOutOfRange`] for an invalid index.
    pub fn neuron(&self, index: usize) -> Result<&[f64], SomError> {
        self.weights
            .get(index)
            .map(Vec::as_slice)
            .ok_or(SomError::NeuronOutOfRange {
                index,
                neurons: self.weights.len(),
            })
    }

    /// All weight vectors in neuron order.
    pub fn weights(&self) -> &[Vec<f64>] {
        &self.weights
    }

    /// Converts a binary input to the 0.0/1.0 vector the real-valued map
    /// works in. Done once per query so the 40-neuron scans below stay in
    /// flat float loops.
    fn input_to_floats(input: &BinaryVector) -> Vec<f64> {
        input.iter().map(|b| if b { 1.0 } else { 0.0 }).collect()
    }

    /// Squared Euclidean distance between a weight vector and a pre-converted
    /// input.
    fn distance_sq(weight: &[f64], input: &[f64]) -> f64 {
        weight
            .iter()
            .zip(input)
            .map(|(w, x)| (w - x) * (w - x))
            .sum()
    }

    fn check_input(&self, input: &BinaryVector) -> Result<(), SomError> {
        if input.len() != self.config.vector_len {
            return Err(SomError::InputLengthMismatch {
                expected: self.config.vector_len,
                actual: input.len(),
            });
        }
        Ok(())
    }
}

impl SelfOrganizingMap for CSom {
    fn neuron_count(&self) -> usize {
        self.config.neurons
    }

    fn vector_len(&self) -> usize {
        self.config.vector_len
    }

    fn winner(&self, input: &BinaryVector) -> Result<Winner, SomError> {
        self.check_input(input)?;
        let floats = Self::input_to_floats(input);
        let mut best = Winner::new(0, f64::INFINITY);
        for (i, w) in self.weights.iter().enumerate() {
            let d = Self::distance_sq(w, &floats).sqrt();
            if d < best.distance {
                best = Winner::new(i, d);
            }
        }
        Ok(best)
    }

    fn train_step(
        &mut self,
        input: &BinaryVector,
        t: usize,
        schedule: &TrainSchedule,
    ) -> Result<Winner, SomError> {
        let winner = self.winner(input)?;
        let floats = Self::input_to_floats(input);
        let radius = schedule.radius_at(t);
        let alpha = schedule.learning_rate_at(t);
        let neighbourhood = line_neighbourhood(winner.index, radius, self.config.neurons);
        for idx in neighbourhood {
            let h = match self.config.kernel {
                NeighbourhoodKernel::Bubble => 1.0,
                NeighbourhoodKernel::Gaussian => {
                    let d = idx.abs_diff(winner.index) as f64;
                    let r = radius.max(1) as f64;
                    (-(d * d) / (2.0 * r * r)).exp()
                }
            };
            let rate = alpha * h;
            let weight = &mut self.weights[idx];
            for (w, x) in weight.iter_mut().zip(&floats) {
                *w += rate * (x - *w);
            }
        }
        Ok(winner)
    }

    fn distances(&self, input: &BinaryVector) -> Result<Vec<f64>, SomError> {
        self.check_input(input)?;
        let floats = Self::input_to_floats(input);
        Ok(self
            .weights
            .iter()
            .map(|w| Self::distance_sq(w, &floats).sqrt())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC50A)
    }

    #[test]
    fn paper_default_shape() {
        let c = CSomConfig::paper_default();
        assert_eq!(c.neurons, 40);
        assert_eq!(c.vector_len, 768);
        assert_eq!(CSomConfig::default(), c);
    }

    #[test]
    fn new_initialises_weights_in_unit_interval() {
        let som = CSom::new(CSomConfig::new(10, 32), &mut rng());
        for w in som.weights() {
            assert!(w.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
        assert_eq!(som.neuron_count(), 10);
        assert_eq!(som.vector_len(), 32);
    }

    #[test]
    fn try_new_rejects_empty_configurations() {
        assert!(CSom::try_new(CSomConfig::new(0, 32), &mut rng()).is_err());
        assert!(CSom::try_new(CSomConfig::new(8, 0), &mut rng()).is_err());
    }

    #[test]
    fn from_weights_validates() {
        assert!(CSom::from_weights(vec![vec![0.0; 4], vec![0.0; 4]]).is_ok());
        assert!(CSom::from_weights(vec![vec![0.0; 4], vec![0.0; 5]]).is_err());
        assert!(CSom::from_weights(Vec::new()).is_err());
    }

    #[test]
    fn winner_prefers_exact_prototype() {
        let weights = vec![vec![1.0, 1.0, 0.0, 0.0], vec![0.0, 0.0, 1.0, 1.0]];
        let som = CSom::from_weights(weights).unwrap();
        let w = som
            .winner(&BinaryVector::from_bit_str("0011").unwrap())
            .unwrap();
        assert_eq!(w.index, 1);
        assert!(w.distance < 1e-9);
    }

    #[test]
    fn winner_rejects_wrong_length() {
        let som = CSom::new(CSomConfig::new(4, 16), &mut rng());
        assert!(som.winner(&BinaryVector::zeros(8)).is_err());
        assert!(som.distances(&BinaryVector::zeros(8)).is_err());
    }

    #[test]
    fn training_moves_winner_towards_pattern() {
        let mut r = rng();
        let mut som = CSom::new(CSomConfig::new(8, 64), &mut r);
        let pattern = BinaryVector::random(64, &mut r);
        let before = som.winner(&pattern).unwrap().distance;
        som.train(
            std::slice::from_ref(&pattern),
            TrainSchedule::new(100),
            &mut r,
        )
        .unwrap();
        let after = som.winner(&pattern).unwrap().distance;
        assert!(
            after < before,
            "distance should shrink: {before} -> {after}"
        );
        assert!(after < 1.0);
    }

    #[test]
    fn training_two_patterns_separates_them() {
        let mut r = rng();
        let a = BinaryVector::from_bits((0..64).map(|i| i < 32));
        let b = BinaryVector::from_bits((0..64).map(|i| i >= 32));
        let mut som = CSom::new(CSomConfig::new(8, 64), &mut r);
        som.train(&[a.clone(), b.clone()], TrainSchedule::new(400), &mut r)
            .unwrap();
        let wa = som.winner(&a).unwrap();
        let wb = som.winner(&b).unwrap();
        assert_ne!(wa.index, wb.index);
        assert!(wa.distance < 2.0);
        assert!(wb.distance < 2.0);
    }

    #[test]
    fn gaussian_kernel_updates_neighbours_less_than_winner() {
        // Start every neuron from identical weights so that the per-neuron
        // movement is proportional to the kernel value alone.
        let mut r = rng();
        let config = CSomConfig::new(9, 32).with_kernel(NeighbourhoodKernel::Gaussian);
        let mut som = CSom::new(config, &mut r);
        som.weights = vec![vec![0.5; 32]; 9];
        let input = BinaryVector::ones(32);
        let before = som.weights().to_vec();
        let w = som.train_step(&input, 0, &TrainSchedule::new(1)).unwrap();
        // Movement of a neuron = L1 change of its weights.
        let movement: Vec<f64> = before
            .iter()
            .zip(som.weights())
            .map(|(b, a)| b.iter().zip(a).map(|(x, y)| (x - y).abs()).sum())
            .collect();
        let neighbours = line_neighbourhood(w.index, 4, 9);
        for &n in &neighbours {
            if n != w.index {
                assert!(
                    movement[n] < movement[w.index],
                    "neighbour {n} should move strictly less than winner {}",
                    w.index
                );
            }
        }
    }

    #[test]
    fn empty_training_set_errors() {
        let mut r = rng();
        let mut som = CSom::new(CSomConfig::new(4, 16), &mut r);
        let empty: Vec<BinaryVector> = Vec::new();
        assert_eq!(
            som.train(&empty, TrainSchedule::new(5), &mut r),
            Err(SomError::EmptyTrainingSet)
        );
    }

    #[test]
    fn distances_consistent_with_winner() {
        let mut r = rng();
        let som = CSom::new(CSomConfig::new(12, 48), &mut r);
        let input = BinaryVector::random(48, &mut r);
        let dists = som.distances(&input).unwrap();
        let w = som.winner(&input).unwrap();
        let min = dists.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((w.distance - min).abs() < 1e-12);
    }

    #[test]
    fn neuron_accessor_bounds() {
        let som = CSom::new(CSomConfig::new(3, 8), &mut rng());
        assert!(som.neuron(2).is_ok());
        assert!(som.neuron(3).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        // JSON serialisation of f64 is not exact to the last bit, so compare
        // the configuration exactly and the weights within a tolerance.
        let som = CSom::new(CSomConfig::new(4, 16), &mut rng());
        let json = serde_json::to_string(&som).unwrap();
        let back: CSom = serde_json::from_str(&json).unwrap();
        assert_eq!(som.config(), back.config());
        for (a, b) in som.weights().iter().zip(back.weights()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
