//! The common interface shared by the bSOM and the cSOM baseline.
//!
//! The paper evaluates both maps with exactly the same protocol: train on
//! labelled binary signatures, label the neurons by win frequency, classify
//! the test set by nearest neuron. [`SelfOrganizingMap`] captures the part of
//! that protocol that depends on the map; the labelling and evaluation code
//! in [`crate::labeling`] and [`crate::classifier`] is generic over it.

use bsom_signature::BinaryVector;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SomError;
use crate::labeling::ObjectLabel;
use crate::schedule::TrainSchedule;

/// The winning neuron of a winner-take-all competition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Winner {
    /// Index of the winning neuron.
    pub index: usize,
    /// Distance from the input to the winning neuron. For the bSOM this is
    /// the #-aware Hamming distance (an integer); for the cSOM it is the
    /// Euclidean distance. Both are exposed as `f64` so the labelling and
    /// threshold logic can treat the maps uniformly.
    pub distance: f64,
}

impl Winner {
    /// Creates a winner record.
    pub fn new(index: usize, distance: f64) -> Self {
        Winner { index, distance }
    }
}

/// A self-organizing map trained on binary signatures.
///
/// Both [`crate::BSom`] and [`crate::CSom`] implement this trait; the
/// trait-object form is used by the evaluation harness so experiments can be
/// written once and run against either map.
pub trait SelfOrganizingMap {
    /// Number of neurons in the competitive layer.
    fn neuron_count(&self) -> usize;

    /// Length of the weight vectors / expected input length.
    fn vector_len(&self) -> usize;

    /// Finds the neuron nearest to `input` (winner-take-all). Ties are broken
    /// towards the lower neuron index, matching the FPGA comparator tree.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] if the input length differs
    /// from [`vector_len`](Self::vector_len).
    fn winner(&self, input: &BinaryVector) -> Result<Winner, SomError>;

    /// Performs one training update: find the winner for `input` and update
    /// it together with its neighbourhood, whose radius is derived from the
    /// schedule at iteration `t` of `schedule.iterations` (an *iteration* is
    /// one full pass over the training set; see [`TrainSchedule`]).
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] if the input length differs
    /// from [`vector_len`](Self::vector_len).
    fn train_step(
        &mut self,
        input: &BinaryVector,
        t: usize,
        schedule: &TrainSchedule,
    ) -> Result<Winner, SomError>;

    /// Trains the map for `schedule.iterations` iterations, where one
    /// iteration presents every pattern of `data` once in a freshly shuffled
    /// order — the epoch-style training loop implied by the paper's Table I
    /// iteration budgets (10–500 over 2,248 signatures).
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyTrainingSet`] when `data` is empty, or
    /// propagates [`SomError::InputLengthMismatch`] from the first
    /// mismatched pattern.
    fn train<R: Rng + ?Sized>(
        &mut self,
        data: &[BinaryVector],
        schedule: TrainSchedule,
        rng: &mut R,
    ) -> Result<(), SomError>
    where
        Self: Sized,
    {
        if data.is_empty() {
            return Err(SomError::EmptyTrainingSet);
        }
        let mut order: Vec<usize> = (0..data.len()).collect();
        for t in 0..schedule.iterations {
            shuffle(&mut order, rng);
            for &idx in &order {
                self.train_step(&data[idx], t, &schedule)?;
            }
        }
        Ok(())
    }

    /// Convenience wrapper over [`train`](Self::train) for labelled datasets
    /// of `(signature, label)` pairs; the labels are ignored during training
    /// (the SOM itself is unsupervised) but this keeps call sites tidy.
    ///
    /// # Errors
    ///
    /// As for [`train`](Self::train).
    fn train_labelled_data<R: Rng + ?Sized>(
        &mut self,
        data: &[(BinaryVector, ObjectLabel)],
        schedule: TrainSchedule,
        rng: &mut R,
    ) -> Result<(), SomError>
    where
        Self: Sized,
    {
        if data.is_empty() {
            return Err(SomError::EmptyTrainingSet);
        }
        let mut order: Vec<usize> = (0..data.len()).collect();
        for t in 0..schedule.iterations {
            shuffle(&mut order, rng);
            for &idx in &order {
                self.train_step(&data[idx].0, t, &schedule)?;
            }
        }
        Ok(())
    }

    /// Distances from `input` to every neuron, in neuron order. Used by the
    /// FPGA equivalence tests and by diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::InputLengthMismatch`] if the input length differs
    /// from [`vector_len`](Self::vector_len).
    fn distances(&self, input: &BinaryVector) -> Result<Vec<f64>, SomError>;
}

/// Fisher–Yates shuffle, used to reorder the training set every epoch.
///
/// Public so that external epoch loops (e.g. `bsom-engine`'s `TrainEngine`)
/// reorder exactly like [`SelfOrganizingMap::train`] — one `gen_range` per
/// swap, highest index first — and stay bit-compatible with it for a given
/// RNG stream.
pub fn shuffle<R: Rng + ?Sized, T>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Indices of the neurons within `radius` of `winner` on the 1-D line
/// topology used by both maps (paper §V-D: the neighbourhood is a contiguous
/// run of neuron addresses around the winner).
///
/// The winner itself is always included. The line does not wrap: neurons near
/// the ends have asymmetric neighbourhoods, matching a straightforward
/// hardware address-window implementation.
pub fn line_neighbourhood(winner: usize, radius: usize, neuron_count: usize) -> Vec<usize> {
    let lo = winner.saturating_sub(radius);
    let hi = (winner + radius).min(neuron_count.saturating_sub(1));
    (lo..=hi).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_neighbourhood_centre() {
        assert_eq!(line_neighbourhood(5, 2, 40), vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn line_neighbourhood_clamps_at_edges() {
        assert_eq!(line_neighbourhood(0, 3, 40), vec![0, 1, 2, 3]);
        assert_eq!(line_neighbourhood(39, 3, 40), vec![36, 37, 38, 39]);
    }

    #[test]
    fn line_neighbourhood_radius_zero_is_winner_only() {
        assert_eq!(line_neighbourhood(7, 0, 40), vec![7]);
    }

    #[test]
    fn line_neighbourhood_large_radius_covers_whole_map() {
        assert_eq!(line_neighbourhood(20, 100, 40).len(), 40);
    }

    #[test]
    fn line_neighbourhood_single_neuron_map() {
        assert_eq!(line_neighbourhood(0, 4, 1), vec![0]);
    }

    #[test]
    fn winner_constructor() {
        let w = Winner::new(3, 12.0);
        assert_eq!(w.index, 3);
        assert_eq!(w.distance, 12.0);
    }
}
