//! Error types for the SOM crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or training self-organizing maps.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SomError {
    /// An input vector's length did not match the map's configured vector
    /// length.
    InputLengthMismatch {
        /// Length the map expects.
        expected: usize,
        /// Length of the offending input.
        actual: usize,
    },
    /// The map was configured with zero neurons or a zero-length weight
    /// vector.
    EmptyConfiguration {
        /// Number of neurons requested.
        neurons: usize,
        /// Weight-vector length requested.
        vector_len: usize,
    },
    /// Training was requested with an empty dataset.
    EmptyTrainingSet,
    /// A neuron index was out of range.
    NeuronOutOfRange {
        /// The offending neuron index.
        index: usize,
        /// Number of neurons in the map.
        neurons: usize,
    },
}

impl fmt::Display for SomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SomError::InputLengthMismatch { expected, actual } => {
                write!(f, "input of length {actual} does not match map vector length {expected}")
            }
            SomError::EmptyConfiguration {
                neurons,
                vector_len,
            } => write!(
                f,
                "map configuration must be non-empty (neurons = {neurons}, vector length = {vector_len})"
            ),
            SomError::EmptyTrainingSet => write!(f, "training set is empty"),
            SomError::NeuronOutOfRange { index, neurons } => {
                write!(f, "neuron index {index} out of range for {neurons} neurons")
            }
        }
    }
}

impl Error for SomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty() {
        let errors = [
            SomError::InputLengthMismatch {
                expected: 768,
                actual: 10,
            },
            SomError::EmptyConfiguration {
                neurons: 0,
                vector_len: 768,
            },
            SomError::EmptyTrainingSet,
            SomError::NeuronOutOfRange {
                index: 41,
                neurons: 40,
            },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SomError>();
    }
}
