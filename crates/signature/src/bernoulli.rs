//! Integer-threshold Bernoulli coins and bit-sliced Bernoulli mask words.
//!
//! The bSOM's stochastic update rule damps every weight change with a coin
//! flip — in hardware one AND against an LFSR bit stream. The original
//! software port paid **one RNG advance plus an `f64` multiply/divide per
//! bit**; this module removes both costs:
//!
//! * [`CoinThreshold`] turns a probability into a precomputed 64-bit integer
//!   threshold once, so each remaining scalar coin is a single xorshift64*
//!   advance and an integer comparison — no floating point in the hot loop.
//! * [`MaskPlan`] generates *whole 64-bit Bernoulli mask words*: 64
//!   independent coin flips per draw sequence. For dyadic probabilities
//!   (1/2, 1/4, 3/4, …) one or two RNG draws yield all 64 flips; arbitrary
//!   probabilities use a **bit-slicing ladder** over the binary expansion of
//!   `p` (truncated at [`MASK_DEPTH`] digits), so the amortised cost is at
//!   most `MASK_DEPTH / 64` draws per flip instead of one draw per flip.
//!
//! ## The bit-slicing ladder
//!
//! Write `p = 0.b₁b₂…b_k` in binary. Using the Horner identity
//! `p = (b₁ + p′) / 2` with `p′ = 0.b₂b₃…`, a mask word `M` with
//! per-bit probability `p` is built from uniformly random words `R` by
//! folding the digits from least to most significant:
//!
//! ```text
//! M ← 0
//! for i = k down to 1:
//!     M ← R_i | M   if b_i = 1      (P[bit] becomes (1 + p_prev) / 2)
//!     M ← R_i & M   if b_i = 0      (P[bit] becomes      p_prev / 2)
//! ```
//!
//! Each lane of the word runs through an independent copy of the same
//! computation, so the 64 flips of one mask are mutually independent (to the
//! quality of the underlying generator). Trailing zero digits are trimmed —
//! they would AND against a probability-0 mask — so short expansions cost
//! few draws: `p = 0.5` costs exactly one.
//!
//! ## One stream, many neurons: the neighbourhood broadcast
//!
//! The paper's FPGA has a *single* update circuit; its Bernoulli bit stream
//! is broadcast to every neuron in the winner's neighbourhood address window
//! and each neuron merely gates the stream on or off. The software analogue
//! is [`draw_broadcast_masks`]: **one** ladder draw sequence per 64-bit word
//! index yields the relax/commit mask pair shared by the whole window, and
//! [`gate_word`] supplies the per-neuron enable line — an AND against the
//! all-ones or all-zero word, which is exactly the degenerate rung of the
//! bit-slicing ladder (scaling the per-bit probability by 1 or 0; ANDing a
//! fresh uniform word instead would halve it, the hook for fractional
//! per-neuron rates). The RNG cost of an update is therefore per *window*,
//! not per neuron — `bsom_som`'s plane-sliced neighbourhood update applies
//! the shared pair to a run of packed column words in one pass.
//!
//! All functions here advance an explicit `&mut u64` xorshift64* state (the
//! software analogue of the FPGA's LFSR) rather than owning the generator,
//! so callers like `bsom_som::BSom` can keep the state serialized alongside
//! the weights and stay deterministic per construction seed.
//!
//! ```rust
//! use bsom_signature::bernoulli::{draw_broadcast_masks, gate_word, MaskPlan};
//!
//! // The 0.3/0.3 paper default: relax and commit share one compiled plan,
//! // so the broadcast pair costs a single ladder sequence per word index —
//! // regardless of how many neurons sit in the neighbourhood window.
//! let plan = MaskPlan::from_probability(0.3);
//! let mut state = 0xB50A_u64;
//! let masks = draw_broadcast_masks(&plan, &plan, true, true, &mut state);
//! assert_eq!(masks.relax, masks.commit, "equal plans share one draw");
//!
//! // Per-neuron gating: an enabled neuron sees the stream, a disabled one
//! // sees probability zero.
//! assert_eq!(masks.commit & gate_word(true), masks.commit);
//! assert_eq!(masks.commit & gate_word(false), 0);
//! ```

/// Number of binary digits of `p` a [`MaskPlan`] keeps.
///
/// Probabilities are quantised to multiples of 2⁻¹⁶, an absolute bias below
/// `7.7e-6` — far under anything observable in a SOM training run (the
/// update probabilities damp convergence speed, they are not decision
/// boundaries) — while capping the ladder at 16 draws per 64 flips (0.25
/// draws per flip worst case, usually far fewer). The scalar
/// [`CoinThreshold`] path keeps full 64-bit resolution; only whole-word
/// masks are quantised.
pub const MASK_DEPTH: u32 = 16;

/// Advances an xorshift64* state and returns the next scrambled 64-bit word.
///
/// The state must be non-zero (xorshift has an all-zero fixed point);
/// callers seed it with `seed | 1` or similar. The multiplicative scrambler
/// is the standard xorshift64* constant.
#[inline]
pub fn next_word(state: &mut u64) -> u64 {
    debug_assert_ne!(*state, 0, "xorshift64* state must be non-zero");
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// A precomputed integer acceptance threshold for a Bernoulli(p) coin.
///
/// `Below(t)` accepts when the next RNG word is `< t`, i.e. with probability
/// `t / 2⁶⁴`. The degenerate probabilities 0 and 1 are their own variants
/// and — deliberately — **do not advance the RNG state**, matching the
/// behaviour of the whole-word [`MaskPlan`] path so the two stay
/// bit-identical for p ∈ {0, 1}.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::bernoulli::CoinThreshold;
///
/// let mut state = 0x1234_5678_9ABC_DEF1_u64;
/// let coin = CoinThreshold::from_probability(0.3);
/// let mut heads = 0usize;
/// for _ in 0..10_000 {
///     if coin.flip(&mut state) {
///         heads += 1;
///     }
/// }
/// // Binomial(10_000, 0.3): far outside [2600, 3400] is astronomically unlikely.
/// assert!(heads > 2600 && heads < 3400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinThreshold {
    /// Probability 0: never accepts, never consumes randomness.
    Never,
    /// Probability 1: always accepts, never consumes randomness.
    Always,
    /// Accepts when the next RNG word compares below the threshold.
    Below(u64),
}

impl CoinThreshold {
    /// Builds the threshold for probability `p`, clamping to `[0, 1]`.
    ///
    /// Probabilities below 2⁻⁶⁴ collapse to [`CoinThreshold::Never`] — they
    /// are beneath the resolution of a 64-bit comparison anyway.
    pub fn from_probability(p: f64) -> Self {
        if p <= 0.0 {
            return CoinThreshold::Never;
        }
        if p >= 1.0 {
            return CoinThreshold::Always;
        }
        // 2^64 as f64; the cast saturates, and p < 1 keeps it below u64::MAX.
        let threshold = (p * 18_446_744_073_709_551_616.0) as u64;
        if threshold == 0 {
            CoinThreshold::Never
        } else {
            CoinThreshold::Below(threshold)
        }
    }

    /// Flips the coin, advancing `state` only for non-degenerate
    /// probabilities.
    #[inline]
    pub fn flip(self, state: &mut u64) -> bool {
        match self {
            CoinThreshold::Never => false,
            CoinThreshold::Always => true,
            CoinThreshold::Below(threshold) => next_word(state) < threshold,
        }
    }

    /// The exact probability the threshold encodes.
    pub fn probability(self) -> f64 {
        match self {
            CoinThreshold::Never => 0.0,
            CoinThreshold::Always => 1.0,
            CoinThreshold::Below(threshold) => threshold as f64 / 18_446_744_073_709_551_616.0,
        }
    }
}

/// How a [`MaskPlan`] produces its mask words.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PlanKind {
    /// Probability 0: the zero mask, no draws.
    Never,
    /// Probability 1: the all-ones mask, no draws.
    Always,
    /// The bit-slicing ladder over the binary digits of `p`
    /// (`digits[i]` is the 2^-(i+1) digit, trailing zeros trimmed).
    Ladder(Vec<bool>),
}

/// A precompiled plan for drawing 64-bit Bernoulli(p) mask words.
///
/// Compile once per probability (e.g. per training configuration), then call
/// [`draw`](MaskPlan::draw) once per 64-bit weight word — every set bit of
/// the result is an independent accepted coin.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::bernoulli::MaskPlan;
///
/// // A dyadic probability compiles to a single-draw ladder.
/// let half = MaskPlan::from_probability(0.5);
/// assert_eq!(half.draws_per_word(), 1);
///
/// let mut state = 0x9E37_79B9_7F4A_7C15_u64;
/// let mut ones = 0u32;
/// for _ in 0..1_000 {
///     ones += half.draw(&mut state).count_ones();
/// }
/// // Binomial(64_000, 0.5): ±2_000 around the mean is an astronomically safe band.
/// assert!(ones > 30_000 && ones < 34_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskPlan {
    kind: PlanKind,
    /// Numerator of the quantised probability over 2^MASK_DEPTH.
    numerator: u64,
}

impl MaskPlan {
    /// Compiles the ladder for probability `p`, clamping to `[0, 1]` and
    /// quantising to a multiple of 2^-[`MASK_DEPTH`].
    pub fn from_probability(p: f64) -> Self {
        let scale = (1u64 << MASK_DEPTH) as f64;
        let numerator = if p <= 0.0 {
            0
        } else if p >= 1.0 {
            1u64 << MASK_DEPTH
        } else {
            ((p * scale).round() as u64).min(1u64 << MASK_DEPTH)
        };
        let kind = if numerator == 0 {
            PlanKind::Never
        } else if numerator == 1u64 << MASK_DEPTH {
            PlanKind::Always
        } else {
            // digits[i] is the 2^-(i+1) digit of p; trim the trailing zeros
            // (they would AND against a probability-0 mask: a wasted draw).
            let mut digits: Vec<bool> = (0..MASK_DEPTH)
                .map(|i| (numerator >> (MASK_DEPTH - 1 - i)) & 1 == 1)
                .collect();
            while digits.last() == Some(&false) {
                digits.pop();
            }
            PlanKind::Ladder(digits)
        };
        MaskPlan { kind, numerator }
    }

    /// The plan that never sets a bit (probability 0), free of draws.
    pub fn never() -> Self {
        MaskPlan {
            kind: PlanKind::Never,
            numerator: 0,
        }
    }

    /// The quantised probability the plan actually realises.
    pub fn probability(&self) -> f64 {
        self.numerator as f64 / (1u64 << MASK_DEPTH) as f64
    }

    /// Number of RNG words one [`draw`](MaskPlan::draw) consumes.
    pub fn draws_per_word(&self) -> usize {
        match &self.kind {
            PlanKind::Never | PlanKind::Always => 0,
            PlanKind::Ladder(digits) => digits.len(),
        }
    }

    /// Draws one mask word: each of the 64 bits is independently set with
    /// the plan's probability. Degenerate plans return `0` / `!0` without
    /// advancing the state.
    #[inline]
    pub fn draw(&self, state: &mut u64) -> u64 {
        match &self.kind {
            PlanKind::Never => 0,
            PlanKind::Always => u64::MAX,
            PlanKind::Ladder(digits) => {
                let mut mask = 0u64;
                for &digit in digits.iter().rev() {
                    let random = next_word(state);
                    mask = if digit { random | mask } else { random & mask };
                }
                mask
            }
        }
    }

    /// Draws `N` consecutive mask words — the lane-batched entry of the
    /// wide kernels (see [`crate::lanes`]).
    ///
    /// Lane `k` of the result is **exactly** the `k`-th sequential
    /// [`draw`](MaskPlan::draw): the ladder folds the same digits over the
    /// same xorshift64* words in the same order. This is a *contract*, not
    /// an implementation detail — the generator is a serial recurrence, so
    /// the only stream-preserving batching is sequential word-order
    /// drawing, and every wide lowering hoists its draws through this entry
    /// so the RNG stream is identical under every dispatch (pinned down by
    /// the `simd_equivalence` suite).
    #[inline]
    pub fn draw_lanes<const N: usize>(&self, state: &mut u64) -> [u64; N] {
        std::array::from_fn(|_| self.draw(state))
    }
}

/// The shared Bernoulli mask pair for one 64-bit word index of a
/// neighbourhood-broadcast update: the same two words are applied to every
/// neuron in the address window (each neuron additionally ANDs its own
/// [`gate_word`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BroadcastMasks {
    /// Mask gating concrete-mismatch → `#` relaxations.
    pub relax: u64,
    /// Mask gating `#` → input commits. **Not** lane-masked: callers AND the
    /// valid-lane mask of the final partial word themselves.
    pub commit: u64,
}

/// Draws the broadcast (relax, commit) mask pair for one word index,
/// advancing `state` only for the draws that are actually needed.
///
/// This is the single-update-circuit discipline of the FPGA made explicit:
///
/// * `needs_relax` / `needs_commit` report whether *any* neuron in the
///   window has a concrete mismatch / an undecided `#` lane in this word;
///   a transition nobody can take skips its ladder draws entirely, so the
///   RNG consumption is data-dependent but deterministic per state.
/// * When both transitions are needed and the two plans realise the same
///   probability (the 0.3/0.3 paper default), **one** draw serves both:
///   relax only ever reads lanes where the care bit is set and commit only
///   lanes where it is clear, so the applied decisions come from disjoint —
///   hence still independent — bits of the shared word.
///
/// The per-neuron word-parallel path (`TriStateVector::stochastic_update`)
/// and the plane-sliced window path draw through this same function, which
/// is what keeps them bit-identical whenever neither consumes randomness
/// (both probabilities 0 or 1).
#[inline]
pub fn draw_broadcast_masks(
    relax: &MaskPlan,
    commit: &MaskPlan,
    needs_relax: bool,
    needs_commit: bool,
    state: &mut u64,
) -> BroadcastMasks {
    if relax == commit && needs_relax && needs_commit {
        let shared = relax.draw(state);
        return BroadcastMasks {
            relax: shared,
            commit: shared,
        };
    }
    BroadcastMasks {
        relax: if needs_relax { relax.draw(state) } else { 0 },
        commit: if needs_commit { commit.draw(state) } else { 0 },
    }
}

/// Lane-batched [`draw_broadcast_masks`]: the mask pairs for `N`
/// consecutive word indices, given each word's (relax, commit) needs.
///
/// Word `k` draws exactly as the `k`-th sequential [`draw_broadcast_masks`]
/// call would — same shared-draw coalescing, same skip rules, same
/// word-order xorshift64* consumption — so a kernel that hoists `N` word
/// draws out of its wide loop consumes a stream identical to the
/// word-at-a-time walk (the RNG-stream identity the `simd_equivalence`
/// suite asserts across full train runs).
#[inline]
pub fn draw_broadcast_masks_lanes<const N: usize>(
    relax: &MaskPlan,
    commit: &MaskPlan,
    needs_relax: &[bool; N],
    needs_commit: &[bool; N],
    state: &mut u64,
) -> [BroadcastMasks; N] {
    std::array::from_fn(|k| {
        draw_broadcast_masks(relax, commit, needs_relax[k], needs_commit[k], state)
    })
}

/// The per-neuron gate of the broadcast update: all-ones for a neuron that
/// takes the shared stream, all-zero for one that ignores it.
///
/// ANDing a mask with a gate is the degenerate rung of the bit-slicing
/// ladder — it scales the per-bit probability by exactly 1 or 0 (an AND
/// against a fresh *uniform* word would scale it by ½ instead, which is how
/// fractional per-neuron rates would fold into the same datapath).
#[inline]
pub fn gate_word(enabled: bool) -> u64 {
    if enabled {
        u64::MAX
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_word_advances_and_scrambles() {
        let mut state = 1u64;
        let a = next_word(&mut state);
        let b = next_word(&mut state);
        assert_ne!(a, b);
        assert_ne!(state, 1);
        // Deterministic for a fixed seed.
        let mut again = 1u64;
        assert_eq!(next_word(&mut again), a);
    }

    #[test]
    fn coin_threshold_degenerate_probabilities_do_not_touch_state() {
        let mut state = 42u64;
        assert!(!CoinThreshold::from_probability(0.0).flip(&mut state));
        assert!(CoinThreshold::from_probability(1.0).flip(&mut state));
        assert!(!CoinThreshold::from_probability(-3.0).flip(&mut state));
        assert!(CoinThreshold::from_probability(2.0).flip(&mut state));
        assert_eq!(state, 42, "p in {{0, 1}} must not consume randomness");
    }

    #[test]
    fn coin_threshold_probability_roundtrip() {
        assert_eq!(CoinThreshold::from_probability(0.0).probability(), 0.0);
        assert_eq!(CoinThreshold::from_probability(1.0).probability(), 1.0);
        let p = CoinThreshold::from_probability(0.3).probability();
        assert!((p - 0.3).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn coin_threshold_statistics() {
        let mut state = 0xDEAD_BEEF_u64;
        for p in [0.1, 0.3, 0.5, 0.9] {
            let coin = CoinThreshold::from_probability(p);
            let heads = (0..20_000).filter(|_| coin.flip(&mut state)).count();
            let expected = 20_000.0 * p;
            // ±6 sigma on Binomial(20_000, p); sigma < 71 for every p here.
            assert!(
                (heads as f64 - expected).abs() < 6.0 * 71.0,
                "p = {p}: {heads} heads"
            );
        }
    }

    #[test]
    fn mask_plan_degenerate_probabilities_are_free() {
        let mut state = 7u64;
        let never = MaskPlan::from_probability(0.0);
        let always = MaskPlan::from_probability(1.0);
        assert_eq!(never.draw(&mut state), 0);
        assert_eq!(always.draw(&mut state), u64::MAX);
        assert_eq!(state, 7);
        assert_eq!(never.draws_per_word(), 0);
        assert_eq!(always.draws_per_word(), 0);
        assert_eq!(MaskPlan::never(), never);
        assert_eq!(never.probability(), 0.0);
        assert_eq!(always.probability(), 1.0);
    }

    #[test]
    fn dyadic_probabilities_compile_to_short_ladders() {
        assert_eq!(MaskPlan::from_probability(0.5).draws_per_word(), 1);
        assert_eq!(MaskPlan::from_probability(0.25).draws_per_word(), 2);
        assert_eq!(MaskPlan::from_probability(0.75).draws_per_word(), 2);
        assert_eq!(MaskPlan::from_probability(0.375).draws_per_word(), 3);
        // Arbitrary probabilities cap at MASK_DEPTH draws per 64 flips.
        assert!(MaskPlan::from_probability(0.3).draws_per_word() <= MASK_DEPTH as usize);
    }

    #[test]
    fn mask_plan_quantisation_is_tight() {
        for p in [0.3, 0.1, 0.7, 0.9999, 1e-4] {
            let plan = MaskPlan::from_probability(p);
            assert!(
                (plan.probability() - p).abs() <= 1.0 / (1u64 << MASK_DEPTH) as f64,
                "p = {p} quantised to {}",
                plan.probability()
            );
        }
    }

    #[test]
    fn mask_statistics_match_the_probability() {
        for p in [0.25, 0.3, 0.5, 0.8] {
            let plan = MaskPlan::from_probability(p);
            let mut state = 0xB50A_0001_u64;
            let words = 2_000u64;
            let mut ones = 0u64;
            for _ in 0..words {
                ones += u64::from(plan.draw(&mut state).count_ones());
            }
            let n = (words * 64) as f64;
            let sigma = (n * p * (1.0 - p)).sqrt();
            assert!(
                (ones as f64 - n * p).abs() < 6.0 * sigma,
                "p = {p}: {ones} of {n} bits set"
            );
        }
    }

    #[test]
    fn mask_lanes_are_independent_enough_for_pairwise_counts() {
        // Adjacent-lane AND counts for p = 0.5 should track p² = 0.25; a
        // lane-correlated generator would blow well past the band.
        let plan = MaskPlan::from_probability(0.5);
        let mut state = 0x5EED_u64;
        let words = 4_000u64;
        let mut both = 0u64;
        for _ in 0..words {
            let m = plan.draw(&mut state);
            both += u64::from((m & (m >> 1) & 0x5555_5555_5555_5555).count_ones());
        }
        let n = (words * 32) as f64; // 32 disjoint adjacent pairs per word
        let sigma = (n * 0.25 * 0.75).sqrt();
        assert!(
            (both as f64 - n * 0.25).abs() < 6.0 * sigma,
            "{both} joint hits over {n} pairs"
        );
    }

    #[test]
    fn draw_is_deterministic_per_seed() {
        let plan = MaskPlan::from_probability(0.3);
        let mut a = 99u64;
        let mut b = 99u64;
        assert_eq!(plan.draw(&mut a), plan.draw(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn broadcast_masks_share_one_draw_for_equal_plans() {
        let plan = MaskPlan::from_probability(0.3);
        let mut shared_state = 0xB50A_u64;
        let masks = draw_broadcast_masks(&plan, &plan, true, true, &mut shared_state);
        assert_eq!(masks.relax, masks.commit);
        // Exactly one ladder sequence was consumed: replaying a single draw
        // from the same seed lands on the same state.
        let mut replay = 0xB50A_u64;
        assert_eq!(plan.draw(&mut replay), masks.relax);
        assert_eq!(replay, shared_state);
    }

    #[test]
    fn broadcast_masks_draw_separately_for_distinct_plans() {
        let relax = MaskPlan::from_probability(0.3);
        let commit = MaskPlan::from_probability(0.7);
        let mut state = 0x5EED_u64;
        let masks = draw_broadcast_masks(&relax, &commit, true, true, &mut state);
        // Replaying the documented order (relax first, then commit) matches.
        let mut replay = 0x5EED_u64;
        assert_eq!(relax.draw(&mut replay), masks.relax);
        assert_eq!(commit.draw(&mut replay), masks.commit);
        assert_eq!(replay, state);
    }

    #[test]
    fn broadcast_masks_skip_unneeded_draws() {
        let plan = MaskPlan::from_probability(0.3);
        let mut state = 7u64;
        let masks = draw_broadcast_masks(&plan, &plan, false, false, &mut state);
        assert_eq!(masks.relax, 0);
        assert_eq!(masks.commit, 0);
        assert_eq!(state, 7, "nothing needed => nothing drawn");
        // One-sided need draws exactly one sequence.
        let masks = draw_broadcast_masks(&plan, &plan, true, false, &mut state);
        assert_eq!(masks.commit, 0);
        let mut replay = 7u64;
        assert_eq!(plan.draw(&mut replay), masks.relax);
        assert_eq!(replay, state);
    }

    #[test]
    fn broadcast_masks_degenerate_plans_never_touch_state() {
        let never = MaskPlan::never();
        let always = MaskPlan::from_probability(1.0);
        let mut state = 42u64;
        let masks = draw_broadcast_masks(&always, &never, true, true, &mut state);
        assert_eq!(masks.relax, u64::MAX);
        assert_eq!(masks.commit, 0);
        assert_eq!(state, 42);
    }

    #[test]
    fn gate_word_is_the_degenerate_probability_scale() {
        assert_eq!(gate_word(true), u64::MAX);
        assert_eq!(gate_word(false), 0);
    }
}
