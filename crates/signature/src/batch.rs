//! Batched #-aware Hamming kernels on packed word slices.
//!
//! The FPGA streams every input pattern past one Hamming unit per neuron, so
//! the whole competitive layer consumes the input in a single pass. The
//! software analogue (see DESIGN.md §"The batched engine layout") stores the
//! competitive layer *plane-sliced*: for each 64-bit word index `w`, the
//! `w`-th value (and care) word of **every** neuron is stored contiguously.
//! One outer loop over the input words then updates all neuron distances with
//! sequential, cache-friendly XOR/AND/popcount — no bit is ever unpacked.
//!
//! These kernels are deliberately free of any `BinaryVector` /
//! `TriStateVector` bookkeeping: they operate on raw `&[u64]` slices so the
//! SOM layer can own the layout and the engine can shard work across threads
//! without cloning vectors.

/// #-aware Hamming distance between one weight vector and one input, all as
/// packed word slices: `popcount((value ^ input) & care)` summed over words
/// (paper Eq. 3).
///
/// All three slices must have the same length; any tail bits beyond the
/// logical vector length must be zero in `care` (the invariant maintained by
/// [`BinaryVector::as_words`](crate::BinaryVector::as_words)).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn masked_hamming_words(value: &[u64], care: &[u64], input: &[u64]) -> usize {
    assert_eq!(value.len(), input.len(), "value/input word count mismatch");
    assert_eq!(care.len(), input.len(), "care/input word count mismatch");
    value
        .iter()
        .zip(input)
        .zip(care)
        .map(|((w, x), c)| ((w ^ x) & c).count_ones() as usize)
        .sum()
}

/// One pass of the batched winner-search kernel: accumulates the #-aware
/// Hamming distance of `input` to every neuron of a plane-sliced layer.
///
/// `values` and `cares` hold `neurons` words per input word index, i.e.
/// `values[w * neurons + i]` is neuron `i`'s `w`-th value word. `distances`
/// is **accumulated into** (callers zero it first), which lets the engine
/// split very wide vectors across calls.
///
/// # Panics
///
/// Panics if `distances.len() != neurons` or if `values`/`cares` are not
/// exactly `input.len() * neurons` words long.
pub fn batch_masked_hamming(
    values: &[u64],
    cares: &[u64],
    input: &[u64],
    neurons: usize,
    distances: &mut [u32],
) {
    assert_eq!(distances.len(), neurons, "one distance slot per neuron");
    assert_eq!(
        values.len(),
        input.len() * neurons,
        "values must hold `neurons` words per input word"
    );
    assert_eq!(
        cares.len(),
        input.len() * neurons,
        "cares must hold `neurons` words per input word"
    );
    for (w, &x) in input.iter().enumerate() {
        let row = w * neurons;
        let value_row = &values[row..row + neurons];
        let care_row = &cares[row..row + neurons];
        for i in 0..neurons {
            distances[i] += ((value_row[i] ^ x) & care_row[i]).count_ones();
        }
    }
}

/// Selects the winner from per-neuron distances using the full FPGA
/// comparator key `{distance, #-count, address}` (DESIGN.md §"Winner
/// selection and the WTA tie-break key"): smallest distance first, then the
/// most specific neuron (fewest `#`s), then the lowest address.
///
/// Returns `(address, distance)` of the winner, or `None` for empty input.
///
/// # Panics
///
/// Panics if `dont_care_counts.len() != distances.len()`.
pub fn select_winner(distances: &[u32], dont_care_counts: &[u32]) -> Option<(usize, u32)> {
    assert_eq!(
        distances.len(),
        dont_care_counts.len(),
        "one #-count per neuron"
    );
    let mut best: Option<(u32, u32, usize)> = None;
    for (i, (&d, &dc)) in distances.iter().zip(dont_care_counts).enumerate() {
        let key = (d, dc, i);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best.map(|(d, _, i)| (i, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryVector, TriStateVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masked_hamming_words_matches_tristate_hamming() {
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        for _ in 0..20 {
            let w = TriStateVector::random_with_dont_care(768, 0.3, &mut rng);
            let x = BinaryVector::random(768, &mut rng);
            let scalar = w.hamming(&x).unwrap();
            let kernel = masked_hamming_words(
                w.value_plane().as_words(),
                w.care_plane().as_words(),
                x.as_words(),
            );
            assert_eq!(scalar, kernel);
        }
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn masked_hamming_words_rejects_mismatched_slices() {
        masked_hamming_words(&[0, 0], &[0, 0], &[0]);
    }

    #[test]
    fn batch_kernel_matches_per_neuron_scalar_loop() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let neurons = 7;
        let len = 200; // 4 words with a masked tail
        let weights: Vec<TriStateVector> = (0..neurons)
            .map(|_| TriStateVector::random_with_dont_care(len, 0.25, &mut rng))
            .collect();
        let input = BinaryVector::random(len, &mut rng);

        // Build the plane-sliced layout by hand.
        let words = len.div_ceil(64);
        let mut values = vec![0u64; words * neurons];
        let mut cares = vec![0u64; words * neurons];
        for (i, w) in weights.iter().enumerate() {
            for (word, &v) in w.value_plane().as_words().iter().enumerate() {
                values[word * neurons + i] = v;
            }
            for (word, &c) in w.care_plane().as_words().iter().enumerate() {
                cares[word * neurons + i] = c;
            }
        }

        let mut distances = vec![0u32; neurons];
        batch_masked_hamming(&values, &cares, input.as_words(), neurons, &mut distances);
        for (i, w) in weights.iter().enumerate() {
            assert_eq!(distances[i] as usize, w.hamming(&input).unwrap());
        }
    }

    #[test]
    fn batch_kernel_accumulates_across_calls() {
        // Splitting the word range across two calls must give the same total.
        let values = vec![u64::MAX, 0, u64::MAX, 0];
        let cares = vec![u64::MAX; 4];
        let input = [0u64, u64::MAX];
        let mut once = vec![0u32; 2];
        batch_masked_hamming(&values, &cares, &input, 2, &mut once);
        let mut split = vec![0u32; 2];
        batch_masked_hamming(&values[..2], &cares[..2], &input[..1], 2, &mut split);
        batch_masked_hamming(&values[2..], &cares[2..], &input[1..], 2, &mut split);
        assert_eq!(once, split);
    }

    #[test]
    #[should_panic(expected = "one distance slot per neuron")]
    fn batch_kernel_rejects_wrong_distance_len() {
        batch_masked_hamming(&[0], &[0], &[0], 1, &mut [0, 0]);
    }

    #[test]
    fn select_winner_applies_full_comparator_key() {
        // Distance first.
        assert_eq!(select_winner(&[5, 3, 9], &[0, 700, 0]), Some((1, 3)));
        // #-count breaks distance ties.
        assert_eq!(select_winner(&[5, 5], &[700, 3]), Some((1, 5)));
        // Address breaks full ties.
        assert_eq!(select_winner(&[5, 5], &[3, 3]), Some((0, 5)));
        assert_eq!(select_winner(&[], &[]), None);
    }
}
