//! Batched #-aware Hamming kernels on packed word slices.
//!
//! The FPGA streams every input pattern past one Hamming unit per neuron, so
//! the whole competitive layer consumes the input in a single pass. The
//! software analogue (see DESIGN.md §"The batched engine layout") stores the
//! competitive layer *plane-sliced*: for each 64-bit word index `w`, the
//! `w`-th value (and care) word of **every** neuron is stored contiguously.
//! One outer loop over the input words then updates all neuron distances with
//! sequential, cache-friendly XOR/AND/popcount — no bit is ever unpacked.
//!
//! These kernels are deliberately free of any `BinaryVector` /
//! `TriStateVector` bookkeeping: they operate on raw `&[u64]` slices so the
//! SOM layer can own the layout and the engine can shard work across threads
//! without cloning vectors.
//!
//! The same plane-sliced layout serves the *training* side: because the
//! neighbourhood of a winner is a contiguous run of neuron addresses, the
//! `w`-th value/care words of the whole neighbourhood are a contiguous run
//! inside row `w` of the packed planes. [`update_window_word`] applies one
//! broadcast Bernoulli mask pair (see
//! [`bernoulli::draw_broadcast_masks`](crate::bernoulli::draw_broadcast_masks))
//! to such a run — the software shape of the FPGA's single update circuit
//! writing every neuron in the address window in one pass.
//!
//! All three hot kernels are *lowered* in [`crate::lanes`]: the default
//! entry points route through the process-wide
//! [`active_dispatch`](crate::lanes::active_dispatch) (scalar, portable wide
//! lanes, or a hand-written `std::arch` path), and each has a `_with` twin
//! taking an explicit [`Dispatch`] so tests and benches can pin any
//! lowering. Every lowering is bit-identical to the scalar reference walk.

use crate::lanes::{self, Dispatch};

/// The full FPGA winner-take-all comparator key (DESIGN.md §"Winner
/// selection and the WTA tie-break key"), ordered exactly like the hardware
/// comparator: smallest #-aware Hamming distance first, then the most
/// specific neuron (fewest `#`s), then the lowest address. The derived
/// lexicographic [`Ord`] over the field order **is** that comparator, so
/// `min` over keys — in any association order — selects the FPGA's winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WtaKey {
    /// #-aware Hamming distance of the neuron to the input.
    pub distance: u32,
    /// The neuron's `#`-count (the secondary comparator key).
    pub dont_care_count: u32,
    /// The neuron's address (the final tie-break).
    pub address: usize,
}

/// #-aware Hamming distance between one weight vector and one input, all as
/// packed word slices: `popcount((value ^ input) & care)` summed over words
/// (paper Eq. 3).
///
/// All three slices must have the same length; any tail bits beyond the
/// logical vector length must be zero in `care` (the invariant maintained by
/// [`BinaryVector::as_words`](crate::BinaryVector::as_words)).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn masked_hamming_words(value: &[u64], care: &[u64], input: &[u64]) -> usize {
    masked_hamming_words_with(lanes::active_dispatch(), value, care, input)
}

/// [`masked_hamming_words`] through one **explicit** [`Dispatch`] lowering —
/// the entry the differential tests and per-dispatch benches use to exercise
/// every path regardless of the process-wide
/// [`active_dispatch`](crate::lanes::active_dispatch). In debug builds every
/// non-scalar lowering is shadow-checked against the scalar walk, so a bad
/// lowering fails loudly in tests instead of silently in benches.
///
/// # Panics
///
/// Panics if the slice lengths differ or if `dispatch` is not
/// [available](Dispatch::is_available) on the running machine.
pub fn masked_hamming_words_with(
    dispatch: Dispatch,
    value: &[u64],
    care: &[u64],
    input: &[u64],
) -> usize {
    assert_eq!(value.len(), input.len(), "value/input word count mismatch");
    assert_eq!(care.len(), input.len(), "care/input word count mismatch");
    assert!(
        dispatch.is_available(),
        "{}",
        crate::lanes::UnavailableDispatch {
            requested: dispatch
        }
    );
    let total = lanes::masked_hamming_words_dispatch(dispatch, value, care, input);
    #[cfg(debug_assertions)]
    if dispatch != Dispatch::Scalar {
        debug_assert_eq!(
            total,
            lanes::masked_hamming_words_dispatch(Dispatch::Scalar, value, care, input),
            "{dispatch} masked-hamming lowering diverged from the scalar walk"
        );
    }
    total
}

/// One pass of the batched winner-search kernel: accumulates the #-aware
/// Hamming distance of `input` to every neuron of a plane-sliced layer.
///
/// `values` and `cares` hold `neurons` words per input word index, i.e.
/// `values[w * neurons + i]` is neuron `i`'s `w`-th value word. `distances`
/// is **accumulated into** (callers zero it first), which lets the engine
/// split very wide vectors across calls.
///
/// # Panics
///
/// Panics if `distances.len() != neurons` or if `values`/`cares` are not
/// exactly `input.len() * neurons` words long.
pub fn batch_masked_hamming(
    values: &[u64],
    cares: &[u64],
    input: &[u64],
    neurons: usize,
    distances: &mut [u32],
) {
    assert_eq!(distances.len(), neurons, "one distance slot per neuron");
    assert_eq!(
        values.len(),
        input.len() * neurons,
        "values must hold `neurons` words per input word"
    );
    assert_eq!(
        cares.len(),
        input.len() * neurons,
        "cares must hold `neurons` words per input word"
    );
    for (w, &x) in input.iter().enumerate() {
        let row = w * neurons;
        accumulate_masked_hamming_row(
            &values[row..row + neurons],
            &cares[row..row + neurons],
            x,
            distances,
        );
    }
}

/// One word **row** of the batched winner-search kernel: accumulates the
/// contribution of input word `input` into every neuron's distance, given
/// the row of `w`-th value/care words (`values[i]` is neuron `i`'s word).
///
/// This is the kernel the copy-on-write layout calls per shared row —
/// [`batch_masked_hamming`] is exactly a loop of these over a contiguous
/// plane.
///
/// # Panics
///
/// Panics if the three slices do not share one length.
#[inline]
pub fn accumulate_masked_hamming_row(
    values: &[u64],
    cares: &[u64],
    input: u64,
    distances: &mut [u32],
) {
    accumulate_masked_hamming_row_with(lanes::active_dispatch(), values, cares, input, distances);
}

/// [`accumulate_masked_hamming_row`] through one **explicit** [`Dispatch`]
/// lowering (see [`masked_hamming_words_with`] for the contract: available
/// paths only, debug shadow-check against the scalar walk).
///
/// # Panics
///
/// Panics if the three slices do not share one length or if `dispatch` is
/// not [available](Dispatch::is_available) on the running machine.
pub fn accumulate_masked_hamming_row_with(
    dispatch: Dispatch,
    values: &[u64],
    cares: &[u64],
    input: u64,
    distances: &mut [u32],
) {
    assert_eq!(values.len(), cares.len(), "value/care row length mismatch");
    assert_eq!(
        values.len(),
        distances.len(),
        "one distance slot per neuron"
    );
    assert!(
        dispatch.is_available(),
        "{}",
        crate::lanes::UnavailableDispatch {
            requested: dispatch
        }
    );
    #[cfg(debug_assertions)]
    let shadow: Vec<u32> = if dispatch != Dispatch::Scalar {
        let mut copy = distances.to_vec();
        lanes::accumulate_row_dispatch(Dispatch::Scalar, values, cares, input, &mut copy);
        copy
    } else {
        Vec::new()
    };
    lanes::accumulate_row_dispatch(dispatch, values, cares, input, distances);
    #[cfg(debug_assertions)]
    if dispatch != Dispatch::Scalar {
        debug_assert_eq!(
            distances,
            shadow.as_slice(),
            "{dispatch} row lowering diverged from the scalar walk"
        );
    }
}

/// Selects the winner from per-neuron distances using the full FPGA
/// comparator key `{distance, #-count, address}` (DESIGN.md §"Winner
/// selection and the WTA tie-break key"): smallest distance first, then the
/// most specific neuron (fewest `#`s), then the lowest address.
///
/// Returns `(address, distance)` of the winner, or `None` for empty input.
///
/// # Panics
///
/// Panics if `dont_care_counts.len() != distances.len()`.
pub fn select_winner(distances: &[u32], dont_care_counts: &[u32]) -> Option<(usize, u32)> {
    assert_eq!(
        distances.len(),
        dont_care_counts.len(),
        "one #-count per neuron"
    );
    shard_champion(distances, dont_care_counts, 0..distances.len())
        .map(|key| (key.address, key.distance))
}

/// The champion of one neuron-axis shard: the linear `{distance, #-count,
/// address}` scan restricted to `shard` — the leaf block of the tournament
/// reduction, and (over the full range) the reference linear scan itself.
///
/// Returns `None` for an empty shard.
///
/// # Panics
///
/// Panics if `dont_care_counts.len() != distances.len()` or the shard is out
/// of range.
pub fn shard_champion(
    distances: &[u32],
    dont_care_counts: &[u32],
    shard: std::ops::Range<usize>,
) -> Option<WtaKey> {
    assert_eq!(
        distances.len(),
        dont_care_counts.len(),
        "one #-count per neuron"
    );
    assert!(
        shard.end <= distances.len(),
        "shard {shard:?} out of range for {} neurons",
        distances.len()
    );
    let mut best: Option<WtaKey> = None;
    for i in shard {
        let key = WtaKey {
            distance: distances[i],
            dont_care_count: dont_care_counts[i],
            address: i,
        };
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best
}

/// Tournament winner-take-all: shards the neuron axis into blocks of
/// `shard_len`, finds each shard's champion with the linear comparator scan
/// ([`shard_champion`]), and reduces the champions **pairwise, round by
/// round** — the software shape of the FPGA's WTA comparator tree
/// (DESIGN.md §"Copy-on-write publication and the tournament WTA"), where
/// each tree level halves the field in one comparator delay.
///
/// Because the `{distance, #-count, address}` key ([`WtaKey`]) is totally
/// ordered and every address is distinct, `min` over keys is associative and
/// commutative with a unique result: the tournament returns a winner
/// **bit-identical** to the linear scan ([`select_winner`]) for every shard
/// size — including shard counts that do not divide the neuron count — which
/// the `tournament_wta` proptest suite pins down on adversarial tie layouts.
///
/// Returns `None` for empty input.
///
/// # Panics
///
/// Panics if `shard_len == 0` or `dont_care_counts.len() != distances.len()`.
pub fn select_winner_tournament(
    distances: &[u32],
    dont_care_counts: &[u32],
    shard_len: usize,
) -> Option<WtaKey> {
    assert!(shard_len > 0, "a shard must hold at least one neuron");
    assert_eq!(
        distances.len(),
        dont_care_counts.len(),
        "one #-count per neuron"
    );
    let neurons = distances.len();
    if neurons <= shard_len {
        // One shard: the leaf scan is the whole tournament (and the common
        // small-map hot path stays allocation-free).
        return shard_champion(distances, dont_care_counts, 0..neurons);
    }
    // Leaf round: one champion per shard of the neuron axis.
    let mut champions: Vec<WtaKey> = (0..neurons)
        .step_by(shard_len)
        .map(|start| {
            shard_champion(
                distances,
                dont_care_counts,
                start..(start + shard_len).min(neurons),
            )
            .expect("shards of a non-empty layer are non-empty")
        })
        .collect();
    // Comparator tree: each round halves the field (an odd champion gets a
    // bye), exactly like the FPGA's log₂-depth reduction.
    while champions.len() > 1 {
        let mut next = Vec::with_capacity(champions.len().div_ceil(2));
        for pair in champions.chunks(2) {
            next.push(pair.iter().copied().min().expect("chunks are non-empty"));
        }
        champions = next;
    }
    champions.pop()
}

/// Scans one plane-sliced row run for work the broadcast masks could do:
/// returns `(needs_relax, needs_commit)` where *relax* means some neuron in
/// the run has a concrete bit disagreeing with `input`, and *commit* means
/// some neuron whose gate is open still has a `#` in a valid lane
/// (`care != lane_mask`).
///
/// The window update uses this to skip ladder draws for words where a
/// transition is impossible — the window-level analogue of the per-neuron
/// skip in `TriStateVector::stochastic_update`.
///
/// # Panics
///
/// Panics if the slice lengths differ.
#[inline]
pub fn window_word_needs(
    values: &[u64],
    cares: &[u64],
    gates: &[u64],
    input: u64,
    lane_mask: u64,
) -> (bool, bool) {
    assert_eq!(values.len(), cares.len(), "value/care run length mismatch");
    assert_eq!(values.len(), gates.len(), "one gate word per neuron");
    let mut needs_relax = false;
    let mut needs_commit = false;
    for ((&v, &c), &g) in values.iter().zip(cares).zip(gates) {
        needs_relax |= (v ^ input) & c != 0;
        needs_commit |= g != 0 && c != lane_mask;
        if needs_relax && needs_commit {
            break;
        }
    }
    (needs_relax, needs_commit)
}

/// `true` iff applying the **drawn** broadcast mask pair to this run of
/// packed column words would change at least one bit — i.e. some neuron of
/// the window has a mismatching concrete bit under `relax_mask`, or a `#`
/// lane under `commit_mask` behind an open gate. This is the exact
/// "will [`update_window_word`] write anything?" predicate ([`update_word`]
/// changes a word iff its `relaxed` or `committed` mask is non-zero), which
/// the copy-on-write layout uses to leave rows shared with published
/// snapshots untouched when a draw happens to flip nothing.
///
/// `commit_mask` must already carry the valid-lane mask, exactly as passed
/// to [`update_window_word`].
///
/// # Panics
///
/// Panics if the slice lengths differ.
///
/// [`update_word`]: crate::update_word
#[inline]
pub fn window_word_would_change(
    values: &[u64],
    cares: &[u64],
    gates: &[u64],
    input: u64,
    relax_mask: u64,
    commit_mask: u64,
) -> bool {
    assert_eq!(values.len(), cares.len(), "value/care run length mismatch");
    assert_eq!(values.len(), gates.len(), "one gate word per neuron");
    values
        .iter()
        .zip(cares)
        .zip(gates)
        .any(|((&v, &c), &g)| ((v ^ input) & c & relax_mask) | (!c & commit_mask & g) != 0)
}

/// One word index of the plane-sliced neighbourhood update: applies the
/// **shared** broadcast mask pair to a contiguous run of packed column words
/// (the neighbourhood's slice of one value/care row), accumulating per-neuron
/// relax/commit popcounts into `relaxed` / `committed`.
///
/// Per neuron `i` of the run this is exactly
/// [`update_word`](crate::update_word) with `relax_mask` and
/// `commit_mask & gates[i]` — the FPGA's broadcast stream plus per-neuron
/// gate. `commit_mask` must already carry the valid-lane mask of the final
/// partial word (`relax_mask` needs none: mismatches are a subset of the
/// care plane, whose tail bits are zero by the plane invariant).
///
/// # Panics
///
/// Panics if the run slices and delta slices do not all share one length.
// A raw kernel over parallel slices, like `batch_masked_hamming`: bundling
// the operands into a struct would only move the field list.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn update_window_word(
    values: &mut [u64],
    cares: &mut [u64],
    input: u64,
    relax_mask: u64,
    commit_mask: u64,
    gates: &[u64],
    relaxed: &mut [u32],
    committed: &mut [u32],
) {
    update_window_word_with(
        lanes::active_dispatch(),
        values,
        cares,
        input,
        relax_mask,
        commit_mask,
        gates,
        relaxed,
        committed,
    );
}

/// [`update_window_word`] through one **explicit** [`Dispatch`] lowering.
///
/// In debug builds every non-scalar lowering is shadow-checked against the
/// scalar per-neuron [`update_word`](crate::update_word) walk, and — for
/// *every* dispatch — the relax/commit flip counters are checked against a
/// full popcount recount of the care-plane delta
/// (`Δpopcount(care) == committed − relaxed` per neuron). Those counters
/// feed the incremental `#`-count maintenance in the packed layer, so a bad
/// lowering fails loudly here, in tests, rather than silently skewing the
/// WTA tie-break in benches.
///
/// # Panics
///
/// Panics if the run slices and delta slices do not all share one length or
/// if `dispatch` is not [available](Dispatch::is_available) on the running
/// machine.
#[allow(clippy::too_many_arguments)]
pub fn update_window_word_with(
    dispatch: Dispatch,
    values: &mut [u64],
    cares: &mut [u64],
    input: u64,
    relax_mask: u64,
    commit_mask: u64,
    gates: &[u64],
    relaxed: &mut [u32],
    committed: &mut [u32],
) {
    let width = values.len();
    assert_eq!(cares.len(), width, "value/care run length mismatch");
    assert_eq!(gates.len(), width, "one gate word per neuron");
    assert_eq!(relaxed.len(), width, "one relax counter per neuron");
    assert_eq!(committed.len(), width, "one commit counter per neuron");
    assert!(
        dispatch.is_available(),
        "{}",
        crate::lanes::UnavailableDispatch {
            requested: dispatch
        }
    );
    #[cfg(debug_assertions)]
    let snapshot = (
        values.to_vec(),
        cares.to_vec(),
        relaxed.to_vec(),
        committed.to_vec(),
    );
    lanes::update_window_word_dispatch(
        dispatch,
        values,
        cares,
        input,
        relax_mask,
        commit_mask,
        gates,
        relaxed,
        committed,
    );
    #[cfg(debug_assertions)]
    {
        let (old_values, old_cares, old_relaxed, old_committed) = snapshot;
        // Full recount of the popcount maintenance: the counter deltas must
        // balance the care-plane popcount delta neuron by neuron.
        for i in 0..width {
            let care_delta = cares[i].count_ones() as i64 - old_cares[i].count_ones() as i64;
            let committed_delta = i64::from(committed[i]) - i64::from(old_committed[i]);
            let relaxed_delta = i64::from(relaxed[i]) - i64::from(old_relaxed[i]);
            debug_assert_eq!(
                care_delta,
                committed_delta - relaxed_delta,
                "{dispatch} popcount maintenance diverged from a full recount at neuron {i}"
            );
        }
        if dispatch != Dispatch::Scalar {
            let mut shadow_values = old_values;
            let mut shadow_cares = old_cares;
            let mut shadow_relaxed = old_relaxed;
            let mut shadow_committed = old_committed;
            lanes::update_window_word_dispatch(
                Dispatch::Scalar,
                &mut shadow_values,
                &mut shadow_cares,
                input,
                relax_mask,
                commit_mask,
                gates,
                &mut shadow_relaxed,
                &mut shadow_committed,
            );
            debug_assert!(
                values == shadow_values.as_slice()
                    && cares == shadow_cares.as_slice()
                    && relaxed == shadow_relaxed.as_slice()
                    && committed == shadow_committed.as_slice(),
                "{dispatch} window-update lowering diverged from the scalar walk"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryVector, TriStateVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn masked_hamming_words_matches_tristate_hamming() {
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        for _ in 0..20 {
            let w = TriStateVector::random_with_dont_care(768, 0.3, &mut rng);
            let x = BinaryVector::random(768, &mut rng);
            let scalar = w.hamming(&x).unwrap();
            let kernel = masked_hamming_words(
                w.value_plane().as_words(),
                w.care_plane().as_words(),
                x.as_words(),
            );
            assert_eq!(scalar, kernel);
        }
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn masked_hamming_words_rejects_mismatched_slices() {
        masked_hamming_words(&[0, 0], &[0, 0], &[0]);
    }

    #[test]
    fn batch_kernel_matches_per_neuron_scalar_loop() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let neurons = 7;
        let len = 200; // 4 words with a masked tail
        let weights: Vec<TriStateVector> = (0..neurons)
            .map(|_| TriStateVector::random_with_dont_care(len, 0.25, &mut rng))
            .collect();
        let input = BinaryVector::random(len, &mut rng);

        // Build the plane-sliced layout by hand.
        let words = len.div_ceil(64);
        let mut values = vec![0u64; words * neurons];
        let mut cares = vec![0u64; words * neurons];
        for (i, w) in weights.iter().enumerate() {
            for (word, &v) in w.value_plane().as_words().iter().enumerate() {
                values[word * neurons + i] = v;
            }
            for (word, &c) in w.care_plane().as_words().iter().enumerate() {
                cares[word * neurons + i] = c;
            }
        }

        let mut distances = vec![0u32; neurons];
        batch_masked_hamming(&values, &cares, input.as_words(), neurons, &mut distances);
        for (i, w) in weights.iter().enumerate() {
            assert_eq!(distances[i] as usize, w.hamming(&input).unwrap());
        }
    }

    #[test]
    fn batch_kernel_accumulates_across_calls() {
        // Splitting the word range across two calls must give the same total.
        let values = vec![u64::MAX, 0, u64::MAX, 0];
        let cares = vec![u64::MAX; 4];
        let input = [0u64, u64::MAX];
        let mut once = vec![0u32; 2];
        batch_masked_hamming(&values, &cares, &input, 2, &mut once);
        let mut split = vec![0u32; 2];
        batch_masked_hamming(&values[..2], &cares[..2], &input[..1], 2, &mut split);
        batch_masked_hamming(&values[2..], &cares[2..], &input[1..], 2, &mut split);
        assert_eq!(once, split);
    }

    #[test]
    #[should_panic(expected = "one distance slot per neuron")]
    fn batch_kernel_rejects_wrong_distance_len() {
        batch_masked_hamming(&[0], &[0], &[0], 1, &mut [0, 0]);
    }

    #[test]
    fn window_word_needs_reports_both_transitions() {
        let lane_mask = u64::MAX;
        // Fully concrete, agreeing run: nothing to do.
        let (r, c) = window_word_needs(&[0b1010], &[lane_mask], &[u64::MAX], 0b1010, lane_mask);
        assert!(!r && !c);
        // A disagreeing concrete bit needs relax.
        let (r, c) = window_word_needs(&[0b1011], &[lane_mask], &[u64::MAX], 0b1010, lane_mask);
        assert!(r && !c);
        // A # lane needs commit — but only behind an open gate.
        let (r, c) = window_word_needs(&[0], &[!1u64], &[u64::MAX], 0, lane_mask);
        assert!(!r && c);
        let (r, c) = window_word_needs(&[0], &[!1u64], &[0], 0, lane_mask);
        assert!(!r && !c);
        // Tail lanes beyond the lane mask never count as undecided.
        let tail = (1u64 << 6) - 1;
        let (r, c) = window_word_needs(&[0], &[tail], &[u64::MAX], 0, tail);
        assert!(!r && !c);
    }

    #[test]
    fn update_window_word_matches_per_neuron_update_word() {
        let mut rng = StdRng::seed_from_u64(0x77D0);
        use rand::Rng;
        for _ in 0..50 {
            let width = 1 + (rng.gen::<usize>() % 9);
            let values: Vec<u64> = (0..width).map(|_| rng.gen()).collect();
            let raw_cares: Vec<u64> = (0..width).map(|_| rng.gen()).collect();
            // Keep the value-zero-where-care-zero invariant of real planes.
            let cares = raw_cares;
            let values: Vec<u64> = values.iter().zip(&cares).map(|(v, c)| v & c).collect();
            let gates: Vec<u64> = (0..width)
                .map(|_| if rng.gen() { u64::MAX } else { 0 })
                .collect();
            let input: u64 = rng.gen();
            let relax_mask: u64 = rng.gen();
            let commit_mask: u64 = rng.gen();

            let mut win_values = values.clone();
            let mut win_cares = cares.clone();
            let mut relaxed = vec![0u32; width];
            let mut committed = vec![0u32; width];
            update_window_word(
                &mut win_values,
                &mut win_cares,
                input,
                relax_mask,
                commit_mask,
                &gates,
                &mut relaxed,
                &mut committed,
            );
            for i in 0..width {
                let expected = crate::update_word(
                    values[i],
                    cares[i],
                    input,
                    relax_mask,
                    commit_mask & gates[i],
                );
                assert_eq!(win_values[i], expected.value, "neuron {i}");
                assert_eq!(win_cares[i], expected.care, "neuron {i}");
                assert_eq!(relaxed[i], expected.relaxed.count_ones());
                assert_eq!(committed[i], expected.committed.count_ones());
            }
        }
    }

    #[test]
    #[should_panic(expected = "one gate word per neuron")]
    fn update_window_word_rejects_mismatched_gates() {
        update_window_word(&mut [0], &mut [0], 0, 0, 0, &[0, 0], &mut [0], &mut [0]);
    }

    #[test]
    fn select_winner_applies_full_comparator_key() {
        // Distance first.
        assert_eq!(select_winner(&[5, 3, 9], &[0, 700, 0]), Some((1, 3)));
        // #-count breaks distance ties.
        assert_eq!(select_winner(&[5, 5], &[700, 3]), Some((1, 5)));
        // Address breaks full ties.
        assert_eq!(select_winner(&[5, 5], &[3, 3]), Some((0, 5)));
        assert_eq!(select_winner(&[], &[]), None);
    }

    #[test]
    fn wta_key_orders_like_the_fpga_comparator() {
        let base = WtaKey {
            distance: 4,
            dont_care_count: 10,
            address: 3,
        };
        assert!(
            WtaKey {
                distance: 3,
                ..base
            } < base,
            "distance dominates"
        );
        assert!(
            WtaKey {
                dont_care_count: 9,
                ..base
            } < base,
            "#-count breaks distance ties"
        );
        assert!(
            WtaKey { address: 2, ..base } < base,
            "address breaks full ties"
        );
    }

    #[test]
    fn tournament_matches_linear_scan_on_boundary_ties() {
        // Nine neurons, shard length 4: shards {0..4}, {4..8}, {8..9} with a
        // full three-way tie straddling both shard boundaries (3, 4, 8).
        let distances = [7, 7, 9, 2, 2, 7, 9, 9, 2];
        let counts = [1, 1, 1, 5, 5, 1, 1, 1, 5];
        let linear = select_winner(&distances, &counts).unwrap();
        for shard_len in 1..=distances.len() + 2 {
            let key = select_winner_tournament(&distances, &counts, shard_len).unwrap();
            assert_eq!((key.address, key.distance), linear, "shard_len {shard_len}");
            assert_eq!(key.dont_care_count, counts[key.address]);
        }
        assert_eq!(linear.0, 3, "lowest address among the tied keys");
    }

    #[test]
    fn tournament_handles_empty_input_and_rejects_zero_shards() {
        assert_eq!(select_winner_tournament(&[], &[], 4), None);
        let r = std::panic::catch_unwind(|| select_winner_tournament(&[1], &[0], 0));
        assert!(r.is_err(), "shard_len 0 must panic");
    }

    #[test]
    fn shard_champion_respects_the_range() {
        let distances = [0, 5, 5, 1];
        let counts = [0, 2, 1, 9];
        let key = shard_champion(&distances, &counts, 1..3).unwrap();
        // Neuron 0 (global best) is outside the shard; 2 beats 1 on #-count.
        assert_eq!(key.address, 2);
        assert_eq!(key.distance, 5);
        assert_eq!(key.dont_care_count, 1);
        assert_eq!(shard_champion(&distances, &counts, 2..2), None);
    }

    #[test]
    fn row_kernel_agrees_with_the_plane_kernel() {
        let values = vec![u64::MAX, 0b1010, u64::MAX, 0];
        let cares = vec![u64::MAX, u64::MAX, 0b1111, u64::MAX];
        let input = [0u64, u64::MAX];
        let mut plane = vec![0u32; 2];
        batch_masked_hamming(&values, &cares, &input, 2, &mut plane);
        let mut rows = vec![0u32; 2];
        accumulate_masked_hamming_row(&values[..2], &cares[..2], input[0], &mut rows);
        accumulate_masked_hamming_row(&values[2..], &cares[2..], input[1], &mut rows);
        assert_eq!(plane, rows);
    }

    #[test]
    fn would_change_predicts_update_window_word_exactly() {
        let mut rng = StdRng::seed_from_u64(0xD1E7);
        use rand::Rng;
        for _ in 0..200 {
            let width = 1 + (rng.gen::<usize>() % 9);
            let cares: Vec<u64> = (0..width).map(|_| rng.gen()).collect();
            let values: Vec<u64> = cares.iter().map(|c| rng.gen::<u64>() & c).collect();
            let gates: Vec<u64> = (0..width)
                .map(|_| if rng.gen() { u64::MAX } else { 0 })
                .collect();
            let input: u64 = rng.gen();
            let relax_mask: u64 = rng.gen::<u64>() & rng.gen::<u64>();
            let commit_mask: u64 = rng.gen::<u64>() & rng.gen::<u64>();
            let predicted =
                window_word_would_change(&values, &cares, &gates, input, relax_mask, commit_mask);
            let mut v = values.clone();
            let mut c = cares.clone();
            let mut relaxed = vec![0u32; width];
            let mut committed = vec![0u32; width];
            update_window_word(
                &mut v,
                &mut c,
                input,
                relax_mask,
                commit_mask,
                &gates,
                &mut relaxed,
                &mut committed,
            );
            let changed = v != values || c != cares;
            assert_eq!(predicted, changed);
            let flipped = relaxed.iter().chain(&committed).any(|&n| n != 0);
            assert_eq!(predicted, flipped, "flip counters must agree too");
        }
    }
}
