//! # bsom-signature
//!
//! Binary appearance signatures for the bSOM object-recognition system.
//!
//! This crate implements the *data representation* layer of the reproduction of
//! "Binary Object Recognition System on FPGA with bSOM" (Appiah et al.,
//! SOCC 2010):
//!
//! * [`BinaryVector`] — a packed, fixed-length vector of bits. The paper's
//!   binary signatures are 768-bit vectors obtained from a colour histogram;
//!   this type is the input format of the bSOM and of the FPGA simulator.
//! * [`TriStateVector`] — a fixed-length vector of trits over `{0, 1, #}`
//!   where `#` is a *don't care* value that matches either bit when computing
//!   the Hamming distance. The bSOM's neuron weights use this representation.
//! * [`ColorHistogram`] — a 768-bin RGB colour histogram (256 bins per
//!   channel) and its conversion to a binary signature by thresholding at the
//!   mean bin value (paper Eq. 1–2, Fig. 2).
//! * [`RgbImage`], [`BinaryImage`], [`Silhouette`] — minimal image containers
//!   used by the synthetic surveillance substrate and by the FPGA pattern
//!   input block (which consumes the signature as a 32×24 binary image).
//!
//! ## Quick example
//!
//! ```rust
//! use bsom_signature::{ColorHistogram, Rgb, SIGNATURE_BITS};
//!
//! // Build a histogram from a handful of pixels and binarise it.
//! let pixels = [Rgb::new(200, 30, 30), Rgb::new(190, 25, 40), Rgb::new(10, 10, 200)];
//! let hist = ColorHistogram::from_pixels(pixels.iter().copied());
//! let signature = hist.to_signature();
//! assert_eq!(signature.len(), SIGNATURE_BITS);
//! ```

// Deny (not forbid) so the one module that carries `std::arch` SIMD
// lowerings — `lanes` — can opt back in with a scoped allow; everything
// else in the crate still refuses unsafe code.
#![deny(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod bernoulli;
pub mod bitvec;
pub mod error;
pub mod histogram;
pub mod image;
pub mod lanes;
pub mod tristate;

pub use batch::{
    accumulate_masked_hamming_row, accumulate_masked_hamming_row_with, batch_masked_hamming,
    masked_hamming_words, masked_hamming_words_with, select_winner, select_winner_tournament,
    shard_champion, update_window_word, update_window_word_with, window_word_needs,
    window_word_would_change, WtaKey,
};
pub use bernoulli::{
    draw_broadcast_masks, draw_broadcast_masks_lanes, gate_word, BroadcastMasks, CoinThreshold,
    MaskPlan,
};
pub use bitvec::BinaryVector;
pub use error::SignatureError;
pub use histogram::{ColorHistogram, BINS_PER_CHANNEL, HISTOGRAM_BINS};
pub use image::{BinaryImage, Rgb, RgbImage, Silhouette, SIGNATURE_HEIGHT, SIGNATURE_WIDTH};
pub use lanes::{
    active_dispatch, force_dispatch, validate_env_dispatch, Dispatch, DispatchEnvError, Lanes,
    UnavailableDispatch,
};
pub use tristate::{update_word, TriStateVector, Trit, UpdateDelta, WordUpdate};

/// Number of bits in a full-size appearance signature (768 = 3 × 256 bins).
///
/// The paper fixes both the input vectors and the neuron weight vectors to
/// this length (Table III), and the FPGA pattern-input block reads the
/// signature as a 32 × 24 binary image (32 × 24 = 768).
pub const SIGNATURE_BITS: usize = 768;

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn signature_bits_matches_histogram_bins() {
        assert_eq!(SIGNATURE_BITS, HISTOGRAM_BINS);
    }

    #[test]
    fn signature_bits_matches_binary_image_geometry() {
        assert_eq!(SIGNATURE_BITS, SIGNATURE_WIDTH * SIGNATURE_HEIGHT);
    }
}
