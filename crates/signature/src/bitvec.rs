//! Packed binary vectors.
//!
//! [`BinaryVector`] is the representation of the paper's *binary signatures*:
//! fixed-length bit strings (768 bits for the full appearance signature)
//! compared with the Hamming distance. Bits are packed 64 to a word so the
//! Hamming distance of a 768-bit signature reduces to twelve XOR + popcount
//! operations, mirroring the bitwise nature of the FPGA datapath.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::error::SignatureError;

const WORD_BITS: usize = 64;

/// A fixed-length, packed vector of bits.
///
/// `BinaryVector` is an immutable-length container: the number of bits is
/// chosen at construction time and all binary operations require both
/// operands to have the same length.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::BinaryVector;
///
/// let mut v = BinaryVector::zeros(8);
/// v.set(3, true);
/// v.set(7, true);
/// assert_eq!(v.count_ones(), 2);
///
/// let w = BinaryVector::from_bits([true, false, false, true, false, false, false, true]);
/// assert_eq!(v.hamming(&w).unwrap(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinaryVector {
    /// Packed words, least-significant bit first within each word.
    words: Vec<u64>,
    /// Number of valid bits.
    len: usize,
}

impl BinaryVector {
    /// Creates a vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        let words = vec![0u64; len.div_ceil(WORD_BITS)];
        BinaryVector { words, len }
    }

    /// Creates a vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self::zeros(len);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.mask_tail();
        v
    }

    /// Creates a vector from an iterator of booleans.
    ///
    /// The length of the vector equals the number of items yielded.
    pub fn from_bits<I>(bits: I) -> Self
    where
        I: IntoIterator<Item = bool>,
    {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = Self::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// Creates a vector of `len` uniformly random bits.
    ///
    /// The FPGA weight-initialisation block seeds every neuron with random
    /// bits; this is the software analogue.
    pub fn random<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        let mut v = Self::zeros(len);
        for w in &mut v.words {
            *w = rng.gen();
        }
        v.mask_tail();
        v
    }

    /// Parses a vector from a string of `'0'`/`'1'` characters.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::IndexOutOfBounds`] if the string contains a
    /// character other than `'0'` or `'1'` (the index reported is the byte
    /// offset of the offending character).
    pub fn from_bit_str(s: &str) -> Result<Self, SignatureError> {
        let mut bits = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => bits.push(false),
                '1' => bits.push(true),
                _ => {
                    return Err(SignatureError::IndexOutOfBounds {
                        index: i,
                        len: s.len(),
                    })
                }
            }
        }
        Ok(Self::from_bits(bits))
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `index`, or `None` if out of bounds.
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        let word = self.words[index / WORD_BITS];
        Some((word >> (index % WORD_BITS)) & 1 == 1)
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn bit(&self, index: usize) -> bool {
        self.get(index)
            .unwrap_or_else(|| panic!("bit index {index} out of bounds for length {}", self.len))
    }

    /// Sets the bit at `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of bounds for length {}",
            self.len
        );
        let word = &mut self.words[index / WORD_BITS];
        let mask = 1u64 << (index % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn flip(&mut self, index: usize) {
        let current = self.bit(index);
        self.set(index, !current);
    }

    /// Number of bits set to one.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of bits set to zero.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Fraction of bits set to one (0.0 for an empty vector).
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Hamming distance between two equal-length binary vectors.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::LengthMismatch`] if the vectors have
    /// different lengths.
    pub fn hamming(&self, other: &BinaryVector) -> Result<usize, SignatureError> {
        if self.len != other.len {
            return Err(SignatureError::LengthMismatch {
                left: self.len,
                right: other.len,
            });
        }
        Ok(self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum())
    }

    /// Iterator over the bits of the vector.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            vector: self,
            index: 0,
        }
    }

    /// Collects the bits into a `Vec<bool>`.
    pub fn to_bools(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// Renders the vector as a string of `'0'`/`'1'` characters.
    pub fn to_bit_string(&self) -> String {
        self.iter().map(|b| if b { '1' } else { '0' }).collect()
    }

    /// Access to the packed 64-bit words (tail bits beyond `len` are zero).
    ///
    /// The FPGA simulator uses the packed words to model the bit-serial
    /// datapath without unpacking.
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Reconstructs a vector from packed words produced by
    /// [`as_words`](Self::as_words) — the near-zero-copy path wire decoders
    /// use: the word buffer is adopted, not re-packed bit by bit.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::InvalidPacking`] unless the buffer holds
    /// exactly `len.div_ceil(64)` words *and* every bit beyond `len` in the
    /// last word is zero (the invariant `as_words` documents, which
    /// [`count_ones`](Self::count_ones) and the Hamming kernels rely on).
    /// Untrusted input that violates the invariant is rejected rather than
    /// silently masked, so a corrupted frame cannot alias a valid signature.
    pub fn from_words(words: Vec<u64>, len: usize) -> Result<Self, SignatureError> {
        let invalid = || SignatureError::InvalidPacking {
            words: words.len(),
            len,
        };
        if words.len() != len.div_ceil(WORD_BITS) {
            return Err(invalid());
        }
        let rem = len % WORD_BITS;
        if rem != 0 {
            let tail = words.last().copied().unwrap_or(0);
            if tail & !((1u64 << rem) - 1) != 0 {
                return Err(invalid());
            }
        }
        Ok(BinaryVector { words, len })
    }

    /// Mutable access to the packed words for the in-crate word-parallel
    /// update kernels. Callers must keep every bit beyond `len` zero — the
    /// invariant [`as_words`](Self::as_words) documents; `crate`-private so
    /// the invariant stays enforceable inside this crate.
    pub(crate) fn as_mut_words(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Clears any bits beyond `len` in the last word, maintaining the
    /// invariant required by [`count_ones`](Self::count_ones).
    fn mask_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }

    /// Applies a binary word-wise operation, checking lengths.
    fn zip_words<F>(&self, other: &BinaryVector, f: F) -> BinaryVector
    where
        F: Fn(u64, u64) -> u64,
    {
        assert_eq!(
            self.len, other.len,
            "binary vectors must have equal length ({} vs {})",
            self.len, other.len
        );
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| f(*a, *b))
            .collect();
        let mut out = BinaryVector {
            words,
            len: self.len,
        };
        out.mask_tail();
        out
    }
}

impl fmt::Debug for BinaryVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len <= 64 {
            write!(f, "BinaryVector({})", self.to_bit_string())
        } else {
            write!(
                f,
                "BinaryVector(len={}, ones={}, head={}...)",
                self.len,
                self.count_ones(),
                self.iter()
                    .take(32)
                    .map(|b| if b { '1' } else { '0' })
                    .collect::<String>()
            )
        }
    }
}

impl fmt::Display for BinaryVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_bit_string())
    }
}

impl Default for BinaryVector {
    fn default() -> Self {
        BinaryVector::zeros(0)
    }
}

impl FromIterator<bool> for BinaryVector {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        BinaryVector::from_bits(iter)
    }
}

/// Iterator over the bits of a [`BinaryVector`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    vector: &'a BinaryVector,
    index: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.vector.get(self.index)?;
        self.index += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.vector.len - self.index.min(self.vector.len);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for Iter<'_> {}

impl<'a> IntoIterator for &'a BinaryVector {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl BitAnd for &BinaryVector {
    type Output = BinaryVector;

    fn bitand(self, rhs: Self) -> BinaryVector {
        self.zip_words(rhs, |a, b| a & b)
    }
}

impl BitOr for &BinaryVector {
    type Output = BinaryVector;

    fn bitor(self, rhs: Self) -> BinaryVector {
        self.zip_words(rhs, |a, b| a | b)
    }
}

impl BitXor for &BinaryVector {
    type Output = BinaryVector;

    fn bitxor(self, rhs: Self) -> BinaryVector {
        self.zip_words(rhs, |a, b| a ^ b)
    }
}

impl Not for &BinaryVector {
    type Output = BinaryVector;

    fn not(self) -> BinaryVector {
        let words = self.words.iter().map(|w| !w).collect();
        let mut out = BinaryVector {
            words,
            len: self.len,
        };
        out.mask_tail();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_words_round_trips_and_rejects_bad_packing() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [0usize, 1, 63, 64, 65, 100, 768] {
            let v = BinaryVector::random(len, &mut rng);
            let back = BinaryVector::from_words(v.as_words().to_vec(), len)
                .expect("as_words output must round-trip");
            assert_eq!(back, v);
        }
        // Wrong word count.
        assert!(BinaryVector::from_words(vec![0; 3], 100).is_err());
        assert!(BinaryVector::from_words(vec![], 1).is_err());
        // Tail bits beyond len set.
        assert!(BinaryVector::from_words(vec![u64::MAX, u64::MAX], 100).is_err());
    }

    #[test]
    fn zeros_has_no_set_bits() {
        let v = BinaryVector::zeros(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.count_zeros(), 100);
    }

    #[test]
    fn ones_has_all_bits_set_even_with_partial_last_word() {
        for len in [1, 63, 64, 65, 100, 768] {
            let v = BinaryVector::ones(len);
            assert_eq!(v.count_ones(), len, "length {len}");
        }
    }

    #[test]
    fn empty_vector_behaves() {
        let v = BinaryVector::zeros(0);
        assert!(v.is_empty());
        assert_eq!(v.count_ones(), 0);
        assert_eq!(v.density(), 0.0);
        assert_eq!(v.iter().count(), 0);
        assert_eq!(v, BinaryVector::default());
    }

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BinaryVector::zeros(70);
        v.set(0, true);
        v.set(69, true);
        assert!(v.bit(0));
        assert!(v.bit(69));
        assert!(!v.bit(35));
        v.flip(69);
        assert!(!v.bit(69));
        assert_eq!(v.count_ones(), 1);
    }

    #[test]
    fn get_out_of_bounds_is_none() {
        let v = BinaryVector::zeros(10);
        assert_eq!(v.get(10), None);
        assert_eq!(v.get(usize::MAX), None);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn set_out_of_bounds_panics() {
        let mut v = BinaryVector::zeros(10);
        v.set(10, true);
    }

    #[test]
    fn hamming_distance_simple() {
        let a = BinaryVector::from_bit_str("10110").unwrap();
        let b = BinaryVector::from_bit_str("10011").unwrap();
        assert_eq!(a.hamming(&b).unwrap(), 2);
        assert_eq!(a.hamming(&a).unwrap(), 0);
    }

    #[test]
    fn hamming_length_mismatch_errors() {
        let a = BinaryVector::zeros(5);
        let b = BinaryVector::zeros(6);
        assert_eq!(
            a.hamming(&b),
            Err(SignatureError::LengthMismatch { left: 5, right: 6 })
        );
    }

    #[test]
    fn hamming_of_complement_is_length() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = BinaryVector::random(768, &mut rng);
        let complement = !&v;
        assert_eq!(v.hamming(&complement).unwrap(), 768);
    }

    #[test]
    fn bit_string_roundtrip() {
        let s = "1100101011110000";
        let v = BinaryVector::from_bit_str(s).unwrap();
        assert_eq!(v.to_bit_string(), s);
        assert_eq!(v.to_string(), s);
    }

    #[test]
    fn from_bit_str_rejects_bad_characters() {
        let err = BinaryVector::from_bit_str("10x1").unwrap_err();
        assert_eq!(err, SignatureError::IndexOutOfBounds { index: 2, len: 4 });
    }

    #[test]
    fn bitwise_operators_match_boolean_semantics() {
        let a = BinaryVector::from_bit_str("1100").unwrap();
        let b = BinaryVector::from_bit_str("1010").unwrap();
        assert_eq!((&a & &b).to_bit_string(), "1000");
        assert_eq!((&a | &b).to_bit_string(), "1110");
        assert_eq!((&a ^ &b).to_bit_string(), "0110");
        assert_eq!((!&a).to_bit_string(), "0011");
    }

    #[test]
    fn random_vectors_have_reasonable_density() {
        let mut rng = StdRng::seed_from_u64(42);
        let v = BinaryVector::random(768, &mut rng);
        let ones = v.count_ones();
        // Binomial(768, 0.5): anything outside [300, 468] would be astronomically unlikely.
        assert!(ones > 300 && ones < 468, "ones = {ones}");
    }

    #[test]
    fn random_is_deterministic_for_a_seed() {
        let a = BinaryVector::random(768, &mut StdRng::seed_from_u64(1));
        let b = BinaryVector::random(768, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn from_iterator_collects() {
        let v: BinaryVector = (0..10).map(|i| i % 3 == 0).collect();
        assert_eq!(v.len(), 10);
        assert_eq!(v.count_ones(), 4);
    }

    #[test]
    fn iter_yields_every_bit_in_order() {
        let v = BinaryVector::from_bit_str("10110").unwrap();
        let bits: Vec<bool> = v.iter().collect();
        assert_eq!(bits, vec![true, false, true, true, false]);
        assert_eq!(v.iter().len(), 5);
    }

    #[test]
    fn words_tail_is_masked() {
        let v = BinaryVector::ones(70);
        let words = v.as_words();
        assert_eq!(words.len(), 2);
        assert_eq!(words[1], (1u64 << 6) - 1);
    }

    #[test]
    fn debug_output_is_never_empty() {
        assert!(!format!("{:?}", BinaryVector::zeros(0)).is_empty());
        assert!(!format!("{:?}", BinaryVector::ones(768)).is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = BinaryVector::random(768, &mut rng);
        let json = serde_json::to_string(&v).unwrap();
        let back: BinaryVector = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
