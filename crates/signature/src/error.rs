//! Error types for the signature crate.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or combining signature-layer types.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SignatureError {
    /// Two vectors that must have equal length (e.g. for a Hamming distance)
    /// had different lengths.
    LengthMismatch {
        /// Length of the left-hand operand.
        left: usize,
        /// Length of the right-hand operand.
        right: usize,
    },
    /// An index was outside the bounds of the vector or image.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length (or area) of the container.
        len: usize,
    },
    /// An image was constructed from a pixel buffer whose size does not match
    /// the requested dimensions.
    DimensionMismatch {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
        /// Number of pixels supplied.
        pixels: usize,
    },
    /// A histogram had no entries, so the mean threshold of Eq. 1 is
    /// undefined.
    EmptyHistogram,
    /// A packed-word buffer does not match the claimed bit length: wrong
    /// word count, or bits set beyond `len` in the last word.
    InvalidPacking {
        /// Number of 64-bit words supplied.
        words: usize,
        /// Claimed bit length.
        len: usize,
    },
}

impl fmt::Display for SignatureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignatureError::LengthMismatch { left, right } => {
                write!(f, "vector length mismatch: {left} vs {right}")
            }
            SignatureError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            SignatureError::DimensionMismatch {
                width,
                height,
                pixels,
            } => write!(
                f,
                "pixel buffer of {pixels} entries does not match {width}x{height} image"
            ),
            SignatureError::EmptyHistogram => {
                write!(f, "histogram has no entries; mean threshold is undefined")
            }
            SignatureError::InvalidPacking { words, len } => write!(
                f,
                "packed buffer of {words} words is invalid for a {len}-bit vector"
            ),
        }
    }
}

impl Error for SignatureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            SignatureError::LengthMismatch { left: 3, right: 4 },
            SignatureError::IndexOutOfBounds { index: 9, len: 3 },
            SignatureError::DimensionMismatch {
                width: 2,
                height: 2,
                pixels: 5,
            },
            SignatureError::EmptyHistogram,
            SignatureError::InvalidPacking { words: 2, len: 80 },
        ];
        for e in errors {
            let text = e.to_string();
            assert!(!text.is_empty());
            assert!(text.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SignatureError>();
    }
}
