//! Wide-lane word kernels and runtime SIMD dispatch.
//!
//! The batched distance pass is an XNOR+popcount stream over packed `u64`
//! words — exactly the op mix the paper's FPGA packs into parallel hardware
//! lanes. This module widens the software walk the same way: the hot word
//! kernels ([`masked_hamming_words`](crate::masked_hamming_words),
//! [`accumulate_masked_hamming_row`](crate::accumulate_masked_hamming_row),
//! [`update_window_word`](crate::update_window_word)) are lowered over
//! [`Lanes<N>`] — a portable `[u64; N]` wide-lane type — plus hand-written
//! `std::arch` paths for AVX2, AVX-512 and NEON, selected at runtime behind
//! `is_x86_feature_detected!`-style gates.
//!
//! ## Lane layout and the tail rule
//!
//! Every lowering walks the neuron axis (row kernels) or the word axis
//! (whole-vector kernels) in chunks of its lane width `N`, loading `N`
//! consecutive `u64`s per plane into one wide register. Elements `0..len/N*N`
//! go through the wide loop; the remainder — at most `N − 1` elements — runs
//! through the **scalar reference kernel on the tail slice**. Because every
//! element is processed independently (the kernels are element-wise; the only
//! cross-element value is the `masked_hamming_words` sum, and integer
//! addition is associative), the split is bit-identical to the scalar walk
//! for every length, including 0, 1, `N − 1`, `N` and `N + 1` — the classic
//! SIMD off-by-one surface the `simd_equivalence` suite sweeps explicitly.
//!
//! ### Worked example
//!
//! An 11-word row under [`Dispatch::Lanes4`]: words `0..4` and `4..8` are two
//! wide iterations (`(value ^ input) & care` then a per-lane popcount, four
//! lanes at a time); words `8..11` fall to the scalar loop. The running
//! distances are the same `u32` additions in the same per-neuron order as the
//! scalar walk, so the result is equal *as bits*, not merely numerically.
//!
//! ## Dispatch
//!
//! [`Dispatch::detect`] picks the widest lowering the running machine
//! supports (AVX-512 with `vpopcntdq` → AVX2 → NEON → portable
//! [`Dispatch::Lanes8`]). The active path can be **forced** — for testing
//! every lowering on any machine, and for the CI matrix — two ways:
//!
//! * the `BSOM_DISPATCH` environment variable (read once per process):
//!   `scalar`, `lanes4`, `lanes8`, `avx2`, `avx512`, `neon`, or
//!   `widest`/`auto` for [`Dispatch::detect`]. An unknown name or a lowering
//!   the machine cannot run **panics** at first use — a mistyped CI matrix
//!   leg must fail loudly, not silently measure the wrong kernel;
//! * [`force_dispatch`], the programmatic override (it wins over the
//!   environment), which returns [`UnavailableDispatch`] instead of running
//!   an unsupported path.
//!
//! Forcing never changes results: every lowering is bit-identical to the
//! scalar reference (enforced by debug shadow-checks in the public kernels
//! and by the `simd_equivalence` differential suite), and no lowering ever
//! touches the RNG — mask drawing stays word-sequential by contract (see
//! [`MaskPlan::draw_lanes`](crate::bernoulli::MaskPlan::draw_lanes)), so the
//! xorshift64* stream is the same under every dispatch.
//!
//! ```rust
//! use bsom_signature::lanes::Dispatch;
//! use bsom_signature::masked_hamming_words_with;
//!
//! let value = [0b1010_u64; 5];
//! let care = [u64::MAX; 5];
//! let input = [0b0110_u64; 5];
//! let reference = masked_hamming_words_with(Dispatch::Scalar, &value, &care, &input);
//! for dispatch in Dispatch::available() {
//!     assert_eq!(
//!         masked_hamming_words_with(dispatch, &value, &care, &input),
//!         reference,
//!         "every available lowering is bit-identical to the scalar walk"
//!     );
//! }
//! ```
// The one crate module that needs `std::arch` intrinsics; the crate root
// denies unsafe_code everywhere else.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable forcing the kernel dispatch for the whole process:
/// a [`Dispatch`] name (`scalar`, `lanes4`, `lanes8`, `avx2`, `avx512`,
/// `neon`) or `widest`/`auto` for [`Dispatch::detect`]. Read once, at the
/// first kernel call; [`force_dispatch`] overrides it.
pub const DISPATCH_ENV: &str = "BSOM_DISPATCH";

/// A portable wide-lane bundle of `N` packed 64-bit words — the register
/// shape of the generic lowerings ([`Dispatch::Lanes4`] /
/// [`Dispatch::Lanes8`]), which the compiler is free to map onto whatever
/// vector unit the target has.
///
/// All operations are element-wise over the `N` lanes; none of them cross
/// lanes, which is what makes the wide kernels bit-identical to the scalar
/// walk under any chunking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lanes<const N: usize>(pub [u64; N]);

impl<const N: usize> Lanes<N> {
    /// Broadcasts one word into every lane.
    #[inline]
    pub fn splat(word: u64) -> Self {
        Lanes([word; N])
    }

    /// Loads the first `N` words of `words` into lanes.
    ///
    /// # Panics
    ///
    /// Panics if `words.len() < N`.
    #[inline]
    pub fn load(words: &[u64]) -> Self {
        let mut lanes = [0u64; N];
        lanes.copy_from_slice(&words[..N]);
        Lanes(lanes)
    }

    /// Stores the lanes into the first `N` words of `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < N`.
    #[inline]
    pub fn store(self, out: &mut [u64]) {
        out[..N].copy_from_slice(&self.0);
    }

    /// Lane-wise XOR.
    #[inline]
    pub fn xor(self, other: Self) -> Self {
        Lanes(std::array::from_fn(|k| self.0[k] ^ other.0[k]))
    }

    /// Lane-wise AND.
    #[inline]
    pub fn and(self, other: Self) -> Self {
        Lanes(std::array::from_fn(|k| self.0[k] & other.0[k]))
    }

    /// Lane-wise OR.
    #[inline]
    pub fn or(self, other: Self) -> Self {
        Lanes(std::array::from_fn(|k| self.0[k] | other.0[k]))
    }

    /// Lane-wise `self & !other` — the mask-clear op of the update kernel.
    #[inline]
    pub fn and_not(self, other: Self) -> Self {
        Lanes(std::array::from_fn(|k| self.0[k] & !other.0[k]))
    }

    /// Per-lane popcount.
    #[inline]
    pub fn popcounts(self) -> [u32; N] {
        std::array::from_fn(|k| self.0[k].count_ones())
    }
}

impl<const N: usize> std::ops::Not for Lanes<N> {
    type Output = Self;

    /// Lane-wise complement.
    #[inline]
    fn not(self) -> Self {
        Lanes(std::array::from_fn(|k| !self.0[k]))
    }
}

/// One selectable lowering of the word kernels. Every variant exists on
/// every architecture so names, parsing and test matrices stay portable;
/// [`is_available`](Dispatch::is_available) reports whether the *running*
/// machine can execute it, and the kernel entry points reject unavailable
/// paths before any `std::arch` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Dispatch {
    /// The per-`u64` reference walk every other path must match bit for bit.
    Scalar = 0,
    /// Portable [`Lanes<4>`] kernels (AVX2-shaped, any hardware).
    Lanes4 = 1,
    /// Portable [`Lanes<8>`] kernels (AVX-512-shaped, any hardware).
    Lanes8 = 2,
    /// Hand-written AVX2 lowering (x86-64, 4 × 64-bit lanes, nibble-LUT
    /// popcount via `vpshufb` + `vpsadbw`).
    Avx2 = 3,
    /// Hand-written AVX-512 lowering (x86-64, 8 × 64-bit lanes, requires
    /// `avx512f` + `avx512vpopcntdq` for the native `vpopcntq`).
    Avx512 = 4,
    /// Hand-written NEON lowering (aarch64, 2 × 64-bit lanes, `cnt` +
    /// pairwise-add popcount).
    Neon = 5,
}

/// The sentinel the forced-dispatch cell holds when no override is active
/// (deliberately not a valid [`Dispatch`] discriminant).
const FORCE_UNSET: u8 = u8::MAX;

/// Process-wide programmatic override ([`force_dispatch`]); wins over the
/// environment default when set.
static FORCED: AtomicU8 = AtomicU8::new(FORCE_UNSET);

/// The process default: `BSOM_DISPATCH` if set (panicking on nonsense),
/// otherwise [`Dispatch::detect`]. Resolved once.
static ENV_DEFAULT: OnceLock<Dispatch> = OnceLock::new();

impl Dispatch {
    /// Every dispatch variant, in widening order.
    pub const ALL: [Dispatch; 6] = [
        Dispatch::Scalar,
        Dispatch::Lanes4,
        Dispatch::Lanes8,
        Dispatch::Avx2,
        Dispatch::Avx512,
        Dispatch::Neon,
    ];

    /// The stable lower-case name (`scalar`, `lanes4`, `lanes8`, `avx2`,
    /// `avx512`, `neon`) used by `BSOM_DISPATCH`, the CI matrix and the
    /// bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Dispatch::Scalar => "scalar",
            Dispatch::Lanes4 => "lanes4",
            Dispatch::Lanes8 => "lanes8",
            Dispatch::Avx2 => "avx2",
            Dispatch::Avx512 => "avx512",
            Dispatch::Neon => "neon",
        }
    }

    /// Parses a [`name`](Dispatch::name) (ASCII case-insensitive). Returns
    /// `None` for unknown names — including `widest`/`auto`, which are
    /// `BSOM_DISPATCH` conveniences for [`Dispatch::detect`], not variants.
    pub fn from_name(name: &str) -> Option<Dispatch> {
        Self::ALL
            .into_iter()
            .find(|d| d.name().eq_ignore_ascii_case(name.trim()))
    }

    /// `true` iff the running machine can execute this lowering. The
    /// portable paths are always available; `std::arch` paths need the right
    /// architecture *and* the runtime CPUID/auxval feature gate.
    pub fn is_available(self) -> bool {
        match self {
            Dispatch::Scalar | Dispatch::Lanes4 | Dispatch::Lanes8 => true,
            #[cfg(target_arch = "x86_64")]
            Dispatch::Avx2 => is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            Dispatch::Avx512 => {
                is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vpopcntdq")
            }
            #[cfg(target_arch = "aarch64")]
            Dispatch::Neon => std::arch::is_aarch64_feature_detected!("neon"),
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Every lowering the running machine can execute, in widening order —
    /// the differential-test matrix of the `simd_equivalence` suite.
    pub fn available() -> Vec<Dispatch> {
        Self::ALL.into_iter().filter(|d| d.is_available()).collect()
    }

    /// The widest lowering available on the running machine: AVX-512 when
    /// the CPU has native 64-bit popcount, else AVX2, else NEON, else the
    /// portable [`Dispatch::Lanes8`] kernels.
    pub fn detect() -> Dispatch {
        for candidate in [Dispatch::Avx512, Dispatch::Avx2, Dispatch::Neon] {
            if candidate.is_available() {
                return candidate;
            }
        }
        Dispatch::Lanes8
    }

    /// Reverses `self as u8`, rejecting the [`FORCE_UNSET`] sentinel.
    fn from_code(code: u8) -> Option<Dispatch> {
        Self::ALL.into_iter().find(|d| *d as u8 == code)
    }
}

impl std::fmt::Display for Dispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error of [`force_dispatch`]: the requested lowering cannot run on this
/// machine (wrong architecture or missing CPU feature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnavailableDispatch {
    /// The lowering that was requested.
    pub requested: Dispatch,
}

impl std::fmt::Display for UnavailableDispatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dispatch `{}` is not available on this machine (available: {})",
            self.requested.name(),
            available_names()
        )
    }
}

impl std::error::Error for UnavailableDispatch {}

/// Error of [`validate_env_dispatch`]: the `BSOM_DISPATCH` environment
/// variable holds a value the process could not serve — either a name that
/// is no dispatch at all, or a lowering this machine cannot execute.
///
/// The [`Display`](std::fmt::Display) text is exactly the message the lazy
/// [`active_dispatch`] path would panic with at the first kernel call, so a
/// caller that validates eagerly (e.g. `SomService` construction) reports
/// the same diagnosis, just at startup and as a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DispatchEnvError {
    /// The value names no known lowering (and is not `widest`/`auto`).
    Unknown {
        /// The raw `BSOM_DISPATCH` value.
        value: String,
    },
    /// The value names a real lowering that this machine cannot execute
    /// (wrong architecture or missing CPU feature).
    Unavailable {
        /// The raw `BSOM_DISPATCH` value.
        value: String,
        /// The lowering it names.
        requested: Dispatch,
    },
}

impl std::fmt::Display for DispatchEnvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DispatchEnvError::Unknown { value } => write!(
                f,
                "{DISPATCH_ENV}={value}: unknown dispatch \
                 (expected scalar, lanes4, lanes8, avx2, avx512, neon, widest or auto)"
            ),
            DispatchEnvError::Unavailable { value, requested } => write!(
                f,
                "{DISPATCH_ENV}={value}: {}",
                UnavailableDispatch {
                    requested: *requested
                }
            ),
        }
    }
}

impl std::error::Error for DispatchEnvError {}

/// Resolves what `BSOM_DISPATCH` asks for **without** panicking: the named
/// lowering if it exists and runs here, [`Dispatch::detect`] when the
/// variable is unset/empty/`widest`/`auto`, or a typed [`DispatchEnvError`].
///
/// This is the eager-validation entry point for long-lived services: call it
/// at construction so a mistyped value fails at startup with a clear error
/// instead of panicking on the first kernel call deep in a worker thread.
/// It does **not** consult (or set) the [`force_dispatch`] override or the
/// cached process default — it re-reads the environment on every call.
pub fn validate_env_dispatch() -> Result<Dispatch, DispatchEnvError> {
    match std::env::var(DISPATCH_ENV) {
        Err(_) => Ok(Dispatch::detect()),
        Ok(value) => {
            let trimmed = value.trim();
            if trimmed.is_empty()
                || trimmed.eq_ignore_ascii_case("widest")
                || trimmed.eq_ignore_ascii_case("auto")
            {
                return Ok(Dispatch::detect());
            }
            let dispatch =
                Dispatch::from_name(trimmed).ok_or_else(|| DispatchEnvError::Unknown {
                    value: value.clone(),
                })?;
            if !dispatch.is_available() {
                return Err(DispatchEnvError::Unavailable {
                    value,
                    requested: dispatch,
                });
            }
            Ok(dispatch)
        }
    }
}

/// Comma-separated [`Dispatch::available`] names, for error messages.
fn available_names() -> String {
    Dispatch::available()
        .iter()
        .map(|d| d.name())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Resolves the process default dispatch: `BSOM_DISPATCH` if set, else
/// [`Dispatch::detect`]. A nonsense value panics — a CI matrix leg that
/// silently fell back to auto-detection would measure and test the wrong
/// kernels.
fn env_default() -> Dispatch {
    *ENV_DEFAULT.get_or_init(|| validate_env_dispatch().unwrap_or_else(|error| panic!("{error}")))
}

/// The dispatch the default kernel entry points will use for this call:
/// the [`force_dispatch`] override if one is set, else the `BSOM_DISPATCH` /
/// [`Dispatch::detect`] process default.
#[inline]
pub fn active_dispatch() -> Dispatch {
    match Dispatch::from_code(FORCED.load(Ordering::Relaxed)) {
        Some(forced) => forced,
        None => env_default(),
    }
}

/// Forces every subsequent default kernel call in the process onto one
/// lowering (`Some`), or clears the override back to the environment/detect
/// default (`None`). The programmatic half of the `ForceDispatch` test hook;
/// the `BSOM_DISPATCH` environment variable is the other.
///
/// Safe to flip while other threads run kernels — every lowering is
/// bit-identical, so a racing thread merely takes one path or the other.
/// Tests that assert on [`active_dispatch`] itself serialize around it.
///
/// # Errors
///
/// Returns [`UnavailableDispatch`] (leaving the override unchanged) if the
/// machine cannot execute the requested lowering.
pub fn force_dispatch(dispatch: Option<Dispatch>) -> Result<(), UnavailableDispatch> {
    match dispatch {
        None => {
            FORCED.store(FORCE_UNSET, Ordering::Relaxed);
            Ok(())
        }
        Some(requested) => {
            if !requested.is_available() {
                return Err(UnavailableDispatch { requested });
            }
            FORCED.store(requested as u8, Ordering::Relaxed);
            Ok(())
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar reference kernels: the walk every lowering must match bit for bit.
// ---------------------------------------------------------------------------

/// Scalar `masked_hamming_words`: the summed Eq. 3 popcount, word at a time.
pub(crate) fn masked_hamming_scalar(value: &[u64], care: &[u64], input: &[u64]) -> usize {
    value
        .iter()
        .zip(input)
        .zip(care)
        .map(|((w, x), c)| ((w ^ x) & c).count_ones() as usize)
        .sum()
}

/// Scalar `accumulate_masked_hamming_row`: one distance addition per neuron.
pub(crate) fn accumulate_row_scalar(
    values: &[u64],
    cares: &[u64],
    input: u64,
    distances: &mut [u32],
) {
    for i in 0..values.len() {
        distances[i] += ((values[i] ^ input) & cares[i]).count_ones();
    }
}

/// Scalar `update_window_word`: [`crate::update_word`] per neuron of the run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn update_window_scalar(
    values: &mut [u64],
    cares: &mut [u64],
    input: u64,
    relax_mask: u64,
    commit_mask: u64,
    gates: &[u64],
    relaxed: &mut [u32],
    committed: &mut [u32],
) {
    for i in 0..values.len() {
        let updated = crate::update_word(
            values[i],
            cares[i],
            input,
            relax_mask,
            commit_mask & gates[i],
        );
        values[i] = updated.value;
        cares[i] = updated.care;
        relaxed[i] += updated.relaxed.count_ones();
        committed[i] += updated.committed.count_ones();
    }
}

// ---------------------------------------------------------------------------
// Portable Lanes<N> lowerings: wide chunks + the scalar kernel on the tail.
// ---------------------------------------------------------------------------

fn masked_hamming_lanes<const N: usize>(value: &[u64], care: &[u64], input: &[u64]) -> usize {
    let wide = value.len() - value.len() % N;
    let mut total = 0usize;
    let mut i = 0;
    while i < wide {
        let v = Lanes::<N>::load(&value[i..]);
        let c = Lanes::<N>::load(&care[i..]);
        let x = Lanes::<N>::load(&input[i..]);
        total += v
            .xor(x)
            .and(c)
            .popcounts()
            .iter()
            .map(|&p| p as usize)
            .sum::<usize>();
        i += N;
    }
    total + masked_hamming_scalar(&value[wide..], &care[wide..], &input[wide..])
}

fn accumulate_row_lanes<const N: usize>(
    values: &[u64],
    cares: &[u64],
    input: u64,
    distances: &mut [u32],
) {
    let wide = values.len() - values.len() % N;
    let x = Lanes::<N>::splat(input);
    let mut i = 0;
    while i < wide {
        let v = Lanes::<N>::load(&values[i..]);
        let c = Lanes::<N>::load(&cares[i..]);
        let counts = v.xor(x).and(c).popcounts();
        for (d, p) in distances[i..i + N].iter_mut().zip(counts) {
            *d += p;
        }
        i += N;
    }
    accumulate_row_scalar(
        &values[wide..],
        &cares[wide..],
        input,
        &mut distances[wide..],
    );
}

#[allow(clippy::too_many_arguments)]
fn update_window_lanes<const N: usize>(
    values: &mut [u64],
    cares: &mut [u64],
    input: u64,
    relax_mask: u64,
    commit_mask: u64,
    gates: &[u64],
    relaxed: &mut [u32],
    committed: &mut [u32],
) {
    let wide = values.len() - values.len() % N;
    let x = Lanes::<N>::splat(input);
    let rm = Lanes::<N>::splat(relax_mask);
    let cm = Lanes::<N>::splat(commit_mask);
    let mut i = 0;
    while i < wide {
        let v = Lanes::<N>::load(&values[i..]);
        let c = Lanes::<N>::load(&cares[i..]);
        let gated_commit = cm.and(Lanes::<N>::load(&gates[i..]));
        // The update_word dataflow, N neurons at a time (lane k is exactly
        // `update_word(values[i+k], cares[i+k], input, relax_mask,
        // commit_mask & gates[i+k])`).
        let mismatch = v.xor(x).and(c);
        let rel = mismatch.and(rm);
        let com = gated_commit.and_not(c);
        v.and_not(rel).or(x.and(com)).store(&mut values[i..]);
        c.and_not(rel).or(com).store(&mut cares[i..]);
        let rel_counts = rel.popcounts();
        let com_counts = com.popcounts();
        for k in 0..N {
            relaxed[i + k] += rel_counts[k];
            committed[i + k] += com_counts[k];
        }
        i += N;
    }
    update_window_scalar(
        &mut values[wide..],
        &mut cares[wide..],
        input,
        relax_mask,
        commit_mask,
        &gates[wide..],
        &mut relaxed[wide..],
        &mut committed[wide..],
    );
}

// ---------------------------------------------------------------------------
// x86-64 lowerings (AVX2 / AVX-512).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Per-qword popcount without `vpopcntq`: nibble lookup (`vpshufb`
    /// against a 0..=4 table) then `vpsadbw` to sum the 8 byte counts of
    /// each qword — the classic Mula AVX2 popcount.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_epi64_avx2(v: __m256i) -> __m256i {
        #[rustfmt::skip]
        let table = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_nibbles = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_nibbles);
        let hi = _mm256_and_si256(_mm256_srli_epi64::<4>(v), low_nibbles);
        let byte_counts = _mm256_add_epi8(
            _mm256_shuffle_epi8(table, lo),
            _mm256_shuffle_epi8(table, hi),
        );
        _mm256_sad_epu8(byte_counts, _mm256_setzero_si256())
    }

    /// # Safety
    ///
    /// Requires AVX2 at runtime; the dispatcher checks availability first.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn masked_hamming_avx2(value: &[u64], care: &[u64], input: &[u64]) -> usize {
        let wide = value.len() - value.len() % 4;
        let mut acc = _mm256_setzero_si256();
        let mut i = 0;
        while i < wide {
            let v = _mm256_loadu_si256(value.as_ptr().add(i).cast());
            let c = _mm256_loadu_si256(care.as_ptr().add(i).cast());
            let x = _mm256_loadu_si256(input.as_ptr().add(i).cast());
            let masked = _mm256_and_si256(_mm256_xor_si256(v, x), c);
            acc = _mm256_add_epi64(acc, popcount_epi64_avx2(masked));
            i += 4;
        }
        let mut qwords = [0u64; 4];
        _mm256_storeu_si256(qwords.as_mut_ptr().cast(), acc);
        qwords.iter().sum::<u64>() as usize
            + super::masked_hamming_scalar(&value[wide..], &care[wide..], &input[wide..])
    }

    /// # Safety
    ///
    /// Requires AVX2 at runtime; the dispatcher checks availability first.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn accumulate_row_avx2(
        values: &[u64],
        cares: &[u64],
        input: u64,
        distances: &mut [u32],
    ) {
        let wide = values.len() - values.len() % 4;
        let x = _mm256_set1_epi64x(input as i64);
        // The qword counts are ≤ 64, so each lives in the low 32 bits of its
        // qword; this permutation gathers those four dwords into the low
        // 128-bit half for one 4-wide u32 addition into the distances.
        let gather_low_dwords = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
        let mut i = 0;
        while i < wide {
            let v = _mm256_loadu_si256(values.as_ptr().add(i).cast());
            let c = _mm256_loadu_si256(cares.as_ptr().add(i).cast());
            let masked = _mm256_and_si256(_mm256_xor_si256(v, x), c);
            let counts = popcount_epi64_avx2(masked);
            let narrowed =
                _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(counts, gather_low_dwords));
            let d = _mm_loadu_si128(distances.as_ptr().add(i).cast());
            _mm_storeu_si128(
                distances.as_mut_ptr().add(i).cast(),
                _mm_add_epi32(d, narrowed),
            );
            i += 4;
        }
        super::accumulate_row_scalar(
            &values[wide..],
            &cares[wide..],
            input,
            &mut distances[wide..],
        );
    }

    /// # Safety
    ///
    /// Requires AVX2 at runtime; the dispatcher checks availability first.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn update_window_avx2(
        values: &mut [u64],
        cares: &mut [u64],
        input: u64,
        relax_mask: u64,
        commit_mask: u64,
        gates: &[u64],
        relaxed: &mut [u32],
        committed: &mut [u32],
    ) {
        let wide = values.len() - values.len() % 4;
        let x = _mm256_set1_epi64x(input as i64);
        let rm = _mm256_set1_epi64x(relax_mask as i64);
        let cm = _mm256_set1_epi64x(commit_mask as i64);
        let mut i = 0;
        while i < wide {
            let v = _mm256_loadu_si256(values.as_ptr().add(i).cast());
            let c = _mm256_loadu_si256(cares.as_ptr().add(i).cast());
            let g = _mm256_loadu_si256(gates.as_ptr().add(i).cast());
            let mismatch = _mm256_and_si256(_mm256_xor_si256(v, x), c);
            let rel = _mm256_and_si256(mismatch, rm);
            let com = _mm256_andnot_si256(c, _mm256_and_si256(cm, g));
            let new_v = _mm256_or_si256(_mm256_andnot_si256(rel, v), _mm256_and_si256(x, com));
            let new_c = _mm256_or_si256(_mm256_andnot_si256(rel, c), com);
            _mm256_storeu_si256(values.as_mut_ptr().add(i).cast(), new_v);
            _mm256_storeu_si256(cares.as_mut_ptr().add(i).cast(), new_c);
            let mut rel_qwords = [0u64; 4];
            let mut com_qwords = [0u64; 4];
            _mm256_storeu_si256(rel_qwords.as_mut_ptr().cast(), rel);
            _mm256_storeu_si256(com_qwords.as_mut_ptr().cast(), com);
            for k in 0..4 {
                relaxed[i + k] += rel_qwords[k].count_ones();
                committed[i + k] += com_qwords[k].count_ones();
            }
            i += 4;
        }
        super::update_window_scalar(
            &mut values[wide..],
            &mut cares[wide..],
            input,
            relax_mask,
            commit_mask,
            &gates[wide..],
            &mut relaxed[wide..],
            &mut committed[wide..],
        );
    }

    /// # Safety
    ///
    /// Requires AVX-512F + VPOPCNTDQ at runtime; the dispatcher checks
    /// availability first.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub(super) unsafe fn masked_hamming_avx512(
        value: &[u64],
        care: &[u64],
        input: &[u64],
    ) -> usize {
        let wide = value.len() - value.len() % 8;
        let mut acc = _mm512_setzero_si512();
        let mut i = 0;
        while i < wide {
            let v = _mm512_loadu_si512(value.as_ptr().add(i).cast());
            let c = _mm512_loadu_si512(care.as_ptr().add(i).cast());
            let x = _mm512_loadu_si512(input.as_ptr().add(i).cast());
            let masked = _mm512_and_si512(_mm512_xor_si512(v, x), c);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(masked));
            i += 8;
        }
        let mut qwords = [0u64; 8];
        _mm512_storeu_si512(qwords.as_mut_ptr().cast(), acc);
        qwords.iter().sum::<u64>() as usize
            + super::masked_hamming_scalar(&value[wide..], &care[wide..], &input[wide..])
    }

    /// # Safety
    ///
    /// Requires AVX-512F + VPOPCNTDQ at runtime; the dispatcher checks
    /// availability first.
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub(super) unsafe fn accumulate_row_avx512(
        values: &[u64],
        cares: &[u64],
        input: u64,
        distances: &mut [u32],
    ) {
        let wide = values.len() - values.len() % 8;
        let x = _mm512_set1_epi64(input as i64);
        let mut i = 0;
        while i < wide {
            let v = _mm512_loadu_si512(values.as_ptr().add(i).cast());
            let c = _mm512_loadu_si512(cares.as_ptr().add(i).cast());
            let masked = _mm512_and_si512(_mm512_xor_si512(v, x), c);
            // Native per-qword popcount, then narrow the eight ≤ 64 counts
            // to dwords for one 8-wide u32 addition into the distances.
            let narrowed = _mm512_cvtepi64_epi32(_mm512_popcnt_epi64(masked));
            let d = _mm256_loadu_si256(distances.as_ptr().add(i).cast());
            _mm256_storeu_si256(
                distances.as_mut_ptr().add(i).cast(),
                _mm256_add_epi32(d, narrowed),
            );
            i += 8;
        }
        super::accumulate_row_scalar(
            &values[wide..],
            &cares[wide..],
            input,
            &mut distances[wide..],
        );
    }

    /// # Safety
    ///
    /// Requires AVX-512F + VPOPCNTDQ at runtime; the dispatcher checks
    /// availability first.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx512f,avx512vpopcntdq")]
    pub(super) unsafe fn update_window_avx512(
        values: &mut [u64],
        cares: &mut [u64],
        input: u64,
        relax_mask: u64,
        commit_mask: u64,
        gates: &[u64],
        relaxed: &mut [u32],
        committed: &mut [u32],
    ) {
        let wide = values.len() - values.len() % 8;
        let x = _mm512_set1_epi64(input as i64);
        let rm = _mm512_set1_epi64(relax_mask as i64);
        let cm = _mm512_set1_epi64(commit_mask as i64);
        let mut i = 0;
        while i < wide {
            let v = _mm512_loadu_si512(values.as_ptr().add(i).cast());
            let c = _mm512_loadu_si512(cares.as_ptr().add(i).cast());
            let g = _mm512_loadu_si512(gates.as_ptr().add(i).cast());
            let mismatch = _mm512_and_si512(_mm512_xor_si512(v, x), c);
            let rel = _mm512_and_si512(mismatch, rm);
            let com = _mm512_andnot_si512(c, _mm512_and_si512(cm, g));
            let new_v = _mm512_or_si512(_mm512_andnot_si512(rel, v), _mm512_and_si512(x, com));
            let new_c = _mm512_or_si512(_mm512_andnot_si512(rel, c), com);
            _mm512_storeu_si512(values.as_mut_ptr().add(i).cast(), new_v);
            _mm512_storeu_si512(cares.as_mut_ptr().add(i).cast(), new_c);
            let mut rel_counts = [0u64; 8];
            let mut com_counts = [0u64; 8];
            _mm512_storeu_si512(rel_counts.as_mut_ptr().cast(), _mm512_popcnt_epi64(rel));
            _mm512_storeu_si512(com_counts.as_mut_ptr().cast(), _mm512_popcnt_epi64(com));
            for k in 0..8 {
                relaxed[i + k] += rel_counts[k] as u32;
                committed[i + k] += com_counts[k] as u32;
            }
            i += 8;
        }
        super::update_window_scalar(
            &mut values[wide..],
            &mut cares[wide..],
            input,
            relax_mask,
            commit_mask,
            &gates[wide..],
            &mut relaxed[wide..],
            &mut committed[wide..],
        );
    }
}

// ---------------------------------------------------------------------------
// aarch64 lowering (NEON).
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    /// Per-qword popcount: byte-wise `cnt` then the pairwise-add widening
    /// chain up to one count per 64-bit lane.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn popcount_u64x2(v: uint64x2_t) -> uint64x2_t {
        vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u64(v)))))
    }

    /// # Safety
    ///
    /// Requires NEON at runtime; the dispatcher checks availability first.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn masked_hamming_neon(value: &[u64], care: &[u64], input: &[u64]) -> usize {
        let wide = value.len() - value.len() % 2;
        let mut acc = vdupq_n_u64(0);
        let mut i = 0;
        while i < wide {
            let v = vld1q_u64(value.as_ptr().add(i));
            let c = vld1q_u64(care.as_ptr().add(i));
            let x = vld1q_u64(input.as_ptr().add(i));
            acc = vaddq_u64(acc, popcount_u64x2(vandq_u64(veorq_u64(v, x), c)));
            i += 2;
        }
        vaddvq_u64(acc) as usize
            + super::masked_hamming_scalar(&value[wide..], &care[wide..], &input[wide..])
    }

    /// # Safety
    ///
    /// Requires NEON at runtime; the dispatcher checks availability first.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn accumulate_row_neon(
        values: &[u64],
        cares: &[u64],
        input: u64,
        distances: &mut [u32],
    ) {
        let wide = values.len() - values.len() % 2;
        let x = vdupq_n_u64(input);
        let mut i = 0;
        while i < wide {
            let v = vld1q_u64(values.as_ptr().add(i));
            let c = vld1q_u64(cares.as_ptr().add(i));
            let counts = popcount_u64x2(vandq_u64(veorq_u64(v, x), c));
            distances[i] += vgetq_lane_u64::<0>(counts) as u32;
            distances[i + 1] += vgetq_lane_u64::<1>(counts) as u32;
            i += 2;
        }
        super::accumulate_row_scalar(
            &values[wide..],
            &cares[wide..],
            input,
            &mut distances[wide..],
        );
    }
}

// ---------------------------------------------------------------------------
// The dispatchers: one match per kernel, hardware arms behind availability.
// ---------------------------------------------------------------------------
//
// SAFETY (all three): the hardware arms are reachable only through the
// public kernel entry points in `batch`, which assert
// `dispatch.is_available()` before calling in — the runtime feature gate the
// `target_feature` contracts require. Variants foreign to the compiled
// architecture (e.g. `Neon` on x86-64) are never available, so the fallback
// arm is unreachable through the public API; it routes to the scalar
// reference to stay safe even if reached.

pub(crate) fn masked_hamming_words_dispatch(
    dispatch: Dispatch,
    value: &[u64],
    care: &[u64],
    input: &[u64],
) -> usize {
    match dispatch {
        Dispatch::Scalar => masked_hamming_scalar(value, care, input),
        Dispatch::Lanes4 => masked_hamming_lanes::<4>(value, care, input),
        Dispatch::Lanes8 => masked_hamming_lanes::<8>(value, care, input),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => unsafe { x86::masked_hamming_avx2(value, care, input) },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx512 => unsafe { x86::masked_hamming_avx512(value, care, input) },
        #[cfg(target_arch = "aarch64")]
        Dispatch::Neon => unsafe { neon::masked_hamming_neon(value, care, input) },
        #[allow(unreachable_patterns)]
        _ => masked_hamming_scalar(value, care, input),
    }
}

pub(crate) fn accumulate_row_dispatch(
    dispatch: Dispatch,
    values: &[u64],
    cares: &[u64],
    input: u64,
    distances: &mut [u32],
) {
    match dispatch {
        Dispatch::Scalar => accumulate_row_scalar(values, cares, input, distances),
        Dispatch::Lanes4 => accumulate_row_lanes::<4>(values, cares, input, distances),
        Dispatch::Lanes8 => accumulate_row_lanes::<8>(values, cares, input, distances),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => unsafe { x86::accumulate_row_avx2(values, cares, input, distances) },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx512 => unsafe { x86::accumulate_row_avx512(values, cares, input, distances) },
        #[cfg(target_arch = "aarch64")]
        Dispatch::Neon => unsafe { neon::accumulate_row_neon(values, cares, input, distances) },
        #[allow(unreachable_patterns)]
        _ => accumulate_row_scalar(values, cares, input, distances),
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn update_window_word_dispatch(
    dispatch: Dispatch,
    values: &mut [u64],
    cares: &mut [u64],
    input: u64,
    relax_mask: u64,
    commit_mask: u64,
    gates: &[u64],
    relaxed: &mut [u32],
    committed: &mut [u32],
) {
    match dispatch {
        Dispatch::Scalar => update_window_scalar(
            values,
            cares,
            input,
            relax_mask,
            commit_mask,
            gates,
            relaxed,
            committed,
        ),
        Dispatch::Lanes4 => update_window_lanes::<4>(
            values,
            cares,
            input,
            relax_mask,
            commit_mask,
            gates,
            relaxed,
            committed,
        ),
        Dispatch::Lanes8 => update_window_lanes::<8>(
            values,
            cares,
            input,
            relax_mask,
            commit_mask,
            gates,
            relaxed,
            committed,
        ),
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx2 => unsafe {
            x86::update_window_avx2(
                values,
                cares,
                input,
                relax_mask,
                commit_mask,
                gates,
                relaxed,
                committed,
            )
        },
        #[cfg(target_arch = "x86_64")]
        Dispatch::Avx512 => unsafe {
            x86::update_window_avx512(
                values,
                cares,
                input,
                relax_mask,
                commit_mask,
                gates,
                relaxed,
                committed,
            )
        },
        // NEON gains little on the short window runs (the neighbourhood is a
        // handful of neurons); the 2-wide portable kernel is the aarch64
        // lowering of record here.
        #[cfg(target_arch = "aarch64")]
        Dispatch::Neon => update_window_lanes::<2>(
            values,
            cares,
            input,
            relax_mask,
            commit_mask,
            gates,
            relaxed,
            committed,
        ),
        #[allow(unreachable_patterns)]
        _ => update_window_scalar(
            values,
            cares,
            input,
            relax_mask,
            commit_mask,
            gates,
            relaxed,
            committed,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_ops_are_lane_wise() {
        let a = Lanes::<4>([0b1100, 0b1010, u64::MAX, 0]);
        let b = Lanes::<4>([0b1010, 0b1010, 0, u64::MAX]);
        assert_eq!(a.xor(b).0, [0b0110, 0, u64::MAX, u64::MAX]);
        assert_eq!(a.and(b).0, [0b1000, 0b1010, 0, 0]);
        assert_eq!(a.or(b).0, [0b1110, 0b1010, u64::MAX, u64::MAX]);
        assert_eq!(a.and_not(b).0, [0b0100, 0, u64::MAX, 0]);
        assert_eq!((!a).0[3], u64::MAX);
        assert_eq!(a.popcounts(), [2, 2, 64, 0]);
        assert_eq!(Lanes::<4>::splat(7).0, [7; 4]);
    }

    #[test]
    fn lanes_load_store_roundtrip() {
        let words = [1u64, 2, 3, 4, 5];
        let lanes = Lanes::<4>::load(&words);
        let mut out = [0u64; 5];
        lanes.store(&mut out);
        assert_eq!(out, [1, 2, 3, 4, 0]);
    }

    #[test]
    fn dispatch_names_roundtrip() {
        for dispatch in Dispatch::ALL {
            assert_eq!(Dispatch::from_name(dispatch.name()), Some(dispatch));
            assert_eq!(
                Dispatch::from_name(&dispatch.name().to_ascii_uppercase()),
                Some(dispatch)
            );
            assert_eq!(dispatch.to_string(), dispatch.name());
        }
        assert_eq!(Dispatch::from_name("widest"), None);
        assert_eq!(Dispatch::from_name("avx1024"), None);
    }

    #[test]
    fn portable_paths_are_always_available_and_detect_returns_available() {
        for dispatch in [Dispatch::Scalar, Dispatch::Lanes4, Dispatch::Lanes8] {
            assert!(dispatch.is_available());
        }
        let widest = Dispatch::detect();
        assert!(widest.is_available());
        assert!(Dispatch::available().contains(&widest));
        assert!(Dispatch::available().contains(&Dispatch::Scalar));
    }

    #[test]
    fn unavailable_dispatch_error_renders_the_alternatives() {
        // Some hardware path is always foreign to the compiled architecture.
        let foreign = if cfg!(target_arch = "aarch64") {
            Dispatch::Avx2
        } else {
            Dispatch::Neon
        };
        assert!(!foreign.is_available());
        let error = UnavailableDispatch { requested: foreign };
        let text = error.to_string();
        assert!(text.contains(foreign.name()));
        assert!(text.contains("scalar"));
    }
}
