//! Colour histograms and mean-threshold binarisation (paper §III-A).
//!
//! For every segmented moving object the paper builds a 768-bin histogram —
//! 256 bins per RGB channel — over the pixels of the object's silhouette,
//! then converts it into a 768-bit binary signature by thresholding each bin
//! at the mean bin count θ (Eq. 1–2, Fig. 2): bins ≥ θ map to `1`, the rest
//! to `0`.

use serde::{Deserialize, Serialize};

use crate::bitvec::BinaryVector;
use crate::error::SignatureError;
use crate::image::Rgb;

/// Number of histogram bins per colour channel.
pub const BINS_PER_CHANNEL: usize = 256;

/// Total number of histogram bins (three channels).
pub const HISTOGRAM_BINS: usize = 3 * BINS_PER_CHANNEL;

/// A 768-bin RGB colour histogram.
///
/// Bins `0..256` count red values, `256..512` green values and `512..768`
/// blue values, matching the concatenation order used throughout the paper.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::{ColorHistogram, Rgb};
///
/// let mut hist = ColorHistogram::new();
/// hist.add_pixel(Rgb::new(255, 0, 0));
/// hist.add_pixel(Rgb::new(255, 10, 0));
/// assert_eq!(hist.pixel_count(), 2);
/// assert_eq!(hist.red()[255], 2);
/// let signature = hist.to_signature();
/// assert!(signature.bit(255)); // the red-255 bin is above the mean
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColorHistogram {
    bins: Vec<u32>,
    pixel_count: u64,
}

impl ColorHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        ColorHistogram {
            bins: vec![0; HISTOGRAM_BINS],
            pixel_count: 0,
        }
    }

    /// Builds a histogram from an iterator of pixels.
    pub fn from_pixels<I>(pixels: I) -> Self
    where
        I: IntoIterator<Item = Rgb>,
    {
        let mut hist = Self::new();
        for p in pixels {
            hist.add_pixel(p);
        }
        hist
    }

    /// Builds a histogram directly from raw bin counts.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::LengthMismatch`] unless exactly
    /// [`HISTOGRAM_BINS`] counts are provided.
    pub fn from_bins(bins: Vec<u32>) -> Result<Self, SignatureError> {
        if bins.len() != HISTOGRAM_BINS {
            return Err(SignatureError::LengthMismatch {
                left: bins.len(),
                right: HISTOGRAM_BINS,
            });
        }
        // Each pixel contributes one count to each of the three channels, so
        // the per-channel totals are equal for a histogram built from pixels;
        // for raw bins we take the red-channel total as the pixel count.
        let pixel_count = bins[..BINS_PER_CHANNEL].iter().map(|&c| u64::from(c)).sum();
        Ok(ColorHistogram { bins, pixel_count })
    }

    /// Adds a single pixel's colour to the histogram.
    pub fn add_pixel(&mut self, pixel: Rgb) {
        self.bins[pixel.r as usize] += 1;
        self.bins[BINS_PER_CHANNEL + pixel.g as usize] += 1;
        self.bins[2 * BINS_PER_CHANNEL + pixel.b as usize] += 1;
        self.pixel_count += 1;
    }

    /// Merges another histogram into this one bin-by-bin.
    pub fn merge(&mut self, other: &ColorHistogram) {
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += *b;
        }
        self.pixel_count += other.pixel_count;
    }

    /// Number of pixels accumulated.
    pub fn pixel_count(&self) -> u64 {
        self.pixel_count
    }

    /// All 768 bins in channel order (R, G, B).
    pub fn bins(&self) -> &[u32] {
        &self.bins
    }

    /// The 256 red-channel bins.
    pub fn red(&self) -> &[u32] {
        &self.bins[..BINS_PER_CHANNEL]
    }

    /// The 256 green-channel bins.
    pub fn green(&self) -> &[u32] {
        &self.bins[BINS_PER_CHANNEL..2 * BINS_PER_CHANNEL]
    }

    /// The 256 blue-channel bins.
    pub fn blue(&self) -> &[u32] {
        &self.bins[2 * BINS_PER_CHANNEL..]
    }

    /// The mean bin value θ of Eq. 1: the sum of all bins divided by the
    /// number of bins.
    pub fn mean_threshold(&self) -> f64 {
        let total: u64 = self.bins.iter().map(|&c| u64::from(c)).sum();
        total as f64 / HISTOGRAM_BINS as f64
    }

    /// Converts the histogram to a binary signature by thresholding each bin
    /// at the mean (Eq. 2): `1` where `bin >= θ`, `0` otherwise.
    pub fn to_signature(&self) -> BinaryVector {
        self.to_signature_with_threshold(self.mean_threshold())
    }

    /// Converts the histogram to a binary signature using an explicit
    /// threshold instead of the mean. Used by the binarisation ablation.
    pub fn to_signature_with_threshold(&self, threshold: f64) -> BinaryVector {
        BinaryVector::from_bits(self.bins.iter().map(|&c| f64::from(c) >= threshold))
    }

    /// The median bin value, used by the median-threshold ablation.
    pub fn median_threshold(&self) -> f64 {
        let mut sorted: Vec<u32> = self.bins.clone();
        sorted.sort_unstable();
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            f64::from(sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            f64::from(sorted[mid])
        }
    }

    /// L1 (sum of absolute differences) distance between two histograms.
    pub fn l1_distance(&self, other: &ColorHistogram) -> u64 {
        self.bins
            .iter()
            .zip(&other.bins)
            .map(|(&a, &b)| u64::from(a.abs_diff(b)))
            .sum()
    }

    /// Normalises the histogram into per-bin probabilities.
    ///
    /// Returns an all-zero distribution for an empty histogram.
    pub fn to_distribution(&self) -> Vec<f64> {
        let total: u64 = self.bins.iter().map(|&c| u64::from(c)).sum();
        if total == 0 {
            return vec![0.0; HISTOGRAM_BINS];
        }
        self.bins
            .iter()
            .map(|&c| f64::from(c) / total as f64)
            .collect()
    }
}

impl Default for ColorHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<Rgb> for ColorHistogram {
    fn from_iter<T: IntoIterator<Item = Rgb>>(iter: T) -> Self {
        Self::from_pixels(iter)
    }
}

impl Extend<Rgb> for ColorHistogram {
    fn extend<T: IntoIterator<Item = Rgb>>(&mut self, iter: T) {
        for p in iter {
            self.add_pixel(p);
        }
    }
}

/// A small, generic histogram binarisation helper mirroring Fig. 2 of the
/// paper, which illustrates the thresholding on a 16-bin example.
///
/// Returns one output bit per input bin: `1` where the bin is greater than or
/// equal to the mean of all bins, `0` otherwise.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::histogram::binarize_at_mean;
///
/// // Fig. 2-style toy histogram.
/// let bins = [5u32, 1, 7, 6, 8, 0, 9, 2, 6, 1, 5, 4, 0, 1, 0, 3];
/// let bits = binarize_at_mean(&bins);
/// assert_eq!(bits.len(), 16);
/// ```
pub fn binarize_at_mean(bins: &[u32]) -> BinaryVector {
    if bins.is_empty() {
        return BinaryVector::zeros(0);
    }
    let total: u64 = bins.iter().map(|&c| u64::from(c)).sum();
    let mean = total as f64 / bins.len() as f64;
    BinaryVector::from_bits(bins.iter().map(|&c| f64::from(c) >= mean))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_properties() {
        let h = ColorHistogram::new();
        assert_eq!(h.pixel_count(), 0);
        assert_eq!(h.bins().len(), HISTOGRAM_BINS);
        assert_eq!(h.mean_threshold(), 0.0);
        // With θ = 0 every bin satisfies bin >= θ, so the signature is all ones.
        assert_eq!(h.to_signature().count_ones(), HISTOGRAM_BINS);
        assert_eq!(h, ColorHistogram::default());
    }

    #[test]
    fn add_pixel_updates_all_three_channels() {
        let mut h = ColorHistogram::new();
        h.add_pixel(Rgb::new(10, 20, 30));
        assert_eq!(h.red()[10], 1);
        assert_eq!(h.green()[20], 1);
        assert_eq!(h.blue()[30], 1);
        assert_eq!(h.pixel_count(), 1);
        let total: u32 = h.bins().iter().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn mean_threshold_matches_equation_one() {
        let mut h = ColorHistogram::new();
        for _ in 0..768 {
            h.add_pixel(Rgb::new(0, 0, 0));
        }
        // 768 pixels: bins r=0, g=256.., b=512.. each hold 768; total = 3*768.
        let expected = (3.0 * 768.0) / 768.0;
        assert!((h.mean_threshold() - expected).abs() < 1e-9);
    }

    #[test]
    fn signature_has_one_bit_per_bin() {
        let h = ColorHistogram::from_pixels((0..100).map(|i| Rgb::new(i as u8, 100, 200)));
        let sig = h.to_signature();
        assert_eq!(sig.len(), HISTOGRAM_BINS);
    }

    #[test]
    fn uniform_pixel_colour_sets_exactly_three_bits() {
        // All pixels identical: exactly three bins are non-zero, and they are
        // far above the mean, so the signature has exactly three ones.
        let h = ColorHistogram::from_pixels((0..500).map(|_| Rgb::new(12, 200, 45)));
        let sig = h.to_signature();
        assert_eq!(sig.count_ones(), 3);
        assert!(sig.bit(12));
        assert!(sig.bit(BINS_PER_CHANNEL + 200));
        assert!(sig.bit(2 * BINS_PER_CHANNEL + 45));
    }

    #[test]
    fn from_bins_validates_length() {
        assert!(ColorHistogram::from_bins(vec![0; 10]).is_err());
        let h = ColorHistogram::from_bins(vec![1; HISTOGRAM_BINS]).unwrap();
        assert_eq!(h.pixel_count(), BINS_PER_CHANNEL as u64);
    }

    #[test]
    fn merge_adds_bins_and_counts() {
        let a = ColorHistogram::from_pixels([Rgb::new(1, 2, 3)]);
        let b = ColorHistogram::from_pixels([Rgb::new(1, 5, 6), Rgb::new(9, 9, 9)]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.pixel_count(), 3);
        assert_eq!(merged.red()[1], 2);
        assert_eq!(merged.red()[9], 1);
    }

    #[test]
    fn l1_distance_is_symmetric_and_zero_on_self() {
        let a = ColorHistogram::from_pixels((0..64).map(|i| Rgb::new(i, i, i)));
        let b = ColorHistogram::from_pixels((0..64).map(|i| Rgb::new(i, 255 - i, 128)));
        assert_eq!(a.l1_distance(&a), 0);
        assert_eq!(a.l1_distance(&b), b.l1_distance(&a));
        assert!(a.l1_distance(&b) > 0);
    }

    #[test]
    fn distribution_sums_to_one() {
        let h = ColorHistogram::from_pixels((0..200).map(|i| Rgb::new(i as u8, 0, 255)));
        let d = h.to_distribution();
        let sum: f64 = d.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(
            ColorHistogram::new().to_distribution().iter().sum::<f64>(),
            0.0
        );
    }

    #[test]
    fn median_threshold_of_mostly_empty_histogram_is_zero() {
        let h = ColorHistogram::from_pixels([Rgb::new(0, 0, 0)]);
        assert_eq!(h.median_threshold(), 0.0);
    }

    #[test]
    fn custom_threshold_changes_signature() {
        let h = ColorHistogram::from_pixels((0..100).map(|_| Rgb::new(7, 7, 7)));
        let loose = h.to_signature_with_threshold(0.5);
        let strict = h.to_signature_with_threshold(1e9);
        assert!(loose.count_ones() >= 3);
        assert_eq!(strict.count_ones(), 0);
    }

    #[test]
    fn binarize_at_mean_matches_figure_two_shape() {
        let bins = [5u32, 1, 7, 6, 8, 0, 9, 2, 6, 1, 5, 4, 0, 1, 0, 3];
        let mean: f64 = bins.iter().map(|&b| f64::from(b)).sum::<f64>() / 16.0;
        let bits = binarize_at_mean(&bins);
        for (i, &b) in bins.iter().enumerate() {
            assert_eq!(bits.bit(i), f64::from(b) >= mean, "bin {i}");
        }
    }

    #[test]
    fn binarize_at_mean_empty_input() {
        assert!(binarize_at_mean(&[]).is_empty());
    }

    #[test]
    fn extend_and_collect() {
        let mut h: ColorHistogram = (0..10).map(|i| Rgb::new(i, i, i)).collect();
        h.extend((10..20).map(|i| Rgb::new(i, i, i)));
        assert_eq!(h.pixel_count(), 20);
    }

    #[test]
    fn serde_roundtrip() {
        let h = ColorHistogram::from_pixels((0..50).map(|i| Rgb::new(i, 2 * i, 255 - i)));
        let json = serde_json::to_string(&h).unwrap();
        let back: ColorHistogram = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
