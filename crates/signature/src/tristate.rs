//! Tri-state weight vectors.
//!
//! The bSOM's neurons hold weights over the alphabet `{0, 1, #}` where `#`
//! ("don't care") matches either input bit. [`TriStateVector`] stores a
//! vector of such trits as two packed bit-planes:
//!
//! * the *care* plane — bit set ⇒ the trit is a concrete `0` or `1`;
//! * the *value* plane — meaningful only where the care bit is set.
//!
//! With this layout the #-aware Hamming distance of paper Eq. 3 is
//! `popcount((x ^ value) & care)`, which is exactly the bit-serial
//! computation the FPGA's Hamming-distance unit performs, twelve 64-bit words
//! at a time in software.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::bernoulli::MaskPlan;
use crate::bitvec::BinaryVector;
use crate::error::SignatureError;

/// One word of the word-parallel stochastic tri-state update: the new plane
/// words plus the exact bit sets that changed, so callers can maintain
/// incremental `#`-counts from popcount deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordUpdate {
    /// The updated value-plane word.
    pub value: u64,
    /// The updated care-plane word.
    pub care: u64,
    /// Bits that relaxed from a concrete mismatch to `#` this step.
    pub relaxed: u64,
    /// Bits that committed from `#` to the input value this step.
    pub committed: u64,
}

/// The word-parallel tri-state update kernel (one 64-bit plane word).
///
/// This is the whole reconstructed update rule of DESIGN.md §"The
/// reconstructed update rule" as three bitwise operations — exactly the
/// tri-state logic the paper's FPGA update block wires per weight bit, 64
/// lanes at a time:
///
/// * *relax*: concrete bits that disagree with the input
///   (`mismatch = (value ^ input) & care`) drop to `#` where `relax_mask`
///   is set — `care &= !(mismatch & relax_mask)`;
/// * *commit*: `#` bits (`!care`) take the input value where `commit_mask`
///   is set — care gains those bits, value copies the input there;
/// * agreeing bits are untouched by construction.
///
/// The masks are per-bit Bernoulli streams (see
/// [`bernoulli`](crate::bernoulli)); passing `!0` recovers the undamped
/// single-step rule. For the final partial word of a vector the caller must
/// AND `commit_mask` with the valid-lane mask — beyond-length lanes look
/// like `#` (`care = 0`) and would otherwise gain phantom care bits.
/// `relax_mask` needs no such masking: `mismatch ⊆ care` and tail care bits
/// are zero by the plane invariant.
///
/// The relaxed value bits are cleared so the value plane stays zero wherever
/// the care plane is (the invariant `TriStateVector::set` maintains).
#[inline]
pub fn update_word(
    value: u64,
    care: u64,
    input: u64,
    relax_mask: u64,
    commit_mask: u64,
) -> WordUpdate {
    let mismatch = (value ^ input) & care;
    let relaxed = mismatch & relax_mask;
    let committed = !care & commit_mask;
    WordUpdate {
        value: (value & !relaxed) | (input & committed),
        care: (care & !relaxed) | committed,
        relaxed,
        committed,
    }
}

/// Net change of one stochastic update: how many trits relaxed to `#` and
/// how many committed to concrete values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UpdateDelta {
    /// Trits that went concrete → `#`.
    pub relaxed: usize,
    /// Trits that went `#` → concrete.
    pub committed: usize,
}

impl UpdateDelta {
    /// Signed change in the vector's `#`-count.
    pub fn dont_care_delta(&self) -> i64 {
        self.relaxed as i64 - self.committed as i64
    }
}

/// A single tri-state value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Trit {
    /// Concrete zero: matches an input bit of `0`.
    Zero,
    /// Concrete one: matches an input bit of `1`.
    One,
    /// Don't care: matches either input bit and never contributes to the
    /// Hamming distance.
    DontCare,
}

impl Trit {
    /// Converts a boolean into the corresponding concrete trit.
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// Returns the concrete bit value, or `None` for [`Trit::DontCare`].
    pub fn as_bit(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::DontCare => None,
        }
    }

    /// Returns `true` if the trit matches the given input bit (a `#` matches
    /// anything).
    pub fn matches(self, bit: bool) -> bool {
        match self {
            Trit::Zero => !bit,
            Trit::One => bit,
            Trit::DontCare => true,
        }
    }

    /// The character used in the paper's notation: `'0'`, `'1'` or `'#'`.
    pub fn to_char(self) -> char {
        match self {
            Trit::Zero => '0',
            Trit::One => '1',
            Trit::DontCare => '#',
        }
    }

    /// Parses a trit from its character representation.
    ///
    /// Returns `None` for any character other than `'0'`, `'1'` or `'#'`.
    pub fn from_char(c: char) -> Option<Self> {
        match c {
            '0' => Some(Trit::Zero),
            '1' => Some(Trit::One),
            '#' => Some(Trit::DontCare),
            _ => None,
        }
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<bool> for Trit {
    fn from(bit: bool) -> Self {
        Trit::from_bit(bit)
    }
}

/// A fixed-length vector of [`Trit`]s, the weight representation of a bSOM
/// neuron.
///
/// # Examples
///
/// ```rust
/// use bsom_signature::{BinaryVector, TriStateVector, Trit};
///
/// let weight = TriStateVector::from_str("01#1").unwrap();
/// let input = BinaryVector::from_bit_str("0111").unwrap();
/// // The '#' position is ignored; only bit 1 (weight 1 vs input 1) and the
/// // others are compared, so the distance is 0.
/// assert_eq!(weight.hamming(&input).unwrap(), 0);
///
/// let far = BinaryVector::from_bit_str("1010").unwrap();
/// assert_eq!(weight.hamming(&far).unwrap(), 3);
/// assert_eq!(weight.get(2), Some(Trit::DontCare));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TriStateVector {
    /// Concrete bit values (meaningful only where `care` is set).
    value: BinaryVector,
    /// Care mask: set ⇒ concrete, clear ⇒ `#`.
    care: BinaryVector,
}

impl TriStateVector {
    /// Creates a vector of `len` don't-care (`#`) trits.
    ///
    /// A fully-`#` neuron has Hamming distance 0 to every input, a property
    /// the paper calls out explicitly ("for a neuron with 768 #'s, the
    /// Hamming distance will always be 0").
    pub fn all_dont_care(len: usize) -> Self {
        TriStateVector {
            value: BinaryVector::zeros(len),
            care: BinaryVector::zeros(len),
        }
    }

    /// Creates a vector of `len` concrete zeros.
    pub fn zeros(len: usize) -> Self {
        TriStateVector {
            value: BinaryVector::zeros(len),
            care: BinaryVector::ones(len),
        }
    }

    /// Creates a concrete tri-state vector from a binary vector (no `#`s).
    pub fn from_binary(bits: &BinaryVector) -> Self {
        TriStateVector {
            value: bits.clone(),
            care: BinaryVector::ones(bits.len()),
        }
    }

    /// Creates a vector from an iterator of trits.
    pub fn from_trits<I>(trits: I) -> Self
    where
        I: IntoIterator<Item = Trit>,
    {
        let trits: Vec<Trit> = trits.into_iter().collect();
        let mut v = Self::all_dont_care(trits.len());
        for (i, t) in trits.iter().enumerate() {
            v.set(i, *t);
        }
        v
    }

    /// Parses a vector from a string over `'0'`, `'1'` and `'#'`.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::IndexOutOfBounds`] identifying the byte
    /// offset of the first invalid character.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Result<Self, SignatureError> {
        let mut trits = Vec::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match Trit::from_char(c) {
                Some(t) => trits.push(t),
                None => {
                    return Err(SignatureError::IndexOutOfBounds {
                        index: i,
                        len: s.len(),
                    })
                }
            }
        }
        Ok(Self::from_trits(trits))
    }

    /// Creates a vector of `len` random *concrete* trits (no `#`s), matching
    /// the FPGA weight-initialisation block, which loads each neuron with a
    /// random binary image at start-up.
    pub fn random_concrete<R: Rng + ?Sized>(len: usize, rng: &mut R) -> Self {
        TriStateVector {
            value: BinaryVector::random(len, rng),
            care: BinaryVector::ones(len),
        }
    }

    /// Creates a vector of `len` random trits where each position is `#` with
    /// probability `dont_care_prob`, otherwise a uniformly random bit.
    ///
    /// # Panics
    ///
    /// Panics if `dont_care_prob` is not within `[0, 1]`.
    pub fn random_with_dont_care<R: Rng + ?Sized>(
        len: usize,
        dont_care_prob: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&dont_care_prob),
            "dont_care_prob must be within [0, 1], got {dont_care_prob}"
        );
        let mut v = Self::all_dont_care(len);
        for i in 0..len {
            if rng.gen::<f64>() >= dont_care_prob {
                v.set(i, Trit::from_bit(rng.gen()));
            }
        }
        v
    }

    /// Number of trits in the vector.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Returns `true` if the vector holds zero trits.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Returns the trit at `index`, or `None` if out of bounds.
    pub fn get(&self, index: usize) -> Option<Trit> {
        let care = self.care.get(index)?;
        if !care {
            return Some(Trit::DontCare);
        }
        Some(Trit::from_bit(self.value.bit(index)))
    }

    /// Returns the trit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn trit(&self, index: usize) -> Trit {
        self.get(index)
            .unwrap_or_else(|| panic!("trit index {index} out of bounds for length {}", self.len()))
    }

    /// Sets the trit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, trit: Trit) {
        match trit {
            Trit::DontCare => {
                self.care.set(index, false);
                self.value.set(index, false);
            }
            Trit::Zero => {
                self.care.set(index, true);
                self.value.set(index, false);
            }
            Trit::One => {
                self.care.set(index, true);
                self.value.set(index, true);
            }
        }
    }

    /// Number of `#` (don't care) positions.
    pub fn count_dont_care(&self) -> usize {
        self.care.count_zeros()
    }

    /// Number of concrete (`0`/`1`) positions.
    pub fn count_concrete(&self) -> usize {
        self.care.count_ones()
    }

    /// #-aware Hamming distance to a binary input vector (paper Eq. 3).
    ///
    /// Positions where the weight trit is `#` never contribute; elsewhere the
    /// distance counts bit disagreements.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::LengthMismatch`] if the lengths differ.
    pub fn hamming(&self, input: &BinaryVector) -> Result<usize, SignatureError> {
        if self.len() != input.len() {
            return Err(SignatureError::LengthMismatch {
                left: self.len(),
                right: input.len(),
            });
        }
        Ok(crate::batch::masked_hamming_words(
            self.value.as_words(),
            self.care.as_words(),
            input.as_words(),
        ))
    }

    /// #-aware Hamming distance between two tri-state vectors.
    ///
    /// A position contributes 1 only when *both* vectors are concrete there
    /// and their bits disagree. Used by the evaluation harness to measure how
    /// far apart two neurons are.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::LengthMismatch`] if the lengths differ.
    pub fn hamming_tristate(&self, other: &TriStateVector) -> Result<usize, SignatureError> {
        if self.len() != other.len() {
            return Err(SignatureError::LengthMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        Ok(self
            .value
            .as_words()
            .iter()
            .zip(other.value.as_words())
            .zip(self.care.as_words().iter().zip(other.care.as_words()))
            .map(|((a, b), (ca, cb))| ((a ^ b) & ca & cb).count_ones() as usize)
            .sum())
    }

    /// Returns `true` if every concrete trit matches the input bit at the
    /// same position (distance zero).
    pub fn matches(&self, input: &BinaryVector) -> bool {
        self.hamming(input).map(|d| d == 0).unwrap_or(false)
    }

    /// Collapses the tri-state vector to a binary vector, resolving each `#`
    /// to `dont_care_as`.
    ///
    /// The FPGA output-display block needs a concrete binary image per
    /// neuron; the paper displays `#` positions as background.
    pub fn to_binary(&self, dont_care_as: bool) -> BinaryVector {
        BinaryVector::from_bits((0..self.len()).map(|i| match self.trit(i) {
            Trit::Zero => false,
            Trit::One => true,
            Trit::DontCare => dont_care_as,
        }))
    }

    /// Iterator over the trits.
    pub fn iter(&self) -> TritIter<'_> {
        TritIter {
            vector: self,
            index: 0,
        }
    }

    /// Renders the vector using the paper's `0`/`1`/`#` notation.
    pub fn to_trit_string(&self) -> String {
        self.iter().map(Trit::to_char).collect()
    }

    /// Applies one word-parallel stochastic tri-state update against `input`
    /// (DESIGN.md §"The word-parallel trainer"): per 64-bit plane word, a
    /// relax mask and a commit mask are drawn from the given
    /// [`MaskPlan`]s — advancing `state` — and folded in with
    /// [`update_word`]. Returns how many trits relaxed and committed, so
    /// callers can maintain `#`-counts incrementally.
    ///
    /// Words with nothing to do consume no randomness: a word with no
    /// concrete mismatch skips its relax draw and a fully concrete word
    /// skips its commit draw (degenerate plans never draw at all). The RNG
    /// consumption is therefore data-dependent but still deterministic for
    /// a given state, and it differs from flipping one scalar coin per bit —
    /// the two paths are distributionally equivalent, not stream-identical.
    ///
    /// The word axis is walked in lane-width chunks through the
    /// lane-batched draw entry
    /// ([`draw_broadcast_masks_lanes`](crate::bernoulli::draw_broadcast_masks_lanes)),
    /// which consumes the xorshift64* stream in exact word order — so the
    /// chunked walk is stream- and bit-identical to the historical
    /// word-at-a-time loop (asserted by the `simd_equivalence` suite).
    ///
    /// The final partial word is handled internally: beyond-length lanes
    /// never relax, commit, or contribute to the deltas.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.len()`.
    pub fn stochastic_update(
        &mut self,
        input: &BinaryVector,
        relax: &MaskPlan,
        commit: &MaskPlan,
        state: &mut u64,
    ) -> UpdateDelta {
        /// Words per lane-batched draw (the AVX2-shaped lane width; the
        /// draw order makes the chunking invisible to the RNG stream).
        const DRAW_LANES: usize = 4;
        assert_eq!(
            self.len(),
            input.len(),
            "stochastic_update requires equal lengths ({} vs {})",
            self.len(),
            input.len()
        );
        let len = self.len();
        let mut delta = UpdateDelta::default();
        let values = self.value.as_mut_words();
        let cares = self.care.as_mut_words();
        let inputs = input.as_words();
        // Valid-lane mask: all ones except in the final partial word.
        let lane_mask_at = |w: usize| {
            if (w + 1) * 64 <= len {
                u64::MAX
            } else {
                (1u64 << (len % 64)) - 1
            }
        };
        // Applies the drawn mask pair to word `w` and accumulates deltas.
        let apply = |w: usize,
                     masks: crate::bernoulli::BroadcastMasks,
                     values: &mut [u64],
                     cares: &mut [u64],
                     delta: &mut UpdateDelta| {
            let updated = update_word(
                values[w],
                cares[w],
                inputs[w],
                masks.relax,
                masks.commit & lane_mask_at(w),
            );
            values[w] = updated.value;
            cares[w] = updated.care;
            delta.relaxed += updated.relaxed.count_ones() as usize;
            delta.committed += updated.committed.count_ones() as usize;
        };
        let wide = inputs.len() - inputs.len() % DRAW_LANES;
        let mut w = 0;
        while w < wide {
            // Skip draws that cannot change anything; the plane invariants
            // (tail care/value bits zero) make these checks exact. The
            // shared-draw case (relax == commit, both needed) is handled
            // per word by the broadcast drawing rule — see
            // [`crate::bernoulli::draw_broadcast_masks`].
            let mut needs_relax = [false; DRAW_LANES];
            let mut needs_commit = [false; DRAW_LANES];
            for k in 0..DRAW_LANES {
                needs_relax[k] = (values[w + k] ^ inputs[w + k]) & cares[w + k] != 0;
                needs_commit[k] = cares[w + k] != lane_mask_at(w + k);
            }
            let masks = crate::bernoulli::draw_broadcast_masks_lanes::<DRAW_LANES>(
                relax,
                commit,
                &needs_relax,
                &needs_commit,
                state,
            );
            for (k, &lane_masks) in masks.iter().enumerate() {
                apply(w + k, lane_masks, values, cares, &mut delta);
            }
            w += DRAW_LANES;
        }
        for w in wide..inputs.len() {
            let needs_relax = (values[w] ^ inputs[w]) & cares[w] != 0;
            let needs_commit = cares[w] != lane_mask_at(w);
            let masks = crate::bernoulli::draw_broadcast_masks(
                relax,
                commit,
                needs_relax,
                needs_commit,
                state,
            );
            apply(w, masks, values, cares, &mut delta);
        }
        delta
    }

    /// Overwrites plane word `w` with an updated (value, care) pair — the
    /// write-back half of the plane-sliced neighbourhood update, which runs
    /// on packed column words and then mirrors them into the per-neuron
    /// planes.
    ///
    /// The caller is responsible for the plane invariants the update kernels
    /// preserve by construction (both debug-asserted here): the value plane
    /// is zero wherever the care plane is, and lanes beyond the vector
    /// length are zero in both planes.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a valid word index.
    pub fn set_plane_word(&mut self, w: usize, value: u64, care: u64) {
        debug_assert_eq!(value & !care, 0, "value bits outside the care plane");
        let rem = self.len() % 64;
        if rem != 0 && (w + 1) * 64 > self.len() {
            let tail_mask = !((1u64 << rem) - 1);
            debug_assert_eq!(care & tail_mask, 0, "care tail bits beyond the length");
        }
        self.value.as_mut_words()[w] = value;
        self.care.as_mut_words()[w] = care;
    }

    /// The care bit-plane (set ⇒ concrete trit).
    pub fn care_plane(&self) -> &BinaryVector {
        &self.care
    }

    /// The value bit-plane (only meaningful where the care plane is set).
    pub fn value_plane(&self) -> &BinaryVector {
        &self.value
    }
}

impl fmt::Debug for TriStateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 64 {
            write!(f, "TriStateVector({})", self.to_trit_string())
        } else {
            write!(
                f,
                "TriStateVector(len={}, dont_care={}, head={}...)",
                self.len(),
                self.count_dont_care(),
                self.iter().take(32).map(Trit::to_char).collect::<String>()
            )
        }
    }
}

impl fmt::Display for TriStateVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_trit_string())
    }
}

impl Default for TriStateVector {
    fn default() -> Self {
        TriStateVector::all_dont_care(0)
    }
}

impl FromIterator<Trit> for TriStateVector {
    fn from_iter<T: IntoIterator<Item = Trit>>(iter: T) -> Self {
        TriStateVector::from_trits(iter)
    }
}

impl From<&BinaryVector> for TriStateVector {
    fn from(bits: &BinaryVector) -> Self {
        TriStateVector::from_binary(bits)
    }
}

/// Iterator over the trits of a [`TriStateVector`].
#[derive(Debug, Clone)]
pub struct TritIter<'a> {
    vector: &'a TriStateVector,
    index: usize,
}

impl Iterator for TritIter<'_> {
    type Item = Trit;

    fn next(&mut self) -> Option<Trit> {
        let trit = self.vector.get(self.index)?;
        self.index += 1;
        Some(trit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.vector.len() - self.index.min(self.vector.len());
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for TritIter<'_> {}

impl<'a> IntoIterator for &'a TriStateVector {
    type Item = Trit;
    type IntoIter = TritIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trit_matches_semantics() {
        assert!(Trit::Zero.matches(false));
        assert!(!Trit::Zero.matches(true));
        assert!(Trit::One.matches(true));
        assert!(!Trit::One.matches(false));
        assert!(Trit::DontCare.matches(true));
        assert!(Trit::DontCare.matches(false));
    }

    #[test]
    fn trit_char_roundtrip() {
        for t in [Trit::Zero, Trit::One, Trit::DontCare] {
            assert_eq!(Trit::from_char(t.to_char()), Some(t));
        }
        assert_eq!(Trit::from_char('x'), None);
    }

    #[test]
    fn trit_as_bit() {
        assert_eq!(Trit::Zero.as_bit(), Some(false));
        assert_eq!(Trit::One.as_bit(), Some(true));
        assert_eq!(Trit::DontCare.as_bit(), None);
        assert_eq!(Trit::from(true), Trit::One);
    }

    #[test]
    fn all_dont_care_has_zero_distance_to_everything() {
        let w = TriStateVector::all_dont_care(768);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let x = BinaryVector::random(768, &mut rng);
            assert_eq!(w.hamming(&x).unwrap(), 0);
        }
        assert_eq!(w.count_dont_care(), 768);
        assert_eq!(w.count_concrete(), 0);
    }

    #[test]
    fn concrete_vector_matches_binary_hamming() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = BinaryVector::random(768, &mut rng);
        let b = BinaryVector::random(768, &mut rng);
        let w = TriStateVector::from_binary(&a);
        assert_eq!(w.hamming(&b).unwrap(), a.hamming(&b).unwrap());
        assert_eq!(w.count_concrete(), 768);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let s = "01#10##1";
        let w = TriStateVector::from_str(s).unwrap();
        assert_eq!(w.to_trit_string(), s);
        assert_eq!(w.to_string(), s);
        assert_eq!(w.count_dont_care(), 3);
    }

    #[test]
    fn parse_rejects_invalid_characters() {
        let err = TriStateVector::from_str("01a").unwrap_err();
        assert_eq!(err, SignatureError::IndexOutOfBounds { index: 2, len: 3 });
    }

    #[test]
    fn hamming_ignores_dont_care_positions() {
        let w = TriStateVector::from_str("0#1#").unwrap();
        let x = BinaryVector::from_bit_str("0110").unwrap();
        assert_eq!(w.hamming(&x).unwrap(), 0);
        let y = BinaryVector::from_bit_str("1010").unwrap();
        // position 0 disagrees (0 vs 1), position 2 agrees, #s ignored.
        assert_eq!(w.hamming(&y).unwrap(), 1);
    }

    #[test]
    fn hamming_length_mismatch_errors() {
        let w = TriStateVector::all_dont_care(4);
        let x = BinaryVector::zeros(5);
        assert!(matches!(
            w.hamming(&x),
            Err(SignatureError::LengthMismatch { left: 4, right: 5 })
        ));
    }

    #[test]
    fn set_get_every_trit_kind() {
        let mut w = TriStateVector::zeros(5);
        w.set(0, Trit::One);
        w.set(1, Trit::DontCare);
        w.set(2, Trit::Zero);
        assert_eq!(w.trit(0), Trit::One);
        assert_eq!(w.trit(1), Trit::DontCare);
        assert_eq!(w.trit(2), Trit::Zero);
        assert_eq!(w.get(5), None);
        // Re-concretise a don't-care position.
        w.set(1, Trit::One);
        assert_eq!(w.trit(1), Trit::One);
    }

    #[test]
    fn to_binary_resolves_dont_care() {
        let w = TriStateVector::from_str("1#0#").unwrap();
        assert_eq!(w.to_binary(false).to_bit_string(), "1000");
        assert_eq!(w.to_binary(true).to_bit_string(), "1101");
    }

    #[test]
    fn tristate_hamming_counts_only_joint_concrete_disagreements() {
        let a = TriStateVector::from_str("01#1").unwrap();
        let b = TriStateVector::from_str("11#0").unwrap();
        // position 0: 0 vs 1 -> 1; position 1: equal; position 2: both # ; position 3: 1 vs 0 -> 1
        assert_eq!(a.hamming_tristate(&b).unwrap(), 2);
        let c = TriStateVector::from_str("####").unwrap();
        assert_eq!(a.hamming_tristate(&c).unwrap(), 0);
    }

    #[test]
    fn matches_is_distance_zero() {
        let w = TriStateVector::from_str("1##0").unwrap();
        assert!(w.matches(&BinaryVector::from_bit_str("1010").unwrap()));
        assert!(!w.matches(&BinaryVector::from_bit_str("0010").unwrap()));
        // length mismatch -> false, not panic
        assert!(!w.matches(&BinaryVector::zeros(3)));
    }

    #[test]
    fn random_concrete_has_no_dont_care() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = TriStateVector::random_concrete(768, &mut rng);
        assert_eq!(w.count_dont_care(), 0);
    }

    #[test]
    fn random_with_dont_care_prob_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let all = TriStateVector::random_with_dont_care(256, 1.0, &mut rng);
        assert_eq!(all.count_dont_care(), 256);
        let none = TriStateVector::random_with_dont_care(256, 0.0, &mut rng);
        assert_eq!(none.count_dont_care(), 0);
    }

    #[test]
    #[should_panic(expected = "dont_care_prob")]
    fn random_with_dont_care_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let _ = TriStateVector::random_with_dont_care(8, 1.5, &mut rng);
    }

    #[test]
    fn iterator_and_collect_roundtrip() {
        let w = TriStateVector::from_str("0#11#0").unwrap();
        let collected: TriStateVector = w.iter().collect();
        assert_eq!(collected, w);
        assert_eq!(w.iter().len(), 6);
    }

    #[test]
    fn update_word_undamped_rule_matches_trit_table() {
        // weight 01#, input 001 (LSB first: bit0=0, bit1=0, bit2=1).
        let w = TriStateVector::from_str("01#").unwrap();
        let x = BinaryVector::from_bit_str("001").unwrap();
        let up = update_word(
            w.value_plane().as_words()[0],
            w.care_plane().as_words()[0],
            x.as_words()[0],
            u64::MAX,
            0b111,
        );
        let out = TriStateVector {
            value: BinaryVector::from_bits((0..3).map(|i| (up.value >> i) & 1 == 1)),
            care: BinaryVector::from_bits((0..3).map(|i| (up.care >> i) & 1 == 1)),
        };
        // keep 0, relax 1 -> #, commit # -> 1.
        assert_eq!(out.to_trit_string(), "0#1");
        assert_eq!(up.relaxed.count_ones(), 1);
        assert_eq!(up.committed.count_ones(), 1);
    }

    #[test]
    fn update_word_masks_gate_every_change() {
        let w = TriStateVector::from_str("1111####").unwrap();
        let x = BinaryVector::from_bit_str("00000000").unwrap();
        let up = update_word(
            w.value_plane().as_words()[0],
            w.care_plane().as_words()[0],
            x.as_words()[0],
            0,
            0,
        );
        assert_eq!(up.value, w.value_plane().as_words()[0]);
        assert_eq!(up.care, w.care_plane().as_words()[0]);
        assert_eq!(up.relaxed, 0);
        assert_eq!(up.committed, 0);
    }

    #[test]
    fn stochastic_update_undamped_matches_bitwise_rule_per_position() {
        let mut rng = StdRng::seed_from_u64(0x0DD);
        for len in [63usize, 64, 70, 128, 768] {
            let mut w = TriStateVector::random_with_dont_care(len, 0.3, &mut rng);
            let before = w.clone();
            let x = BinaryVector::random(len, &mut rng);
            let mut state = 0x1357_9BDF_u64;
            let always = MaskPlan::from_probability(1.0);
            let delta = w.stochastic_update(&x, &always, &always, &mut state);
            assert_eq!(state, 0x1357_9BDF, "undamped update draws nothing");
            for k in 0..len {
                let expected = match before.trit(k) {
                    Trit::DontCare => Trit::from_bit(x.bit(k)),
                    t if t.matches(x.bit(k)) => t,
                    _ => Trit::DontCare,
                };
                assert_eq!(w.trit(k), expected, "len {len}, position {k}");
            }
            assert_eq!(delta.committed, before.count_dont_care());
            assert_eq!(
                w.count_dont_care() as i64,
                before.count_dont_care() as i64 + delta.dont_care_delta()
            );
        }
    }

    #[test]
    fn stochastic_update_keeps_the_tail_clean() {
        let mut rng = StdRng::seed_from_u64(0x7A11);
        // 70 bits: 6 valid lanes in the second word, 58 tail lanes.
        let mut w = TriStateVector::all_dont_care(70);
        let x = BinaryVector::random(70, &mut rng);
        let always = MaskPlan::from_probability(1.0);
        let mut state = 3u64;
        let delta = w.stochastic_update(&x, &always, &always, &mut state);
        assert_eq!(delta.committed, 70, "every valid lane commits");
        assert_eq!(w.count_dont_care(), 0);
        let tail_mask = !((1u64 << 6) - 1);
        assert_eq!(w.care_plane().as_words()[1] & tail_mask, 0);
        assert_eq!(w.value_plane().as_words()[1] & tail_mask, 0);
    }

    #[test]
    fn stochastic_update_probability_zero_is_identity_and_free() {
        let mut rng = StdRng::seed_from_u64(0xF00);
        let mut w = TriStateVector::random_with_dont_care(130, 0.4, &mut rng);
        let before = w.clone();
        let x = BinaryVector::random(130, &mut rng);
        let never = MaskPlan::never();
        let mut state = 11u64;
        let delta = w.stochastic_update(&x, &never, &never, &mut state);
        assert_eq!(w, before);
        assert_eq!(delta, UpdateDelta::default());
        assert_eq!(state, 11);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn stochastic_update_rejects_length_mismatch() {
        let mut w = TriStateVector::all_dont_care(8);
        let x = BinaryVector::zeros(9);
        let plan = MaskPlan::from_probability(0.5);
        let mut state = 1u64;
        let _ = w.stochastic_update(&x, &plan, &plan, &mut state);
    }

    #[test]
    fn serde_roundtrip() {
        let w = TriStateVector::from_str("01#10##1").unwrap();
        let json = serde_json::to_string(&w).unwrap();
        let back: TriStateVector = serde_json::from_str(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn debug_output_is_never_empty() {
        assert!(!format!("{:?}", TriStateVector::default()).is_empty());
        assert!(!format!("{:?}", TriStateVector::all_dont_care(768)).is_empty());
    }
}
