//! Minimal image containers used by the surveillance substrate and the FPGA
//! pattern-input / display blocks.
//!
//! The paper's FPGA design exchanges binary signatures as 32 × 24 binary
//! images (768 bits); the CPU-side tracker works on RGB frames and object
//! silhouettes. These types are deliberately small — they exist so that the
//! vision, dataset and FPGA crates share one representation, not to be a
//! general imaging library.

use serde::{Deserialize, Serialize};

use crate::bitvec::BinaryVector;
use crate::error::SignatureError;
use crate::histogram::ColorHistogram;

/// Width of the binary-image framing of a signature (paper §V-A: 32 × 24).
pub const SIGNATURE_WIDTH: usize = 32;

/// Height of the binary-image framing of a signature (paper §V-A: 32 × 24).
pub const SIGNATURE_HEIGHT: usize = 24;

/// An 8-bit-per-channel RGB colour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rgb {
    /// Red component.
    pub r: u8,
    /// Green component.
    pub g: u8,
    /// Blue component.
    pub b: u8,
}

impl Rgb {
    /// Creates a colour from its components.
    pub fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Pure black, the background colour of the synthetic scenes.
    pub const BLACK: Rgb = Rgb { r: 0, g: 0, b: 0 };

    /// Pure white.
    pub const WHITE: Rgb = Rgb {
        r: 255,
        g: 255,
        b: 255,
    };

    /// Per-channel saturating addition of a signed brightness offset, used to
    /// model lighting drift in the synthetic scenes.
    pub fn brightened(self, delta: i16) -> Rgb {
        let adjust = |c: u8| -> u8 { (i16::from(c) + delta).clamp(0, 255) as u8 };
        Rgb::new(adjust(self.r), adjust(self.g), adjust(self.b))
    }

    /// Squared Euclidean distance between two colours, used by the background
    /// subtractor's change test.
    pub fn distance_sq(self, other: Rgb) -> u32 {
        let dr = i32::from(self.r) - i32::from(other.r);
        let dg = i32::from(self.g) - i32::from(other.g);
        let db = i32::from(self.b) - i32::from(other.b);
        (dr * dr + dg * dg + db * db) as u32
    }
}

impl From<(u8, u8, u8)> for Rgb {
    fn from((r, g, b): (u8, u8, u8)) -> Self {
        Rgb::new(r, g, b)
    }
}

/// A dense, row-major RGB image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RgbImage {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl RgbImage {
    /// Creates an image filled with a single colour.
    pub fn filled(width: usize, height: usize, colour: Rgb) -> Self {
        RgbImage {
            width,
            height,
            pixels: vec![colour; width * height],
        }
    }

    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Self {
        Self::filled(width, height, Rgb::BLACK)
    }

    /// Builds an image from a row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::DimensionMismatch`] if the buffer length is
    /// not `width * height`.
    pub fn from_pixels(
        width: usize,
        height: usize,
        pixels: Vec<Rgb>,
    ) -> Result<Self, SignatureError> {
        if pixels.len() != width * height {
            return Err(SignatureError::DimensionMismatch {
                width,
                height,
                pixels: pixels.len(),
            });
        }
        Ok(RgbImage {
            width,
            height,
            pixels,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of pixels.
    pub fn area(&self) -> usize {
        self.width * self.height
    }

    /// Returns the pixel at `(x, y)`, or `None` when out of bounds.
    pub fn get(&self, x: usize, y: usize) -> Option<Rgb> {
        if x >= self.width || y >= self.height {
            return None;
        }
        Some(self.pixels[y * self.width + x])
    }

    /// Returns the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    pub fn pixel(&self, x: usize, y: usize) -> Rgb {
        self.get(x, y).unwrap_or_else(|| {
            panic!(
                "pixel ({x}, {y}) out of bounds for {}x{} image",
                self.width, self.height
            )
        })
    }

    /// Sets the pixel at `(x, y)`; out-of-bounds writes are ignored so that
    /// scene renderers can draw shapes that partially leave the frame.
    pub fn set(&mut self, x: usize, y: usize, colour: Rgb) {
        if x < self.width && y < self.height {
            self.pixels[y * self.width + x] = colour;
        }
    }

    /// Row-major pixel buffer.
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Iterator over `(x, y, colour)` triples in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (usize, usize, Rgb)> + '_ {
        let width = self.width;
        self.pixels
            .iter()
            .enumerate()
            .map(move |(i, &p)| (i % width, i / width, p))
    }

    /// Builds the colour histogram of the pixels selected by `mask`.
    ///
    /// This is the histogram-of-silhouette operation of paper §III-A: only
    /// pixels where the mask is set contribute.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::DimensionMismatch`] if the mask dimensions
    /// differ from the image dimensions.
    pub fn masked_histogram(&self, mask: &Silhouette) -> Result<ColorHistogram, SignatureError> {
        if mask.width() != self.width || mask.height() != self.height {
            return Err(SignatureError::DimensionMismatch {
                width: mask.width(),
                height: mask.height(),
                pixels: self.pixels.len(),
            });
        }
        let mut hist = ColorHistogram::new();
        for (x, y, colour) in self.enumerate_pixels() {
            if mask.get(x, y).unwrap_or(false) {
                hist.add_pixel(colour);
            }
        }
        Ok(hist)
    }
}

/// A binary image (one bit per pixel) backed by a [`BinaryVector`].
///
/// Binary images serve two roles in the reproduction: as the 32 × 24 framing
/// of a signature exchanged with the FPGA, and as foreground masks produced
/// by the background subtractor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryImage {
    width: usize,
    height: usize,
    bits: BinaryVector,
}

impl BinaryImage {
    /// Creates an all-zero binary image.
    pub fn new(width: usize, height: usize) -> Self {
        BinaryImage {
            width,
            height,
            bits: BinaryVector::zeros(width * height),
        }
    }

    /// Wraps an existing bit vector as an image.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::DimensionMismatch`] if `bits.len()` is not
    /// `width * height`.
    pub fn from_bits(
        width: usize,
        height: usize,
        bits: BinaryVector,
    ) -> Result<Self, SignatureError> {
        if bits.len() != width * height {
            return Err(SignatureError::DimensionMismatch {
                width,
                height,
                pixels: bits.len(),
            });
        }
        Ok(BinaryImage {
            width,
            height,
            bits,
        })
    }

    /// Frames a 768-bit signature as the paper's 32 × 24 binary image.
    ///
    /// # Errors
    ///
    /// Returns [`SignatureError::LengthMismatch`] if the signature is not
    /// exactly 768 bits.
    pub fn from_signature(signature: &BinaryVector) -> Result<Self, SignatureError> {
        if signature.len() != SIGNATURE_WIDTH * SIGNATURE_HEIGHT {
            return Err(SignatureError::LengthMismatch {
                left: signature.len(),
                right: SIGNATURE_WIDTH * SIGNATURE_HEIGHT,
            });
        }
        Self::from_bits(SIGNATURE_WIDTH, SIGNATURE_HEIGHT, signature.clone())
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Returns the bit at `(x, y)`, or `None` when out of bounds.
    pub fn get(&self, x: usize, y: usize) -> Option<bool> {
        if x >= self.width || y >= self.height {
            return None;
        }
        self.bits.get(y * self.width + x)
    }

    /// Sets the bit at `(x, y)`; out-of-bounds writes are ignored.
    pub fn set(&mut self, x: usize, y: usize, value: bool) {
        if x < self.width && y < self.height {
            self.bits.set(y * self.width + x, value);
        }
    }

    /// Number of set (foreground) pixels.
    pub fn count_ones(&self) -> usize {
        self.bits.count_ones()
    }

    /// The underlying bit vector in row-major order.
    pub fn as_vector(&self) -> &BinaryVector {
        &self.bits
    }

    /// Consumes the image and returns the underlying bit vector.
    pub fn into_vector(self) -> BinaryVector {
        self.bits
    }

    /// Renders the image as rows of `'#'` (set) and `'.'` (clear) characters,
    /// the format used by the examples to visualise neuron weights.
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                out.push(if self.get(x, y).unwrap_or(false) {
                    '#'
                } else {
                    '.'
                });
            }
            out.push('\n');
        }
        out
    }
}

/// A silhouette: the foreground mask of one segmented object, in full-frame
/// coordinates.
///
/// This is a semantic alias for [`BinaryImage`] kept as a newtype so that
/// masks and signature framings cannot be confused.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Silhouette(BinaryImage);

impl Silhouette {
    /// Creates an empty (all-background) silhouette.
    pub fn new(width: usize, height: usize) -> Self {
        Silhouette(BinaryImage::new(width, height))
    }

    /// Wraps a binary mask as a silhouette.
    pub fn from_mask(mask: BinaryImage) -> Self {
        Silhouette(mask)
    }

    /// Silhouette width in pixels.
    pub fn width(&self) -> usize {
        self.0.width()
    }

    /// Silhouette height in pixels.
    pub fn height(&self) -> usize {
        self.0.height()
    }

    /// Returns the mask bit at `(x, y)`, or `None` when out of bounds.
    pub fn get(&self, x: usize, y: usize) -> Option<bool> {
        self.0.get(x, y)
    }

    /// Marks the pixel at `(x, y)` as foreground.
    pub fn mark(&mut self, x: usize, y: usize) {
        self.0.set(x, y, true);
    }

    /// Number of foreground pixels — the object's area. The paper filters
    /// objects with fewer than 768 pixels as noise.
    pub fn area(&self) -> usize {
        self.0.count_ones()
    }

    /// Access to the underlying binary mask.
    pub fn as_mask(&self) -> &BinaryImage {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_constructors_and_conversion() {
        let c = Rgb::new(1, 2, 3);
        assert_eq!(Rgb::from((1, 2, 3)), c);
        assert_eq!(Rgb::default(), Rgb::BLACK);
    }

    #[test]
    fn rgb_brightened_saturates() {
        assert_eq!(
            Rgb::new(250, 10, 128).brightened(20),
            Rgb::new(255, 30, 148)
        );
        assert_eq!(Rgb::new(5, 200, 0).brightened(-20), Rgb::new(0, 180, 0));
    }

    #[test]
    fn rgb_distance_sq() {
        assert_eq!(Rgb::BLACK.distance_sq(Rgb::BLACK), 0);
        assert_eq!(Rgb::BLACK.distance_sq(Rgb::WHITE), 3 * 255 * 255);
        let a = Rgb::new(10, 20, 30);
        let b = Rgb::new(13, 16, 30);
        assert_eq!(a.distance_sq(b), 9 + 16);
    }

    #[test]
    fn rgb_image_get_set_bounds() {
        let mut img = RgbImage::new(4, 3);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.area(), 12);
        img.set(3, 2, Rgb::WHITE);
        assert_eq!(img.pixel(3, 2), Rgb::WHITE);
        assert_eq!(img.get(4, 0), None);
        assert_eq!(img.get(0, 3), None);
        // Out-of-bounds set must be a no-op, not a panic.
        img.set(100, 100, Rgb::WHITE);
    }

    #[test]
    fn rgb_image_from_pixels_validates() {
        assert!(RgbImage::from_pixels(2, 2, vec![Rgb::BLACK; 3]).is_err());
        assert!(RgbImage::from_pixels(2, 2, vec![Rgb::BLACK; 4]).is_ok());
    }

    #[test]
    fn enumerate_pixels_is_row_major() {
        let mut img = RgbImage::new(2, 2);
        img.set(1, 0, Rgb::WHITE);
        let coords: Vec<(usize, usize)> = img.enumerate_pixels().map(|(x, y, _)| (x, y)).collect();
        assert_eq!(coords, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn masked_histogram_counts_only_masked_pixels() {
        let mut img = RgbImage::filled(4, 4, Rgb::new(50, 60, 70));
        img.set(0, 0, Rgb::new(200, 0, 0));
        let mut mask = Silhouette::new(4, 4);
        mask.mark(0, 0);
        mask.mark(1, 1);
        let hist = img.masked_histogram(&mask).unwrap();
        assert_eq!(hist.pixel_count(), 2);
        assert_eq!(hist.red()[200], 1);
        assert_eq!(hist.red()[50], 1);
    }

    #[test]
    fn masked_histogram_rejects_dimension_mismatch() {
        let img = RgbImage::new(4, 4);
        let mask = Silhouette::new(3, 4);
        assert!(img.masked_histogram(&mask).is_err());
    }

    #[test]
    fn binary_image_roundtrips_signature() {
        let sig = BinaryVector::from_bits((0..768).map(|i| i % 5 == 0));
        let img = BinaryImage::from_signature(&sig).unwrap();
        assert_eq!(img.width(), SIGNATURE_WIDTH);
        assert_eq!(img.height(), SIGNATURE_HEIGHT);
        assert_eq!(img.as_vector(), &sig);
        assert_eq!(img.clone().into_vector(), sig);
    }

    #[test]
    fn binary_image_rejects_wrong_signature_length() {
        let sig = BinaryVector::zeros(767);
        assert!(BinaryImage::from_signature(&sig).is_err());
        assert!(BinaryImage::from_bits(10, 10, BinaryVector::zeros(99)).is_err());
    }

    #[test]
    fn binary_image_get_set() {
        let mut img = BinaryImage::new(8, 4);
        img.set(7, 3, true);
        assert_eq!(img.get(7, 3), Some(true));
        assert_eq!(img.get(8, 0), None);
        assert_eq!(img.count_ones(), 1);
        img.set(100, 100, true); // ignored
        assert_eq!(img.count_ones(), 1);
    }

    #[test]
    fn ascii_rendering_has_expected_shape() {
        let mut img = BinaryImage::new(3, 2);
        img.set(0, 0, true);
        img.set(2, 1, true);
        assert_eq!(img.to_ascii(), "#..\n..#\n");
    }

    #[test]
    fn silhouette_area_counts_marks() {
        let mut s = Silhouette::new(10, 10);
        assert_eq!(s.area(), 0);
        for i in 0..10 {
            s.mark(i, i);
        }
        assert_eq!(s.area(), 10);
        assert_eq!(s.get(3, 3), Some(true));
        assert_eq!(s.get(3, 4), Some(false));
        assert_eq!(s.as_mask().count_ones(), 10);
    }

    #[test]
    fn serde_roundtrip_images() {
        let mut img = RgbImage::new(4, 2);
        img.set(1, 1, Rgb::new(9, 8, 7));
        let json = serde_json::to_string(&img).unwrap();
        assert_eq!(serde_json::from_str::<RgbImage>(&json).unwrap(), img);

        let sig = BinaryVector::from_bits((0..768).map(|i| i % 2 == 0));
        let bimg = BinaryImage::from_signature(&sig).unwrap();
        let json = serde_json::to_string(&bimg).unwrap();
        assert_eq!(serde_json::from_str::<BinaryImage>(&json).unwrap(), bimg);
    }
}
