//! Focused unit tests for the two invariants every downstream layer depends
//! on: the tri-state (#-aware) Hamming distance of paper Eq. 3 and the
//! mean-threshold binarisation of paper Eq. 1–2.

use bsom_signature::{BinaryVector, ColorHistogram, Rgb, TriStateVector, Trit, HISTOGRAM_BINS};
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Tri-state Hamming distance (Eq. 3)
// ---------------------------------------------------------------------------

#[test]
fn dont_care_matches_both_bits() {
    // A `#` trit matches 0 and 1 alike...
    assert!(Trit::DontCare.matches(false));
    assert!(Trit::DontCare.matches(true));

    // ...and contributes nothing to the distance, whatever the input bit.
    let hash = TriStateVector::from_str("#").unwrap();
    let zero = BinaryVector::from_bit_str("0").unwrap();
    let one = BinaryVector::from_bit_str("1").unwrap();
    assert_eq!(hash.hamming(&zero).unwrap(), 0);
    assert_eq!(hash.hamming(&one).unwrap(), 0);

    // Same at every position of a wider vector: flipping input bits under a
    // `#` never changes the distance.
    let weight = TriStateVector::from_str("0#1#0#1#").unwrap();
    let base = BinaryVector::from_bit_str("00101010").unwrap();
    let base_distance = weight.hamming(&base).unwrap();
    for position in [1usize, 3, 5, 7] {
        let mut flipped = base.clone();
        flipped.set(position, !flipped.bit(position));
        assert_eq!(
            weight.hamming(&flipped).unwrap(),
            base_distance,
            "flipping input bit {position} under a # changed the distance"
        );
    }
}

#[test]
fn fully_dont_care_neuron_is_distance_zero_to_every_input() {
    // The paper calls this case out: "for a neuron with 768 #'s, the Hamming
    // distance will always be 0".
    let neuron = TriStateVector::all_dont_care(768);
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..32 {
        let input = BinaryVector::random(768, &mut rng);
        assert_eq!(neuron.hamming(&input).unwrap(), 0);
    }
}

#[test]
fn tristate_hamming_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..64 {
        let a = TriStateVector::random_with_dont_care(96, 0.3, &mut rng);
        let b = TriStateVector::random_with_dont_care(96, 0.3, &mut rng);
        assert_eq!(
            a.hamming_tristate(&b).unwrap(),
            b.hamming_tristate(&a).unwrap()
        );
    }
}

#[test]
fn binary_hamming_is_symmetric_through_tristate_view() {
    // For fully concrete vectors the #-aware distance must agree with the
    // plain binary Hamming distance in both argument orders.
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..64 {
        let x = BinaryVector::random(96, &mut rng);
        let y = BinaryVector::random(96, &mut rng);
        let xt = TriStateVector::from_binary(&x);
        let yt = TriStateVector::from_binary(&y);
        let binary = x.hamming(&y).unwrap();
        assert_eq!(xt.hamming(&y).unwrap(), binary);
        assert_eq!(yt.hamming(&x).unwrap(), binary);
        assert_eq!(xt.hamming_tristate(&yt).unwrap(), binary);
    }
}

#[test]
fn self_distance_is_zero() {
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..32 {
        let w = TriStateVector::random_with_dont_care(128, 0.25, &mut rng);
        assert_eq!(w.hamming_tristate(&w).unwrap(), 0);

        // A concrete weight equal to the input is also at distance zero.
        let x = BinaryVector::random(128, &mut rng);
        assert_eq!(TriStateVector::from_binary(&x).hamming(&x).unwrap(), 0);
    }
}

#[test]
fn distance_counts_exactly_the_concrete_disagreements() {
    // Hand-built example with every trit/bit combination present.
    //   weight: 0 1 # 0 1 #
    //   input : 1 1 1 0 0 0
    //   diff  : 1 0 –  0 1 –   => distance 2
    let weight = TriStateVector::from_str("01#01#").unwrap();
    let input = BinaryVector::from_bit_str("111000").unwrap();
    assert_eq!(weight.hamming(&input).unwrap(), 2);
}

// ---------------------------------------------------------------------------
// Mean-threshold binarisation (Eq. 1–2)
// ---------------------------------------------------------------------------

#[test]
fn mean_threshold_is_sum_over_bin_count() {
    // Eq. 1: θ = (Σ bins) / 768, computed here independently.
    let mut rng = StdRng::seed_from_u64(11);
    use rand::Rng;
    let mut hist = ColorHistogram::new();
    for _ in 0..500 {
        hist.add_pixel(Rgb::new(rng.gen(), rng.gen(), rng.gen()));
    }
    let expected: f64 =
        hist.bins().iter().map(|&c| f64::from(c)).sum::<f64>() / HISTOGRAM_BINS as f64;
    assert!((hist.mean_threshold() - expected).abs() < 1e-12);
}

#[test]
fn to_signature_thresholds_every_bin_at_the_mean() {
    // Eq. 2: bit_i = 1 iff bins_i >= θ, for every one of the 768 bins.
    let mut rng = StdRng::seed_from_u64(12);
    use rand::Rng;
    let mut hist = ColorHistogram::new();
    for _ in 0..300 {
        hist.add_pixel(Rgb::new(rng.gen(), rng.gen(), rng.gen()));
    }
    let theta = hist.mean_threshold();
    let signature = hist.to_signature();
    assert_eq!(signature.len(), HISTOGRAM_BINS);
    for (i, &bin) in hist.bins().iter().enumerate() {
        assert_eq!(
            signature.bit(i),
            f64::from(bin) >= theta,
            "bin {i} (count {bin}, θ {theta}) binarised wrongly"
        );
    }
}

#[test]
fn bins_exactly_at_the_mean_map_to_one() {
    // Eq. 2 uses >=, not >: a perfectly flat histogram sits exactly at θ and
    // must produce an all-ones signature.
    let flat = ColorHistogram::from_bins(vec![5; HISTOGRAM_BINS]).unwrap();
    assert_eq!(flat.mean_threshold(), 5.0);
    assert_eq!(flat.to_signature().count_ones(), HISTOGRAM_BINS);
}

#[test]
fn single_colour_object_sets_exactly_its_three_bins() {
    // A uniformly coloured silhouette concentrates each channel in one bin;
    // those three bins dominate the mean and everything else falls below it.
    let hist = ColorHistogram::from_pixels((0..400).map(|_| Rgb::new(40, 0, 255)));
    let signature = hist.to_signature();
    assert_eq!(signature.count_ones(), 3);
    assert!(signature.bit(40));
    assert!(signature.bit(256));
    assert!(signature.bit(512 + 255));
}

#[test]
fn signature_length_always_matches_the_fpga_input_width() {
    // Downstream (the SOM and the FPGA pattern-input block) assume exactly
    // 768 bits regardless of how many pixels were accumulated.
    for pixels in [0usize, 1, 3, 97] {
        let hist = ColorHistogram::from_pixels(
            (0..pixels).map(|i| Rgb::new(i as u8, (2 * i) as u8, 255 - i as u8)),
        );
        assert_eq!(hist.to_signature().len(), 768);
    }
}
