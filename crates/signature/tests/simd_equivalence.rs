//! Differential suite for the wide-lane kernel lowerings (DESIGN.md
//! §"Wide-lane kernels and dispatch").
//!
//! Every dispatch path selectable on this machine — scalar, the portable
//! lanes-4/lanes-8 kernels, and each `std::arch` lowering the runner's CPU
//! exposes — is driven against the scalar reference walk and must agree
//! **bit for bit**:
//!
//! * distance kernels ([`masked_hamming_words_with`],
//!   [`accumulate_masked_hamming_row_with`]) on arbitrary planes, on
//!   tie-heavy WTA tables in the style of the `tournament_wta` suite (where
//!   a one-count distance error flips the winner), and on every
//!   tail/remainder word count around each lane width (0, 1, lane−1, lane,
//!   lane+1, non-multiples — the classic SIMD off-by-one surface);
//! * the window update kernel ([`update_window_word_with`]) on
//!   invariant-respecting plane runs, including its per-neuron relax/commit
//!   flip counters (the feed of the incremental `#`-count maintenance);
//! * the lane-batched mask drawing entries
//!   ([`MaskPlan::draw_lanes`](bsom_signature::MaskPlan),
//!   [`draw_broadcast_masks_lanes`]), which must consume the **same
//!   xorshift64* stream** as the word-at-a-time draws — including through
//!   [`TriStateVector::stochastic_update`]'s chunked walk versus the
//!   historical word-at-a-time loop, replayed here verbatim;
//! * the mismatched-slice panics, which must fire identically through every
//!   dispatch (mirroring `masked_hamming_words_rejects_mismatched_slices`);
//! * the `ForceDispatch` override itself: forcing routes the default entry
//!   points, clearing restores the default, and an unavailable lowering is
//!   rejected loudly instead of reaching `std::arch` code the CPU cannot
//!   run.

use bsom_signature::lanes::{active_dispatch, force_dispatch, Dispatch};
use bsom_signature::{
    accumulate_masked_hamming_row, accumulate_masked_hamming_row_with, draw_broadcast_masks,
    draw_broadcast_masks_lanes, masked_hamming_words, masked_hamming_words_with,
    select_winner_tournament, update_window_word_with, update_word, BinaryVector, MaskPlan,
    TriStateVector,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Serializes the tests that assert on the process-wide forced dispatch.
static FORCE_LOCK: Mutex<()> = Mutex::new(());

/// A dispatch path foreign to every machine this test compiles for on its
/// own architecture — used to exercise the unavailable-path rejection.
fn foreign_dispatch() -> Dispatch {
    if cfg!(target_arch = "aarch64") {
        Dispatch::Avx2
    } else {
        Dispatch::Neon
    }
}

/// Builds invariant-respecting plane words (`value ⊆ care`) from raw pairs.
fn planes(raw: &[(u64, u64)]) -> (Vec<u64>, Vec<u64>) {
    let cares: Vec<u64> = raw.iter().map(|&(c, _)| c).collect();
    let values: Vec<u64> = raw.iter().map(|&(c, v)| v & c).collect();
    (values, cares)
}

proptest! {
    /// `masked_hamming_words` agrees with the scalar walk through every
    /// available lowering, for arbitrary word counts.
    #[test]
    fn masked_hamming_is_bit_identical_across_dispatches(
        raw in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..40),
    ) {
        let cares: Vec<u64> = raw.iter().map(|&(c, _, _)| c).collect();
        let values: Vec<u64> = raw.iter().map(|&(c, v, _)| v & c).collect();
        let inputs: Vec<u64> = raw.iter().map(|&(_, _, x)| x).collect();
        let reference = masked_hamming_words_with(Dispatch::Scalar, &values, &cares, &inputs);
        for dispatch in Dispatch::available() {
            prop_assert_eq!(
                masked_hamming_words_with(dispatch, &values, &cares, &inputs),
                reference
            );
        }
    }

    /// The row kernel accumulates identically through every lowering,
    /// including on top of non-zero running distances.
    #[test]
    fn row_accumulation_is_bit_identical_across_dispatches(
        raw in prop::collection::vec((any::<u64>(), any::<u64>(), 0u32..5000), 0..70),
        input in any::<u64>(),
    ) {
        let cares: Vec<u64> = raw.iter().map(|&(c, _, _)| c).collect();
        let values: Vec<u64> = raw.iter().map(|&(c, v, _)| v & c).collect();
        let running: Vec<u32> = raw.iter().map(|&(_, _, d)| d).collect();
        let mut reference = running.clone();
        accumulate_masked_hamming_row_with(
            Dispatch::Scalar, &values, &cares, input, &mut reference,
        );
        for dispatch in Dispatch::available() {
            let mut distances = running.clone();
            accumulate_masked_hamming_row_with(
                dispatch, &values, &cares, input, &mut distances,
            );
            prop_assert_eq!(&distances, &reference);
        }
    }

    /// The window update kernel writes identical planes and identical
    /// relax/commit counters through every lowering.
    #[test]
    fn window_update_is_bit_identical_across_dispatches(
        raw in prop::collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 0..30),
        input in any::<u64>(),
        relax_mask in any::<u64>(),
        commit_mask in any::<u64>(),
    ) {
        let (values, cares) = planes(
            &raw.iter().map(|&(c, v, _)| (c, v)).collect::<Vec<_>>(),
        );
        let gates: Vec<u64> = raw
            .iter()
            .map(|&(_, _, g)| if g { u64::MAX } else { 0 })
            .collect();
        let width = values.len();
        let mut ref_values = values.clone();
        let mut ref_cares = cares.clone();
        let mut ref_relaxed = vec![0u32; width];
        let mut ref_committed = vec![0u32; width];
        update_window_word_with(
            Dispatch::Scalar, &mut ref_values, &mut ref_cares, input, relax_mask,
            commit_mask, &gates, &mut ref_relaxed, &mut ref_committed,
        );
        for dispatch in Dispatch::available() {
            let mut v = values.clone();
            let mut c = cares.clone();
            let mut relaxed = vec![0u32; width];
            let mut committed = vec![0u32; width];
            update_window_word_with(
                dispatch, &mut v, &mut c, input, relax_mask, commit_mask, &gates,
                &mut relaxed, &mut committed,
            );
            prop_assert_eq!(&v, &ref_values);
            prop_assert_eq!(&c, &ref_cares);
            prop_assert_eq!(&relaxed, &ref_relaxed);
            prop_assert_eq!(&committed, &ref_committed);
        }
    }

    /// Tie-heavy WTA tables in the `tournament_wta` style: plane words from
    /// tiny domains make near-universal distance ties, so the winner key is
    /// decided by `#`-count and address — any per-dispatch distance skew
    /// would flip the full `{distance, #-count, address}` key. The winner
    /// must be identical through every lowering for every adversarial
    /// shard width.
    #[test]
    fn tie_heavy_wta_winners_survive_every_dispatch(
        rows in prop::collection::vec((0u64..4, 0u64..4, 0u32..3), 1..96),
        input in 0u64..4,
        shard_seed in any::<usize>(),
    ) {
        let neurons = rows.len();
        // One plane word per neuron drawn from a two-bit domain; care bits
        // limited to the same two lanes so distances land in {0, 1, 2}.
        let cares: Vec<u64> = rows.iter().map(|&(c, _, _)| c).collect();
        let values: Vec<u64> = rows.iter().map(|&(c, v, _)| v & c).collect();
        let counts: Vec<u32> = rows.iter().map(|&(_, _, n)| n).collect();
        let shard_len = match shard_seed % 4 {
            0 => 1,
            1 => 2 + (shard_seed / 4) % neurons.max(2),
            2 => neurons,
            _ => neurons + 1 + (shard_seed / 4) % (neurons + 2),
        };
        let mut reference = vec![0u32; neurons];
        accumulate_masked_hamming_row_with(
            Dispatch::Scalar, &values, &cares, input, &mut reference,
        );
        let reference_key = select_winner_tournament(&reference, &counts, shard_len);
        for dispatch in Dispatch::available() {
            let mut distances = vec![0u32; neurons];
            accumulate_masked_hamming_row_with(
                dispatch, &values, &cares, input, &mut distances,
            );
            prop_assert_eq!(
                select_winner_tournament(&distances, &counts, shard_len),
                reference_key
            );
        }
    }

    /// `draw_lanes` consumes the same xorshift64* stream as sequential
    /// `draw` calls: identical words, identical final state.
    #[test]
    fn lane_batched_draws_are_stream_identical(
        probability in 0.0f64..1.05,
        seed in 1u64..u64::MAX,
    ) {
        let plan = MaskPlan::from_probability(probability);
        let mut batched_state = seed;
        let batched: [u64; 8] = plan.draw_lanes(&mut batched_state);
        let mut sequential_state = seed;
        for &word in &batched {
            prop_assert_eq!(word, plan.draw(&mut sequential_state));
        }
        prop_assert_eq!(batched_state, sequential_state);
    }

    /// `draw_broadcast_masks_lanes` replays the word-at-a-time drawing rule
    /// exactly: same shared-draw coalescing, same skips, same stream.
    #[test]
    fn lane_batched_broadcast_masks_are_stream_identical(
        relax_p in 0.0f64..1.05,
        commit_p in 0.0f64..1.05,
        share in any::<bool>(),
        needs in prop::collection::vec((any::<bool>(), any::<bool>()), 4),
        seed in 1u64..u64::MAX,
    ) {
        let relax = MaskPlan::from_probability(relax_p);
        // Half the cases share one plan (the coalesced single-draw rule).
        let commit = if share { relax.clone() } else { MaskPlan::from_probability(commit_p) };
        let needs_relax: [bool; 4] = std::array::from_fn(|k| needs[k].0);
        let needs_commit: [bool; 4] = std::array::from_fn(|k| needs[k].1);
        let mut batched_state = seed;
        let batched = draw_broadcast_masks_lanes::<4>(
            &relax, &commit, &needs_relax, &needs_commit, &mut batched_state,
        );
        let mut sequential_state = seed;
        for k in 0..4 {
            let expected = draw_broadcast_masks(
                &relax, &commit, needs_relax[k], needs_commit[k], &mut sequential_state,
            );
            prop_assert_eq!(batched[k], expected);
        }
        prop_assert_eq!(batched_state, sequential_state);
    }

    /// `TriStateVector::stochastic_update`'s lane-chunked walk versus the
    /// historical word-at-a-time loop, replayed verbatim: identical planes,
    /// identical deltas, identical final RNG state — across vector lengths
    /// with partial tails and word counts on both sides of the chunk width.
    #[test]
    fn stochastic_update_chunking_is_stream_identical(
        len_seed in 0usize..8,
        dont_care in 0.0f64..1.0,
        relax_p in 0.0f64..1.05,
        commit_p in 0.0f64..1.05,
        seed in 1u64..u64::MAX,
        weight_seed in any::<u64>(),
    ) {
        // 1–6 words, aligned and partial tails, both sides of the 4-word
        // chunk the update walks in.
        let len = [37, 64, 130, 190, 192, 256, 300, 384][len_seed];
        let mut rng = StdRng::seed_from_u64(weight_seed);
        let mut vector = TriStateVector::random_with_dont_care(len, dont_care, &mut rng);
        let input = BinaryVector::random(len, &mut rng);
        let relax = MaskPlan::from_probability(relax_p);
        let commit = MaskPlan::from_probability(commit_p);

        // The historical word-at-a-time reference loop.
        let mut ref_values = vector.value_plane().as_words().to_vec();
        let mut ref_cares = vector.care_plane().as_words().to_vec();
        let mut ref_state = seed;
        let mut ref_relaxed = 0usize;
        let mut ref_committed = 0usize;
        for (w, &x) in input.as_words().iter().enumerate() {
            let lane_mask = if (w + 1) * 64 <= len {
                u64::MAX
            } else {
                (1u64 << (len % 64)) - 1
            };
            let needs_relax = (ref_values[w] ^ x) & ref_cares[w] != 0;
            let needs_commit = ref_cares[w] != lane_mask;
            let masks =
                draw_broadcast_masks(&relax, &commit, needs_relax, needs_commit, &mut ref_state);
            let updated =
                update_word(ref_values[w], ref_cares[w], x, masks.relax, masks.commit & lane_mask);
            ref_values[w] = updated.value;
            ref_cares[w] = updated.care;
            ref_relaxed += updated.relaxed.count_ones() as usize;
            ref_committed += updated.committed.count_ones() as usize;
        }

        let mut state = seed;
        let delta = vector.stochastic_update(&input, &relax, &commit, &mut state);
        prop_assert_eq!(state, ref_state);
        prop_assert_eq!(delta.relaxed, ref_relaxed);
        prop_assert_eq!(delta.committed, ref_committed);
        prop_assert_eq!(vector.value_plane().as_words(), ref_values.as_slice());
        prop_assert_eq!(vector.care_plane().as_words(), ref_cares.as_slice());
    }
}

/// The tail/remainder sweep: word counts of 0, 1, lane−1, lane, lane+1 and
/// non-multiples for every lane width in play (2, 4, 8), through every
/// kernel and every available lowering.
#[test]
fn tail_word_counts_are_bit_identical_through_every_kernel() {
    let mut rng = StdRng::seed_from_u64(0x7A11);
    for n in [
        0usize, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12, 13, 15, 16, 17, 31, 32, 33,
    ] {
        let cares: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let values: Vec<u64> = cares.iter().map(|c| rng.gen::<u64>() & c).collect();
        let inputs: Vec<u64> = (0..n).map(|_| rng.gen()).collect();
        let gates: Vec<u64> = (0..n)
            .map(|_| if rng.gen() { u64::MAX } else { 0 })
            .collect();
        let input: u64 = rng.gen();
        let relax_mask: u64 = rng.gen();
        let commit_mask: u64 = rng.gen();

        let hamming_ref = masked_hamming_words_with(Dispatch::Scalar, &values, &cares, &inputs);
        let mut row_ref = vec![0u32; n];
        accumulate_masked_hamming_row_with(Dispatch::Scalar, &values, &cares, input, &mut row_ref);
        let mut upd_values_ref = values.clone();
        let mut upd_cares_ref = cares.clone();
        let mut relaxed_ref = vec![0u32; n];
        let mut committed_ref = vec![0u32; n];
        update_window_word_with(
            Dispatch::Scalar,
            &mut upd_values_ref,
            &mut upd_cares_ref,
            input,
            relax_mask,
            commit_mask,
            &gates,
            &mut relaxed_ref,
            &mut committed_ref,
        );

        for dispatch in Dispatch::available() {
            assert_eq!(
                masked_hamming_words_with(dispatch, &values, &cares, &inputs),
                hamming_ref,
                "masked_hamming, {n} words, {dispatch}"
            );
            let mut row = vec![0u32; n];
            accumulate_masked_hamming_row_with(dispatch, &values, &cares, input, &mut row);
            assert_eq!(row, row_ref, "row kernel, {n} words, {dispatch}");
            let mut v = values.clone();
            let mut c = cares.clone();
            let mut relaxed = vec![0u32; n];
            let mut committed = vec![0u32; n];
            update_window_word_with(
                dispatch,
                &mut v,
                &mut c,
                input,
                relax_mask,
                commit_mask,
                &gates,
                &mut relaxed,
                &mut committed,
            );
            assert_eq!(v, upd_values_ref, "update values, {n} words, {dispatch}");
            assert_eq!(c, upd_cares_ref, "update cares, {n} words, {dispatch}");
            assert_eq!(
                relaxed, relaxed_ref,
                "relax counters, {n} words, {dispatch}"
            );
            assert_eq!(
                committed, committed_ref,
                "commit counters, {n} words, {dispatch}"
            );
        }
    }
}

/// Asserts that `f` panics with a message containing `needle`.
fn panics_with<F: FnOnce()>(f: F, needle: &str) {
    let err = catch_unwind(AssertUnwindSafe(f)).expect_err("kernel must panic");
    let msg = err
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| err.downcast_ref::<&str>().copied())
        .unwrap_or_default();
    assert!(
        msg.contains(needle),
        "panic message {msg:?} does not contain {needle:?}"
    );
}

/// The mismatched-slice panics fire identically through every dispatch —
/// the per-dispatch mirror of `masked_hamming_words_rejects_mismatched_slices`.
#[test]
fn mismatched_slices_panic_under_every_dispatch() {
    for dispatch in Dispatch::available() {
        panics_with(
            || {
                masked_hamming_words_with(dispatch, &[0, 0], &[0, 0], &[0]);
            },
            "word count mismatch",
        );
        panics_with(
            || {
                accumulate_masked_hamming_row_with(dispatch, &[0, 0], &[0], 0, &mut [0, 0]);
            },
            "value/care row length mismatch",
        );
        panics_with(
            || {
                accumulate_masked_hamming_row_with(dispatch, &[0, 0], &[0, 0], 0, &mut [0]);
            },
            "one distance slot per neuron",
        );
        panics_with(
            || {
                update_window_word_with(
                    dispatch,
                    &mut [0],
                    &mut [0],
                    0,
                    0,
                    0,
                    &[0, 0],
                    &mut [0],
                    &mut [0],
                );
            },
            "one gate word per neuron",
        );
        panics_with(
            || {
                update_window_word_with(
                    dispatch,
                    &mut [0],
                    &mut [0],
                    0,
                    0,
                    0,
                    &[0],
                    &mut [0, 0],
                    &mut [0],
                );
            },
            "one relax counter per neuron",
        );
    }
}

/// An unavailable lowering is rejected loudly everywhere it could be
/// requested: the force API returns an error and the explicit-dispatch
/// kernels panic before reaching `std::arch` code the CPU cannot run.
#[test]
fn unavailable_dispatch_is_rejected_loudly() {
    let foreign = foreign_dispatch();
    assert!(!foreign.is_available());
    let err = force_dispatch(Some(foreign)).expect_err("foreign lowering must be rejected");
    assert_eq!(err.requested, foreign);
    assert!(err.to_string().contains("not available"));
    panics_with(
        || {
            masked_hamming_words_with(foreign, &[0], &[0], &[0]);
        },
        "not available",
    );
    panics_with(
        || {
            accumulate_masked_hamming_row_with(foreign, &[0], &[0], 0, &mut [0]);
        },
        "not available",
    );
    panics_with(
        || {
            update_window_word_with(
                foreign,
                &mut [0],
                &mut [0],
                0,
                0,
                0,
                &[0],
                &mut [0],
                &mut [0],
            );
        },
        "not available",
    );
}

/// Forcing routes the *default* entry points: under a forced lowering the
/// plain kernels equal the explicit `_with` calls, and clearing the
/// override restores the detect/environment default.
#[test]
fn force_dispatch_routes_the_default_entry_points() {
    let guard = FORCE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let default = active_dispatch();
    let mut rng = StdRng::seed_from_u64(0xF0CE);
    let cares: Vec<u64> = (0..11).map(|_| rng.gen()).collect();
    let values: Vec<u64> = cares.iter().map(|c| rng.gen::<u64>() & c).collect();
    let inputs: Vec<u64> = (0..11).map(|_| rng.gen()).collect();
    for dispatch in Dispatch::available() {
        force_dispatch(Some(dispatch)).expect("available lowering");
        assert_eq!(active_dispatch(), dispatch);
        assert_eq!(
            masked_hamming_words(&values, &cares, &inputs),
            masked_hamming_words_with(dispatch, &values, &cares, &inputs),
        );
        let mut forced = vec![0u32; 11];
        accumulate_masked_hamming_row(&values, &cares, inputs[0], &mut forced);
        let mut explicit = vec![0u32; 11];
        accumulate_masked_hamming_row_with(dispatch, &values, &cares, inputs[0], &mut explicit);
        assert_eq!(forced, explicit);
    }
    force_dispatch(None).expect("clearing always succeeds");
    assert_eq!(active_dispatch(), default);
    // A failed force must leave the active dispatch untouched.
    let _ = force_dispatch(Some(foreign_dispatch()));
    assert_eq!(active_dispatch(), default);
    drop(guard);
}
