//! Property suite for the **tournament winner-take-all** reduction
//! (DESIGN.md §"Copy-on-write publication and the tournament WTA").
//!
//! [`select_winner_tournament`] shards the neuron axis, crowns a champion
//! per shard with a linear scan, and folds the champions pairwise through
//! the `{distance, #-count, address}` comparator key — the software shape of
//! the FPGA comparator tree. The suite proves it **bit-identical** to the
//! linear reference [`select_winner`]: same winner index *and* same full
//! key, for arbitrary inputs, engineered ties straddling shard boundaries,
//! and adversarial shard widths (1, non-dividing, larger than the map).

use bsom_signature::{select_winner, select_winner_tournament, shard_champion, WtaKey};
use proptest::prelude::*;

/// Asserts tournament/linear agreement on the full key for one input.
fn assert_identical(
    distances: &[u32],
    counts: &[u32],
    shard_len: usize,
) -> Result<(), TestCaseError> {
    let tournament = select_winner_tournament(distances, counts, shard_len);
    let linear = select_winner(distances, counts);
    match (tournament, linear) {
        (None, None) => {}
        (Some(key), Some((index, distance))) => {
            // The full key must match, not just the winner index.
            prop_assert!(
                key.address == index
                    && key.distance == distance
                    && key.dont_care_count == counts[index],
                "tournament {key:?} != linear ({index}, {distance}) at shard_len {shard_len}"
            );
        }
        (t, l) => prop_assert!(false, "tournament {t:?} vs linear {l:?}"),
    }
    Ok(())
}

/// Maps a seed onto a shard width from every adversarial regime for a map
/// of `neurons` neurons: 1 (degenerate tree), arbitrary (mostly
/// non-dividing) widths, exactly one shard, and widths larger than the
/// whole map.
fn shard_len_from_seed(neurons: usize, seed: usize) -> usize {
    let neurons = neurons.max(1);
    match seed % 4 {
        0 => 1,
        1 => 2 + (seed / 4) % neurons.max(2),
        2 => neurons,
        _ => neurons + 1 + (seed / 4) % (neurons + 2),
    }
}

proptest! {
    /// Arbitrary distance/#-count tables and arbitrary map sizes.
    #[test]
    fn tournament_matches_linear_scan_for_arbitrary_maps(
        rows in prop::collection::vec((0u32..2000, 0u32..800), 1..200),
        shard_seed in any::<usize>(),
    ) {
        let (distances, counts): (Vec<u32>, Vec<u32>) = rows.into_iter().unzip();
        let shard_len = 1 + shard_seed % (distances.len() + 4);
        assert_identical(&distances, &counts, shard_len)?;
    }

    /// Tie-heavy tables: distances and #-counts drawn from tiny domains so
    /// almost every comparison is decided by a deeper key component, for
    /// every shard width in the adversarial family.
    #[test]
    fn tie_breaks_survive_every_shard_width(
        rows in prop::collection::vec((0u32..3, 0u32..3), 1..96),
        shard_seed in any::<usize>(),
    ) {
        let (distances, counts): (Vec<u32>, Vec<u32>) = rows.into_iter().unzip();
        let shard_len = shard_len_from_seed(distances.len(), shard_seed);
        assert_identical(&distances, &counts, shard_len)?;
    }

    /// Engineered boundary straddle: a run of fully tied `{distance,
    /// #-count}` keys is planted across a shard boundary, so the winning
    /// address must be resolved *between* shard champions, not inside one
    /// leaf scan. The linear reference must still be matched exactly.
    #[test]
    fn planted_ties_straddling_a_shard_boundary_resolve_identically(
        neurons in 4usize..120,
        shard_len in 2usize..16,
        straddle in 2usize..8,
        tie_distance in 0u32..4,
        tie_count in 0u32..4,
    ) {
        // Background keys strictly worse than the planted tie.
        let mut distances = vec![tie_distance + 1; neurons];
        let mut counts = vec![tie_count + 5; neurons];
        // Plant the tied run centred on the first shard boundary.
        let boundary = shard_len.min(neurons);
        let lo = boundary.saturating_sub(straddle / 2);
        let hi = (boundary + straddle.div_ceil(2)).min(neurons);
        for i in lo..hi {
            distances[i] = tie_distance;
            counts[i] = tie_count;
        }
        assert_identical(&distances, &counts, shard_len)?;
        // The tie must resolve to the lowest planted address.
        let key = select_winner_tournament(&distances, &counts, shard_len).unwrap();
        prop_assert_eq!(key.address, lo);
    }

    /// Per-shard champions are themselves linear-scan minima of their range:
    /// the leaf layer of the tree is the reference algorithm in miniature.
    #[test]
    fn shard_champions_are_range_restricted_linear_scans(
        rows in prop::collection::vec((0u32..50, 0u32..50), 1..64),
        start_seed in any::<usize>(),
        len_seed in any::<usize>(),
    ) {
        let (distances, counts): (Vec<u32>, Vec<u32>) = rows.into_iter().unzip();
        let start = start_seed % distances.len();
        let end = start + 1 + len_seed % (distances.len() - start);
        let champion = shard_champion(&distances, &counts, start..end).unwrap();
        let (index, distance) =
            select_winner(&distances[start..end], &counts[start..end]).unwrap();
        prop_assert_eq!(champion.address, start + index);
        prop_assert_eq!(champion.distance, distance);
        prop_assert_eq!(champion.dont_care_count, counts[start + index]);
    }
}

#[test]
fn key_ordering_is_the_documented_lexicographic_comparator() {
    let a = WtaKey {
        distance: 1,
        dont_care_count: 700,
        address: 900,
    };
    let b = WtaKey {
        distance: 2,
        dont_care_count: 0,
        address: 0,
    };
    assert!(a < b, "distance dominates both tie-break components");
    let c = WtaKey {
        distance: 1,
        dont_care_count: 699,
        address: 901,
    };
    assert!(c < a, "#-count dominates address");
}

#[test]
fn empty_map_has_no_winner_for_any_shard_width() {
    for shard_len in [1, 2, 64, 1000] {
        assert_eq!(select_winner_tournament(&[], &[], shard_len), None);
        assert_eq!(select_winner(&[], &[]), None);
    }
}
