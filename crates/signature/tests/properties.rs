//! Property-based tests for the signature-layer invariants.

use bsom_signature::{BinaryVector, ColorHistogram, Rgb, TriStateVector, Trit};
use proptest::prelude::*;

/// Strategy producing an arbitrary binary vector of the given length.
fn binary_vector(len: usize) -> impl Strategy<Value = BinaryVector> {
    prop::collection::vec(any::<bool>(), len).prop_map(BinaryVector::from_bits)
}

/// Strategy producing an arbitrary tri-state vector of the given length.
fn tristate_vector(len: usize) -> impl Strategy<Value = TriStateVector> {
    prop::collection::vec(0u8..3, len).prop_map(|raw| {
        TriStateVector::from_trits(raw.into_iter().map(|v| match v {
            0 => Trit::Zero,
            1 => Trit::One,
            _ => Trit::DontCare,
        }))
    })
}

proptest! {
    #[test]
    fn hamming_is_symmetric(a in binary_vector(96), b in binary_vector(96)) {
        prop_assert_eq!(a.hamming(&b).unwrap(), b.hamming(&a).unwrap());
    }

    #[test]
    fn hamming_is_zero_iff_equal(a in binary_vector(96), b in binary_vector(96)) {
        let d = a.hamming(&b).unwrap();
        prop_assert_eq!(d == 0, a == b);
    }

    #[test]
    fn hamming_triangle_inequality(
        a in binary_vector(64),
        b in binary_vector(64),
        c in binary_vector(64),
    ) {
        let ab = a.hamming(&b).unwrap();
        let bc = b.hamming(&c).unwrap();
        let ac = a.hamming(&c).unwrap();
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn hamming_bounded_by_length(a in binary_vector(96), b in binary_vector(96)) {
        prop_assert!(a.hamming(&b).unwrap() <= 96);
    }

    #[test]
    fn xor_popcount_equals_hamming(a in binary_vector(96), b in binary_vector(96)) {
        prop_assert_eq!((&a ^ &b).count_ones(), a.hamming(&b).unwrap());
    }

    #[test]
    fn bit_string_roundtrip(a in binary_vector(80)) {
        let s = a.to_bit_string();
        prop_assert_eq!(BinaryVector::from_bit_str(&s).unwrap(), a);
    }

    #[test]
    fn count_ones_plus_zeros_is_len(a in binary_vector(123)) {
        prop_assert_eq!(a.count_ones() + a.count_zeros(), 123);
    }

    #[test]
    fn complement_inverts_every_bit(a in binary_vector(77)) {
        let c = !&a;
        for i in 0..77 {
            prop_assert_eq!(c.bit(i), !a.bit(i));
        }
    }

    #[test]
    fn tristate_hamming_never_exceeds_concrete_count(
        w in tristate_vector(96),
        x in binary_vector(96),
    ) {
        prop_assert!(w.hamming(&x).unwrap() <= w.count_concrete());
    }

    #[test]
    fn tristate_hamming_lower_bounded_by_full_hamming_minus_dont_care(
        w in tristate_vector(96),
        x in binary_vector(96),
    ) {
        // Collapsing # to either bit value can only change the distance by at
        // most the number of # positions.
        let collapsed = w.to_binary(false);
        let full = collapsed.hamming(&x).unwrap();
        let masked = w.hamming(&x).unwrap();
        prop_assert!(masked <= full);
        prop_assert!(full - masked <= w.count_dont_care());
    }

    #[test]
    fn tristate_string_roundtrip(w in tristate_vector(60)) {
        let s = w.to_trit_string();
        prop_assert_eq!(TriStateVector::from_str(&s).unwrap(), w);
    }

    #[test]
    fn tristate_concrete_plus_dont_care_is_len(w in tristate_vector(111)) {
        prop_assert_eq!(w.count_concrete() + w.count_dont_care(), 111);
    }

    #[test]
    fn tristate_matches_agrees_with_per_trit_matching(
        w in tristate_vector(48),
        x in binary_vector(48),
    ) {
        let expected = (0..48).all(|i| w.trit(i).matches(x.bit(i)));
        prop_assert_eq!(w.matches(&x), expected);
    }

    #[test]
    fn histogram_signature_length_is_768(
        pixels in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..200)
    ) {
        let hist = ColorHistogram::from_pixels(pixels.into_iter().map(|(r, g, b)| Rgb::new(r, g, b)));
        prop_assert_eq!(hist.to_signature().len(), 768);
    }

    #[test]
    fn histogram_signature_nonempty_for_nonempty_input(
        pixels in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..200)
    ) {
        // At least one bin per channel is maximal, hence >= mean, hence set.
        let hist = ColorHistogram::from_pixels(pixels.into_iter().map(|(r, g, b)| Rgb::new(r, g, b)));
        prop_assert!(hist.to_signature().count_ones() >= 3);
    }

    #[test]
    fn histogram_bin_total_is_three_times_pixels(
        pixels in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..300)
    ) {
        let n = pixels.len() as u64;
        let hist = ColorHistogram::from_pixels(pixels.into_iter().map(|(r, g, b)| Rgb::new(r, g, b)));
        let total: u64 = hist.bins().iter().map(|&c| u64::from(c)).sum();
        prop_assert_eq!(total, 3 * n);
        prop_assert_eq!(hist.pixel_count(), n);
    }

    #[test]
    fn mean_threshold_between_min_and_max_bin(
        pixels in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..200)
    ) {
        let hist = ColorHistogram::from_pixels(pixels.into_iter().map(|(r, g, b)| Rgb::new(r, g, b)));
        let theta = hist.mean_threshold();
        let min = *hist.bins().iter().min().unwrap() as f64;
        let max = *hist.bins().iter().max().unwrap() as f64;
        prop_assert!(theta >= min && theta <= max);
    }
}
