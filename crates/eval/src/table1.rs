//! Table I: mean recognition accuracy of the cSOM and the bSOM across
//! training-iteration budgets (10–100 in steps of 10, then 200–500 in steps
//! of 100), ten repetitions each, on a 40-neuron map over the nine-identity
//! surveillance dataset.

use bsom_dataset::{DatasetConfig, SurveillanceDataset};
use bsom_som::{
    evaluate, BSom, BSomConfig, CSom, CSomConfig, LabelledSom, SelfOrganizingMap, TrainSchedule,
};
use bsom_stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// The iteration budgets evaluated by Table I.
pub const PAPER_ITERATION_BUDGETS: [usize; 14] =
    [10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 300, 400, 500];

/// Configuration of the Table I experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Config {
    /// Iteration budgets to evaluate.
    pub iteration_budgets: Vec<usize>,
    /// Repetitions per budget (the paper uses 10).
    pub repetitions: usize,
    /// Number of neurons in both maps (the paper uses 40).
    pub neurons: usize,
    /// Dataset shape and corruption.
    pub dataset: DatasetConfig,
    /// Base random seed; every repetition derives its own seed from it.
    pub seed: u64,
}

impl Table1Config {
    /// The paper's full protocol: all 14 budgets, 10 repetitions,
    /// 2,248 / 1,139 instances. Takes tens of minutes of CPU time.
    pub fn paper_default() -> Self {
        Table1Config {
            iteration_budgets: PAPER_ITERATION_BUDGETS.to_vec(),
            repetitions: 10,
            neurons: 40,
            dataset: DatasetConfig::paper_default(),
            seed: 2010,
        }
    }

    /// A reduced protocol preserving the shape of the sweep while staying
    /// tractable on one core: all 14 budgets, 3 repetitions, a 900 / 450
    /// instance dataset.
    pub fn quick() -> Self {
        Table1Config {
            iteration_budgets: PAPER_ITERATION_BUDGETS.to_vec(),
            repetitions: 3,
            neurons: 40,
            dataset: DatasetConfig {
                train_instances: 900,
                test_instances: 450,
                ..DatasetConfig::paper_default()
            },
            seed: 2010,
        }
    }

    /// A tiny smoke-test protocol used by the integration tests.
    pub fn smoke() -> Self {
        Table1Config {
            iteration_budgets: vec![5, 20],
            repetitions: 2,
            neurons: 20,
            dataset: DatasetConfig {
                train_instances: 150,
                test_instances: 80,
                ..DatasetConfig::paper_default()
            },
            seed: 2010,
        }
    }
}

impl Default for Table1Config {
    fn default() -> Self {
        Self::quick()
    }
}

/// Accuracy results at one iteration budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// The iteration budget.
    pub iterations: usize,
    /// Per-repetition cSOM accuracies (percent).
    pub csom_runs: Vec<f64>,
    /// Per-repetition bSOM accuracies (percent).
    pub bsom_runs: Vec<f64>,
}

impl Table1Row {
    /// Mean cSOM accuracy over the repetitions.
    pub fn csom_mean(&self) -> f64 {
        Summary::of(&self.csom_runs).mean
    }

    /// Mean bSOM accuracy over the repetitions.
    pub fn bsom_mean(&self) -> f64 {
        Summary::of(&self.bsom_runs).mean
    }
}

/// The complete Table I result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Result {
    /// The configuration the experiment ran with.
    pub config: Table1Config,
    /// One row per iteration budget.
    pub rows: Vec<Table1Row>,
}

impl Table1Result {
    /// Renders the result in the layout of Table I.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(["Iterations", "cSOM", "bSOM"]);
        for row in &self.rows {
            table.push_row([
                row.iterations.to_string(),
                format!("{:.2}%", row.csom_mean()),
                format!("{:.2}%", row.bsom_mean()),
            ]);
        }
        table
    }

    /// The overall bSOM accuracy band (min and max of the per-budget means),
    /// used by the shape checks in the integration tests.
    pub fn bsom_band(&self) -> (f64, f64) {
        band(self.rows.iter().map(Table1Row::bsom_mean))
    }

    /// The overall cSOM accuracy band.
    pub fn csom_band(&self) -> (f64, f64) {
        band(self.rows.iter().map(Table1Row::csom_mean))
    }
}

fn band<I: Iterator<Item = f64>>(values: I) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

/// Trains and evaluates one bSOM run, returning accuracy in percent.
pub fn bsom_accuracy(
    dataset: &SurveillanceDataset,
    neurons: usize,
    iterations: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = BSomConfig {
        neurons,
        vector_len: 768,
        ..BSomConfig::paper_default()
    };
    let mut som = BSom::new(config, &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(iterations), &mut rng)
        .expect("non-empty training data");
    let classifier = LabelledSom::label(som, &dataset.train);
    evaluate(&classifier, &dataset.test).accuracy_percent()
}

/// Trains and evaluates one cSOM run, returning accuracy in percent.
pub fn csom_accuracy(
    dataset: &SurveillanceDataset,
    neurons: usize,
    iterations: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = CSomConfig {
        neurons,
        vector_len: 768,
        ..CSomConfig::paper_default()
    };
    let mut som = CSom::new(config, &mut rng);
    som.train_labelled_data(&dataset.train, TrainSchedule::new(iterations), &mut rng)
        .expect("non-empty training data");
    let classifier = LabelledSom::label(som, &dataset.train);
    evaluate(&classifier, &dataset.test).accuracy_percent()
}

/// Runs the Table I experiment.
pub fn run(config: &Table1Config) -> Table1Result {
    let mut dataset_rng = StdRng::seed_from_u64(config.seed);
    let dataset = SurveillanceDataset::generate(&config.dataset, &mut dataset_rng);

    let rows = config
        .iteration_budgets
        .iter()
        .map(|&iterations| {
            let mut csom_runs = Vec::with_capacity(config.repetitions);
            let mut bsom_runs = Vec::with_capacity(config.repetitions);
            for rep in 0..config.repetitions {
                let seed = config
                    .seed
                    .wrapping_mul(31)
                    .wrapping_add(iterations as u64 * 1009 + rep as u64);
                csom_runs.push(csom_accuracy(&dataset, config.neurons, iterations, seed));
                bsom_runs.push(bsom_accuracy(
                    &dataset,
                    config.neurons,
                    iterations,
                    seed ^ 0xB50A,
                ));
            }
            Table1Row {
                iterations,
                csom_runs,
                bsom_runs,
            }
        })
        .collect();

    Table1Result {
        config: config.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_budgets_match_table_one() {
        assert_eq!(PAPER_ITERATION_BUDGETS.len(), 14);
        assert_eq!(PAPER_ITERATION_BUDGETS[0], 10);
        assert_eq!(PAPER_ITERATION_BUDGETS[13], 500);
        let config = Table1Config::paper_default();
        assert_eq!(config.repetitions, 10);
        assert_eq!(config.neurons, 40);
        assert_eq!(config.dataset.train_instances, 2248);
    }

    #[test]
    fn smoke_run_produces_sane_accuracies() {
        let result = run(&Table1Config::smoke());
        assert_eq!(result.rows.len(), 2);
        for row in &result.rows {
            assert_eq!(row.csom_runs.len(), 2);
            assert_eq!(row.bsom_runs.len(), 2);
            for acc in row.csom_runs.iter().chain(&row.bsom_runs) {
                assert!(*acc >= 0.0 && *acc <= 100.0, "accuracy {acc}");
            }
            // Nine roughly balanced classes: anything learning at all beats
            // 25 % even on the tiny smoke dataset.
            assert!(row.bsom_mean() > 25.0);
            assert!(row.csom_mean() > 25.0);
        }
        let rendered = result.render().to_string();
        assert!(rendered.contains("Iterations"));
        assert!(rendered.contains('%'));
        let (lo, hi) = result.bsom_band();
        assert!(lo <= hi);
    }

    #[test]
    fn repeated_runs_with_same_seed_are_identical() {
        let config = Table1Config {
            iteration_budgets: vec![5],
            repetitions: 1,
            ..Table1Config::smoke()
        };
        let a = run(&config);
        let b = run(&config);
        assert_eq!(a.rows[0].bsom_runs, b.rows[0].bsom_runs);
        assert_eq!(a.rows[0].csom_runs, b.rows[0].csom_runs);
    }
}
