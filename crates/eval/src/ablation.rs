//! Design-choice ablations called out in DESIGN.md §"Experiment and
//! ablation index": the bSOM update rule
//! (neighbour policy and stochastic damping) and the histogram binarisation
//! threshold (mean versus median).

use bsom_dataset::{DatasetConfig, SurveillanceDataset};
use bsom_som::{
    evaluate, BSom, BSomConfig, LabelledSom, NeighbourRule, ObjectLabel, SelfOrganizingMap,
    TrainSchedule,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// Configuration of the ablation study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Dataset shape.
    pub dataset: DatasetConfig,
    /// Training iterations (full passes) per variant.
    pub iterations: usize,
    /// Base random seed.
    pub seed: u64,
}

impl AblationConfig {
    /// A tractable default (600/300 instances, 20 iterations).
    pub fn quick() -> Self {
        AblationConfig {
            dataset: DatasetConfig {
                train_instances: 600,
                test_instances: 300,
                ..DatasetConfig::paper_default()
            },
            iterations: 20,
            seed: 77,
        }
    }

    /// A smoke-test configuration.
    pub fn smoke() -> Self {
        AblationConfig {
            dataset: DatasetConfig {
                train_instances: 150,
                test_instances: 80,
                ..DatasetConfig::paper_default()
            },
            iterations: 8,
            seed: 77,
        }
    }
}

impl Default for AblationConfig {
    fn default() -> Self {
        Self::quick()
    }
}

/// Accuracy of one ablation variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Human-readable variant name.
    pub variant: String,
    /// Recognition accuracy in percent.
    pub accuracy: f64,
}

/// The full ablation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Update-rule variants.
    pub update_rule: Vec<AblationRow>,
    /// Binarisation-threshold variants.
    pub binarisation: Vec<AblationRow>,
}

impl AblationResult {
    /// Renders both ablation groups.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(["Group", "Variant", "Accuracy"]);
        for row in &self.update_rule {
            table.push_row([
                "update-rule".to_owned(),
                row.variant.clone(),
                format!("{:.2}%", row.accuracy),
            ]);
        }
        for row in &self.binarisation {
            table.push_row([
                "binarisation".to_owned(),
                row.variant.clone(),
                format!("{:.2}%", row.accuracy),
            ]);
        }
        table
    }

    /// The accuracy of a named update-rule variant (None if missing).
    pub fn update_rule_accuracy(&self, variant: &str) -> Option<f64> {
        self.update_rule
            .iter()
            .find(|r| r.variant == variant)
            .map(|r| r.accuracy)
    }
}

fn bsom_accuracy_with(
    data_train: &[(bsom_signature::BinaryVector, ObjectLabel)],
    data_test: &[(bsom_signature::BinaryVector, ObjectLabel)],
    config: BSomConfig,
    iterations: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut som = BSom::new(config, &mut rng);
    som.train_labelled_data(data_train, TrainSchedule::new(iterations), &mut rng)
        .expect("training data present");
    let classifier = LabelledSom::label(som, data_train);
    evaluate(&classifier, data_test).accuracy_percent()
}

/// Runs the ablation study.
pub fn run(config: &AblationConfig) -> AblationResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dataset = SurveillanceDataset::generate(&config.dataset, &mut rng);

    let base = BSomConfig {
        neurons: 40,
        vector_len: 768,
        ..BSomConfig::paper_default()
    };
    let update_variants: Vec<(String, BSomConfig)> = vec![
        ("damped + full neighbourhood (default)".to_owned(), base),
        (
            "undamped tri-state rule".to_owned(),
            base.with_update_probabilities(1.0, 1.0),
        ),
        (
            "relax-only neighbours".to_owned(),
            base.with_neighbour_rule(NeighbourRule::RelaxOnly),
        ),
        (
            "winner-only updates".to_owned(),
            base.with_neighbour_rule(NeighbourRule::WinnerOnly),
        ),
    ];
    let update_rule = update_variants
        .into_iter()
        .map(|(variant, cfg)| AblationRow {
            variant,
            accuracy: bsom_accuracy_with(
                &dataset.train,
                &dataset.test,
                cfg,
                config.iterations,
                config.seed ^ 0xAB1,
            ),
        })
        .collect();

    // Binarisation ablation: rebuild the signatures from the stored models
    // with mean vs median thresholds and evaluate the default bSOM on each.
    let mut threshold_rng = StdRng::seed_from_u64(config.seed ^ 0x7137);
    let resample = |median: bool, rng: &mut StdRng| -> (Vec<_>, Vec<_>) {
        let make = |count: usize, rng: &mut StdRng| {
            (0..count)
                .map(|i| {
                    let model = &dataset.models[i % dataset.models.len()];
                    let hist = model.sample_histogram(&config.dataset.corruption, rng);
                    let threshold = if median {
                        hist.median_threshold()
                    } else {
                        hist.mean_threshold()
                    };
                    (
                        hist.to_signature_with_threshold(threshold),
                        ObjectLabel::new(model.label()),
                    )
                })
                .collect::<Vec<_>>()
        };
        (
            make(config.dataset.train_instances, rng),
            make(config.dataset.test_instances, rng),
        )
    };
    let binarisation = ["mean threshold (paper)", "median threshold"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let (train, test) = resample(i == 1, &mut threshold_rng);
            AblationRow {
                variant: (*name).to_owned(),
                accuracy: bsom_accuracy_with(&train, &test, base, config.iterations, config.seed),
            }
        })
        .collect();

    AblationResult {
        update_rule,
        binarisation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ablation_covers_all_variants() {
        let result = run(&AblationConfig::smoke());
        assert_eq!(result.update_rule.len(), 4);
        assert_eq!(result.binarisation.len(), 2);
        for row in result.update_rule.iter().chain(&result.binarisation) {
            assert!(row.accuracy >= 0.0 && row.accuracy <= 100.0);
        }
        let text = result.render().to_string();
        assert!(text.contains("update-rule"));
        assert!(text.contains("median threshold"));
    }

    #[test]
    fn damped_default_beats_winner_only_collapse() {
        let result = run(&AblationConfig::smoke());
        let default = result
            .update_rule_accuracy("damped + full neighbourhood (default)")
            .unwrap();
        let winner_only = result.update_rule_accuracy("winner-only updates").unwrap();
        assert!(
            default > winner_only,
            "default {default:.1}% should beat winner-only {winner_only:.1}%"
        );
    }
}
