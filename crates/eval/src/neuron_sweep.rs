//! §IV text: the neuron-count sweep.
//!
//! The paper tests network sizes from 10 to 100 neurons in steps of 10 and
//! reports that above 50 neurons both SOMs exceed 90 % recognition but leave
//! some neurons unused. This experiment reproduces that sweep and records the
//! unused-neuron counts.

use bsom_dataset::{DatasetConfig, SurveillanceDataset};
use bsom_som::{
    evaluate, BSom, BSomConfig, CSom, CSomConfig, LabelledSom, SelfOrganizingMap, TrainSchedule,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// Configuration of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuronSweepConfig {
    /// Neuron counts to evaluate.
    pub neuron_counts: Vec<usize>,
    /// Training iterations (full passes) per run.
    pub iterations: usize,
    /// Dataset shape.
    pub dataset: DatasetConfig,
    /// Base random seed.
    pub seed: u64,
}

impl NeuronSweepConfig {
    /// The paper's sweep: 10–100 neurons in steps of 10.
    pub fn paper_default() -> Self {
        NeuronSweepConfig {
            neuron_counts: (1..=10).map(|i| i * 10).collect(),
            iterations: 30,
            dataset: DatasetConfig {
                train_instances: 900,
                test_instances: 450,
                ..DatasetConfig::paper_default()
            },
            // Same seed as the Table I quick profile so the 40-neuron row of
            // the sweep is directly comparable with Table I.
            seed: 2010,
        }
    }

    /// A smoke-test sweep over two sizes.
    pub fn smoke() -> Self {
        NeuronSweepConfig {
            neuron_counts: vec![10, 40],
            iterations: 10,
            dataset: DatasetConfig {
                train_instances: 200,
                test_instances: 100,
                ..DatasetConfig::paper_default()
            },
            seed: 90,
        }
    }
}

impl Default for NeuronSweepConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// One row of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeuronSweepRow {
    /// Number of neurons in both maps.
    pub neurons: usize,
    /// bSOM accuracy (percent).
    pub bsom_accuracy: f64,
    /// cSOM accuracy (percent).
    pub csom_accuracy: f64,
    /// Neurons that never won a training signature in the bSOM.
    pub bsom_unused: usize,
    /// Neurons that never won a training signature in the cSOM.
    pub csom_unused: usize,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuronSweepResult {
    /// The configuration the sweep ran with.
    pub config: NeuronSweepConfig,
    /// One row per neuron count.
    pub rows: Vec<NeuronSweepRow>,
}

impl NeuronSweepResult {
    /// Renders the sweep.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new([
            "Neurons",
            "bSOM acc",
            "cSOM acc",
            "bSOM unused",
            "cSOM unused",
        ]);
        for row in &self.rows {
            table.push_row([
                row.neurons.to_string(),
                format!("{:.2}%", row.bsom_accuracy),
                format!("{:.2}%", row.csom_accuracy),
                row.bsom_unused.to_string(),
                row.csom_unused.to_string(),
            ]);
        }
        table
    }
}

/// Runs the sweep.
pub fn run(config: &NeuronSweepConfig) -> NeuronSweepResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dataset = SurveillanceDataset::generate(&config.dataset, &mut rng);
    let schedule = TrainSchedule::new(config.iterations);

    let rows = config
        .neuron_counts
        .iter()
        .map(|&neurons| {
            let mut run_rng = StdRng::seed_from_u64(config.seed ^ (neurons as u64) << 8);

            let mut bsom = BSom::new(
                BSomConfig {
                    neurons,
                    vector_len: 768,
                    ..BSomConfig::paper_default()
                },
                &mut run_rng,
            );
            bsom.train_labelled_data(&dataset.train, schedule, &mut run_rng)
                .expect("training data present");
            let bsom_classifier = LabelledSom::label(bsom, &dataset.train);
            let bsom_eval = evaluate(&bsom_classifier, &dataset.test);

            let mut csom = CSom::new(
                CSomConfig {
                    neurons,
                    vector_len: 768,
                    ..CSomConfig::paper_default()
                },
                &mut run_rng,
            );
            csom.train_labelled_data(&dataset.train, schedule, &mut run_rng)
                .expect("training data present");
            let csom_classifier = LabelledSom::label(csom, &dataset.train);
            let csom_eval = evaluate(&csom_classifier, &dataset.test);

            NeuronSweepRow {
                neurons,
                bsom_accuracy: bsom_eval.accuracy_percent(),
                csom_accuracy: csom_eval.accuracy_percent(),
                bsom_unused: bsom_classifier.unused_neurons(),
                csom_unused: csom_classifier.unused_neurons(),
            }
        })
        .collect();

    NeuronSweepResult {
        config: config.clone(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_covers_ten_to_one_hundred() {
        let config = NeuronSweepConfig::paper_default();
        assert_eq!(
            config.neuron_counts,
            vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        );
    }

    #[test]
    fn smoke_sweep_produces_rows_with_sane_values() {
        let result = run(&NeuronSweepConfig::smoke());
        assert_eq!(result.rows.len(), 2);
        for row in &result.rows {
            assert!(row.bsom_accuracy >= 0.0 && row.bsom_accuracy <= 100.0);
            assert!(row.csom_accuracy >= 0.0 && row.csom_accuracy <= 100.0);
            assert!(row.bsom_unused <= row.neurons);
            assert!(row.csom_unused <= row.neurons);
        }
        // More neurons should not hurt accuracy dramatically on this data.
        assert!(result.rows[1].bsom_accuracy + 15.0 > result.rows[0].bsom_accuracy);
        assert!(result.render().to_string().contains("Neurons"));
    }
}
