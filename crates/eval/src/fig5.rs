//! Figures 4–5 and the §V timing claims: per-block cycle counts, WTA tree
//! depth versus network size, and the derived throughput at 40 MHz.

use bsom_fpga::{
    recognition_throughput, training_throughput, FpgaBSom, FpgaConfig, ThroughputReport,
    WinnerTakeAllBlock,
};
use bsom_signature::BinaryVector;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// The timing reproduction output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Cycles for the weight-initialisation block (paper: 768).
    pub init_cycles: u64,
    /// Cycles to load one pattern (paper: 768).
    pub load_cycles: u64,
    /// Cycles for the parallel Hamming units (paper: 768).
    pub hamming_cycles: u64,
    /// Cycles for the WTA comparator tree at 40 neurons (paper: 7).
    pub wta_cycles: u64,
    /// Cycles for the neighbourhood update pass.
    pub update_cycles: u64,
    /// WTA tree depth for a range of network sizes.
    pub wta_sweep: Vec<(usize, u64)>,
    /// Recognition throughput at the paper's clock.
    pub recognition: ThroughputReport,
    /// Training throughput at the paper's clock.
    pub training: ThroughputReport,
    /// Seconds to train one pass over the paper's 2,248-signature set.
    pub seconds_per_training_epoch: f64,
}

impl Fig5Result {
    /// Renders the per-block cycle counts alongside the paper's figures.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(["Block", "Cycles", "Paper"]);
        table.push_row([
            "Weight initialisation".to_owned(),
            self.init_cycles.to_string(),
            "768".to_owned(),
        ]);
        table.push_row([
            "Pattern input".to_owned(),
            self.load_cycles.to_string(),
            "768".to_owned(),
        ]);
        table.push_row([
            "Hamming distances (parallel)".to_owned(),
            self.hamming_cycles.to_string(),
            "768".to_owned(),
        ]);
        table.push_row([
            "WTA comparator tree (40 neurons)".to_owned(),
            self.wta_cycles.to_string(),
            "7".to_owned(),
        ]);
        table.push_row([
            "Neighbourhood update".to_owned(),
            self.update_cycles.to_string(),
            "768".to_owned(),
        ]);
        table.push_row([
            "Recognition signatures/s @40MHz".to_owned(),
            format!("{:.0}", self.recognition.patterns_per_second),
            ">= 25000".to_owned(),
        ]);
        table.push_row([
            "Training patterns/s @40MHz".to_owned(),
            format!("{:.0}", self.training.patterns_per_second),
            "(thousands/s)".to_owned(),
        ]);
        table
    }
}

/// Runs the timing reproduction for the paper's design point.
pub fn run() -> Fig5Result {
    let config = FpgaConfig::paper_default();
    let mut fpga = FpgaBSom::new(config, 0xF15);
    let init = fpga.initialize();
    let input = BinaryVector::from_bits((0..config.vector_len).map(|i| i % 4 == 0));
    let classify = fpga.classify(&input).expect("initialised design");
    let train = fpga
        .train_pattern(&input, 0, 100)
        .expect("initialised design");

    let wta_sweep = (10..=100)
        .step_by(10)
        .map(|n| (n, WinnerTakeAllBlock::cycles_for(n)))
        .collect();

    let recognition = recognition_throughput(config);
    let training = training_throughput(config);
    let seconds_per_training_epoch = training.seconds_for(2248);

    Fig5Result {
        init_cycles: init.init_cycles,
        load_cycles: classify.cycles.load_cycles,
        hamming_cycles: classify.cycles.hamming_cycles,
        wta_cycles: classify.cycles.wta_cycles,
        update_cycles: train.cycles.update_cycles,
        wta_sweep,
        recognition,
        training,
        seconds_per_training_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_counts_match_the_paper() {
        let result = run();
        assert_eq!(result.init_cycles, 768);
        assert_eq!(result.load_cycles, 768);
        assert_eq!(result.hamming_cycles, 768);
        assert_eq!(result.wta_cycles, 7);
        assert_eq!(result.update_cycles, 768);
    }

    #[test]
    fn throughput_claims_hold() {
        let result = run();
        assert!(result.recognition.patterns_per_second >= 25_000.0);
        assert!(result.seconds_per_training_epoch < 1.0);
    }

    #[test]
    fn wta_sweep_covers_ten_to_one_hundred_neurons() {
        let result = run();
        assert_eq!(result.wta_sweep.len(), 10);
        assert_eq!(result.wta_sweep[0], (10, 5));
        assert_eq!(result.wta_sweep[3], (40, 7));
        assert!(result.wta_sweep.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn rendering_mentions_every_block() {
        let text = run().render().to_string();
        assert!(text.contains("Weight initialisation"));
        assert!(text.contains("WTA comparator tree"));
        assert!(text.contains("25000"));
    }
}
