//! Table III: the specification of the bSOM as implemented on the FPGA
//! (network size, vector widths, initial weights, maximum neighbourhood).

use bsom_fpga::FpgaConfig;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// The rendered specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Result {
    /// The design the specification describes.
    pub config: FpgaConfig,
}

impl Table3Result {
    /// Renders the specification in the layout of Table III.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(["Parameter", "Value"]);
        table.push_row([
            "Network Size".to_owned(),
            format!("{} neurons", self.config.neurons),
        ]);
        table.push_row([
            "Input vectors".to_owned(),
            format!("{} bits", self.config.vector_len),
        ]);
        table.push_row([
            "Neuron vectors".to_owned(),
            format!("{} bits", self.config.vector_len),
        ]);
        table.push_row(["Initial weights".to_owned(), "Random".to_owned()]);
        table.push_row([
            "Maximum neighbourhood".to_owned(),
            format!("{} neurons", self.config.max_neighbourhood),
        ]);
        table
    }
}

/// Produces Table III for the paper's design point.
pub fn run() -> Table3Result {
    Table3Result {
        config: FpgaConfig::paper_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specification_matches_table_three() {
        let result = run();
        assert_eq!(result.config.neurons, 40);
        assert_eq!(result.config.vector_len, 768);
        assert_eq!(result.config.max_neighbourhood, 4);
        let text = result.render().to_string();
        assert!(text.contains("40 neurons"));
        assert!(text.contains("768 bits"));
        assert!(text.contains("Random"));
        assert!(text.contains("Maximum neighbourhood"));
        assert_eq!(result.render().row_count(), 5);
    }
}
