//! `bsom-eval`: regenerate every table and figure of the paper from the
//! reproduction.
//!
//! ```text
//! bsom-eval <experiment> [--quick|--paper] [--json]
//!
//! experiments:
//!   table1        Table I   — cSOM vs bSOM accuracy across iteration budgets
//!   table2        Table II  — Wilcoxon rank-sum analysis of Table I
//!   table3        Table III — FPGA design specification
//!   table4        Table IV  — XC4VLX160 resource utilisation
//!   fig2          Fig. 2    — histogram -> binary signature example
//!   fig3          Fig. 3    — signature evolution rasters
//!   fig5          Fig. 4/5  — block cycle counts and throughput
//!   fig6          Fig. 6    — end-to-end FPGA recognition
//!   neuron-sweep  §IV       — accuracy vs neuron count
//!   train         §V-E      — bit-serial vs word-parallel training throughput
//!   ablation      DESIGN.md — update-rule / binarisation ablations
//!   all           every experiment above (table1/2 use the selected profile)
//! ```

use std::env;
use std::process::ExitCode;

use bsom_eval::{
    ablation, fig2, fig3, fig5, fig6, neuron_sweep, table1, table2, table3, table4,
    train_throughput,
};

/// Which Table I protocol to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Profile {
    Quick,
    Paper,
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut experiment = None;
    let mut profile = Profile::Quick;
    let mut json = false;
    for arg in &args {
        match arg.as_str() {
            "--quick" => profile = Profile::Quick,
            "--paper" => profile = Profile::Paper,
            "--json" => json = true,
            "--help" | "-h" => {
                print_usage();
                return ExitCode::SUCCESS;
            }
            name if experiment.is_none() && !name.starts_with('-') => {
                experiment = Some(name.to_owned());
            }
            other => {
                eprintln!("unrecognised argument: {other}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(experiment) = experiment else {
        print_usage();
        return ExitCode::FAILURE;
    };

    match experiment.as_str() {
        "table1" => run_table1(profile, json),
        "table2" => run_table2(profile, json),
        "table3" => emit(json, &table3::run(), |r| r.render().to_string()),
        "table4" => emit(json, &table4::run(), |r| r.render().to_string()),
        "fig2" => emit(json, &fig2::run(2), |r| {
            format!(
                "{}\ntoy threshold = {:.2}\nfull signature: {} of 768 bits set (theta = {:.2})\n",
                r.render(),
                r.toy_threshold,
                r.full_ones,
                r.full_threshold
            )
        }),
        "fig3" => emit(json, &fig3::run(3, 40, 3), |r| {
            format!("{}\n{}", r.render(), r.ascii_raster(0, 12))
        }),
        "fig5" => emit(json, &fig5::run(), |r| r.render().to_string()),
        "fig6" => emit(json, &fig6::run(&fig6::Fig6Config::quick()), |r| {
            r.render().to_string()
        }),
        "neuron-sweep" | "neuron_sweep" => emit(
            json,
            &neuron_sweep::run(&neuron_sweep::NeuronSweepConfig::paper_default()),
            |r| r.render().to_string(),
        ),
        "train" | "train-throughput" | "train_throughput" => {
            emit(json, &train_throughput::run(&train_config(profile)), |r| {
                r.render().to_string()
            })
        }
        "ablation" => emit(
            json,
            &ablation::run(&ablation::AblationConfig::quick()),
            |r| r.render().to_string(),
        ),
        "all" => {
            run_all(profile, json);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown experiment: {other}");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!(
        "usage: bsom-eval <table1|table2|table3|table4|fig2|fig3|fig5|fig6|neuron-sweep|train|ablation|all> [--quick|--paper] [--json]"
    );
}

fn table1_config(profile: Profile) -> table1::Table1Config {
    match profile {
        Profile::Quick => table1::Table1Config::quick(),
        Profile::Paper => table1::Table1Config::paper_default(),
    }
}

fn train_config(profile: Profile) -> train_throughput::TrainThroughputConfig {
    match profile {
        Profile::Quick => train_throughput::TrainThroughputConfig::quick(),
        Profile::Paper => train_throughput::TrainThroughputConfig::paper_default(),
    }
}

fn run_table1(profile: Profile, json: bool) -> ExitCode {
    let result = table1::run(&table1_config(profile));
    emit(json, &result, |r| r.render().to_string())
}

fn run_table2(profile: Profile, json: bool) -> ExitCode {
    let t1 = table1::run(&table1_config(profile));
    let result = table2::run(&t1);
    emit(json, &result, |r| r.render().to_string())
}

fn run_all(profile: Profile, json: bool) {
    println!("== Table I ==");
    let t1 = table1::run(&table1_config(profile));
    print_result(json, &t1, |r| r.render().to_string());
    println!("\n== Table II ==");
    print_result(json, &table2::run(&t1), |r| r.render().to_string());
    println!("\n== Table III ==");
    print_result(json, &table3::run(), |r| r.render().to_string());
    println!("\n== Table IV ==");
    print_result(json, &table4::run(), |r| r.render().to_string());
    println!("\n== Figure 2 ==");
    print_result(json, &fig2::run(2), |r| r.render().to_string());
    println!("\n== Figure 3 ==");
    print_result(json, &fig3::run(3, 40, 3), |r| r.render().to_string());
    println!("\n== Figure 4/5 + timing ==");
    print_result(json, &fig5::run(), |r| r.render().to_string());
    println!("\n== Figure 6 ==");
    print_result(json, &fig6::run(&fig6::Fig6Config::quick()), |r| {
        r.render().to_string()
    });
    println!("\n== Neuron sweep (§IV) ==");
    print_result(
        json,
        &neuron_sweep::run(&neuron_sweep::NeuronSweepConfig::paper_default()),
        |r| r.render().to_string(),
    );
    println!("\n== Training throughput ==");
    print_result(json, &train_throughput::run(&train_config(profile)), |r| {
        r.render().to_string()
    });
    println!("\n== Ablations ==");
    print_result(
        json,
        &ablation::run(&ablation::AblationConfig::quick()),
        |r| r.render().to_string(),
    );
}

fn emit<T: serde::Serialize>(json: bool, value: &T, text: impl Fn(&T) -> String) -> ExitCode {
    print_result(json, value, text);
    ExitCode::SUCCESS
}

fn print_result<T: serde::Serialize>(json: bool, value: &T, text: impl Fn(&T) -> String) {
    if json {
        match serde_json::to_string_pretty(value) {
            Ok(s) => println!("{s}"),
            Err(e) => eprintln!("failed to serialise result: {e}"),
        }
    } else {
        println!("{}", text(value));
    }
}
