//! Table IV: resource utilisation of the design on the Virtex-4 XC4VLX160,
//! regenerated from the analytical resource model.

use bsom_fpga::ResourceReport;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// The rendered utilisation report plus the paper's reference numbers for
/// comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Result {
    /// The regenerated report.
    pub report: ResourceReport,
    /// The numbers printed in the paper, in Table IV row order
    /// (flip-flops, LUTs, IOBs, slices, RAM16s).
    pub paper_used: [u64; 5],
}

impl Table4Result {
    /// Renders the report in the layout of Table IV with an extra column
    /// showing the paper's reported figure.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(["Resource", "Total", "Used", "Per.(%)", "Paper"]);
        for ((label, total, used, percent), paper) in
            self.report.rows().into_iter().zip(self.paper_used)
        {
            table.push_row([
                label,
                total.to_string(),
                used.to_string(),
                percent.to_string(),
                paper.to_string(),
            ]);
        }
        table
    }

    /// Maximum relative deviation of the regenerated usage from the paper's
    /// figures (0.0 = identical).
    pub fn max_relative_error(&self) -> f64 {
        self.report
            .rows()
            .iter()
            .zip(self.paper_used)
            .map(|((_, _, used, _), paper)| {
                if paper == 0 {
                    0.0
                } else {
                    (*used as f64 - paper as f64).abs() / paper as f64
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Produces Table IV for the paper's design point (40 neurons × 768 bits).
pub fn run() -> Table4Result {
    run_for(40, 768)
}

/// Produces the utilisation table for an arbitrary design shape.
pub fn run_for(neurons: usize, vector_len: usize) -> Table4Result {
    Table4Result {
        report: ResourceReport::for_bsom(neurons, vector_len),
        paper_used: [4_095, 18_387, 147, 11_468, 43],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regenerated_numbers_match_the_paper_exactly_at_the_design_point() {
        let result = run();
        assert_eq!(result.max_relative_error(), 0.0);
        let text = result.render().to_string();
        assert!(text.contains("18387"));
        assert!(text.contains("4095"));
        assert!(text.contains("RAM16s"));
        assert!(text.contains("135168"));
    }

    #[test]
    fn other_design_points_scale_but_do_not_match_the_paper() {
        let result = run_for(80, 768);
        assert!(result.max_relative_error() > 0.5);
        assert!(result.report.fits());
    }
}
