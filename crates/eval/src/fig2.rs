//! Figure 2: the histogram → binary feature vector worked example.
//!
//! The paper's Fig. 2 shows a 16-bin histogram thresholded at its mean to
//! produce a 16-bit feature vector. This experiment reproduces that toy
//! example and additionally runs the real 768-bin pipeline on one sampled
//! silhouette so the output shows both scales.

use bsom_dataset::{AppearanceModel, CorruptionConfig};
use bsom_signature::histogram::binarize_at_mean;
use bsom_signature::{BinaryVector, ColorHistogram};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// The Fig. 2 reproduction output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// The 16 toy histogram bins.
    pub toy_bins: Vec<u32>,
    /// The mean threshold θ of the toy histogram.
    pub toy_threshold: f64,
    /// The 16-bit feature vector of the toy histogram.
    pub toy_bits: BinaryVector,
    /// The mean threshold of the full 768-bin histogram.
    pub full_threshold: f64,
    /// Number of set bits in the 768-bit signature.
    pub full_ones: usize,
    /// The 768-bin histogram of a sampled silhouette.
    pub full_histogram: ColorHistogram,
    /// The 768-bit signature of that silhouette.
    pub full_signature: BinaryVector,
}

impl Fig2Result {
    /// Renders the toy half of the figure bin by bin.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(["Bin", "Count", ">= theta", "Bit"]);
        for (i, &count) in self.toy_bins.iter().enumerate() {
            let set = f64::from(count) >= self.toy_threshold;
            table.push_row([
                i.to_string(),
                count.to_string(),
                if set { "yes" } else { "no" }.to_owned(),
                if set { "1" } else { "0" }.to_owned(),
            ]);
        }
        table
    }
}

/// Runs the Fig. 2 reproduction.
pub fn run(seed: u64) -> Fig2Result {
    // The toy 16-bin histogram drawn in the paper's figure (values chosen to
    // match its visual profile: a few tall bins, several short ones).
    let toy_bins: Vec<u32> = vec![6, 2, 7, 6, 8, 1, 9, 2, 6, 1, 5, 4, 0, 1, 0, 3];
    let total: u32 = toy_bins.iter().sum();
    let toy_threshold = f64::from(total) / toy_bins.len() as f64;
    let toy_bits = binarize_at_mean(&toy_bins);

    let mut rng = StdRng::seed_from_u64(seed);
    let model = AppearanceModel::generate(0, &mut rng);
    let full_histogram = model.sample_histogram(&CorruptionConfig::default(), &mut rng);
    let full_threshold = full_histogram.mean_threshold();
    let full_signature = full_histogram.to_signature();

    Fig2Result {
        toy_bins,
        toy_threshold,
        toy_bits,
        full_threshold,
        full_ones: full_signature.count_ones(),
        full_histogram,
        full_signature,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_example_matches_equations_one_and_two() {
        let result = run(1);
        assert_eq!(result.toy_bins.len(), 16);
        assert_eq!(result.toy_bits.len(), 16);
        // Every bit agrees with the threshold test of Eq. 2.
        for (i, &count) in result.toy_bins.iter().enumerate() {
            assert_eq!(
                result.toy_bits.bit(i),
                f64::from(count) >= result.toy_threshold,
                "bin {i}"
            );
        }
    }

    #[test]
    fn full_pipeline_produces_a_768_bit_signature() {
        let result = run(7);
        assert_eq!(result.full_signature.len(), 768);
        assert_eq!(result.full_ones, result.full_signature.count_ones());
        assert!(result.full_threshold > 0.0);
        assert!(result.full_ones > 0 && result.full_ones < 768);
    }

    #[test]
    fn rendering_lists_every_toy_bin() {
        let result = run(1);
        assert_eq!(result.render().row_count(), 16);
        assert!(result.render().to_string().contains("theta"));
    }

    #[test]
    fn same_seed_is_reproducible() {
        assert_eq!(run(3).full_signature, run(3).full_signature);
    }
}
