//! Table II: one-tailed Wilcoxon rank-sum tests on the per-repetition
//! accuracies underlying Table I, reporting the mean rank of each algorithm,
//! the z statistic and the direction of any significant difference at the
//! 5 % level.

use bsom_stats::{wilcoxon_rank_sum, Alternative, SignificanceDirection};
use serde::{Deserialize, Serialize};

use crate::report::TextTable;
use crate::table1::Table1Result;

/// The direction symbol used in the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// bSOM significantly higher (the paper's "≻").
    BsomBetter,
    /// cSOM significantly higher (the paper's "≺").
    CsomBetter,
    /// No significant difference (the paper's "−").
    NoDifference,
}

impl Direction {
    /// The symbol printed in the rendered table.
    pub fn symbol(self) -> &'static str {
        match self {
            Direction::BsomBetter => "bSOM>",
            Direction::CsomBetter => "cSOM>",
            Direction::NoDifference => "-",
        }
    }
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// The iteration budget.
    pub iterations: usize,
    /// Mean rank of the cSOM repetitions under joint ranking.
    pub csom_mean_rank: f64,
    /// Mean rank of the bSOM repetitions under joint ranking.
    pub bsom_mean_rank: f64,
    /// The z statistic (negative when the cSOM ranks lower).
    pub z: f64,
    /// One-tailed p-value in the direction favoured by the data.
    pub p_value: f64,
    /// Verdict at the 5 % level.
    pub direction: Direction,
}

/// The complete Table II result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Result {
    /// Significance level used (the paper uses 0.05).
    pub alpha: f64,
    /// One row per iteration budget.
    pub rows: Vec<Table2Row>,
}

impl Table2Result {
    /// Renders the result in the layout of Table II.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(["Iteration", "cSOM rank", "bSOM rank", "z", "p", "Sig."]);
        for row in &self.rows {
            table.push_row([
                row.iterations.to_string(),
                format!("{:.2}", row.csom_mean_rank),
                format!("{:.2}", row.bsom_mean_rank),
                format!("{:.2}", row.z),
                format!("{:.4}", row.p_value),
                row.direction.symbol().to_owned(),
            ]);
        }
        table
    }

    /// Number of budgets where the bSOM is declared significantly better.
    pub fn bsom_wins(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.direction == Direction::BsomBetter)
            .count()
    }

    /// Number of budgets where the cSOM is declared significantly better.
    pub fn csom_wins(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.direction == Direction::CsomBetter)
            .count()
    }
}

/// Runs the Table II analysis on a Table I result (α = 0.05, as in the
/// paper).
pub fn run(table1: &Table1Result) -> Table2Result {
    run_with_alpha(table1, 0.05)
}

/// Runs the analysis at an explicit significance level.
pub fn run_with_alpha(table1: &Table1Result, alpha: f64) -> Table2Result {
    let rows = table1
        .rows
        .iter()
        .map(|row| {
            // First sample = cSOM, second = bSOM, matching the paper's layout.
            let test = wilcoxon_rank_sum(&row.csom_runs, &row.bsom_runs, Alternative::TwoSided);
            let direction = match test.direction(alpha) {
                SignificanceDirection::FirstHigher => Direction::CsomBetter,
                SignificanceDirection::SecondHigher => Direction::BsomBetter,
                SignificanceDirection::NotSignificant => Direction::NoDifference,
            };
            // Report the one-tailed p-value in the favoured direction, as the
            // paper's one-tailed protocol does.
            let p_one_tailed = (test.p_value / 2.0).min(1.0);
            Table2Row {
                iterations: row.iterations,
                csom_mean_rank: test.mean_rank1,
                bsom_mean_rank: test.mean_rank2,
                z: test.z,
                p_value: p_one_tailed,
                direction,
            }
        })
        .collect();
    Table2Result { alpha, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table1::{Table1Config, Table1Result, Table1Row};

    fn synthetic_table1(csom: Vec<f64>, bsom: Vec<f64>) -> Table1Result {
        Table1Result {
            config: Table1Config::smoke(),
            rows: vec![Table1Row {
                iterations: 10,
                csom_runs: csom,
                bsom_runs: bsom,
            }],
        }
    }

    #[test]
    fn clearly_separated_runs_flag_the_bsom_as_better() {
        let t1 = synthetic_table1(
            vec![80.0, 80.5, 81.0, 80.2, 80.8, 80.1, 80.9, 80.4, 80.6, 80.3],
            vec![84.0, 84.5, 85.0, 84.2, 84.8, 84.1, 84.9, 84.4, 84.6, 84.3],
        );
        let t2 = run(&t1);
        assert_eq!(t2.rows.len(), 1);
        let row = &t2.rows[0];
        assert!((row.csom_mean_rank - 5.5).abs() < 1e-9);
        assert!((row.bsom_mean_rank - 15.5).abs() < 1e-9);
        assert!(row.z < -3.0);
        assert_eq!(row.direction, Direction::BsomBetter);
        assert_eq!(t2.bsom_wins(), 1);
        assert_eq!(t2.csom_wins(), 0);
        assert!(row.p_value < 0.01);
    }

    #[test]
    fn reversed_separation_flags_the_csom() {
        let t1 = synthetic_table1(
            vec![90.0, 90.5, 91.0, 90.2, 90.8],
            vec![84.0, 84.5, 85.0, 84.2, 84.8],
        );
        let t2 = run(&t1);
        assert_eq!(t2.rows[0].direction, Direction::CsomBetter);
        assert!(t2.rows[0].z > 0.0);
    }

    #[test]
    fn overlapping_runs_are_not_significant() {
        let t1 = synthetic_table1(
            vec![85.0, 84.0, 86.0, 85.5, 84.5],
            vec![85.2, 84.1, 85.9, 85.4, 84.7],
        );
        let t2 = run(&t1);
        assert_eq!(t2.rows[0].direction, Direction::NoDifference);
    }

    #[test]
    fn rendering_contains_the_direction_symbols() {
        let t1 = synthetic_table1(vec![80.0, 80.1, 80.2], vec![90.0, 90.1, 90.2]);
        let text = run(&t1).render().to_string();
        assert!(text.contains("bSOM>"));
        assert!(text.contains("Iteration"));
    }

    #[test]
    fn direction_symbols() {
        assert_eq!(Direction::BsomBetter.symbol(), "bSOM>");
        assert_eq!(Direction::CsomBetter.symbol(), "cSOM>");
        assert_eq!(Direction::NoDifference.symbol(), "-");
    }
}
