//! Figure 6: the end-to-end recognition flow — signatures from tracked
//! objects fed to the FPGA-hosted bSOM, whose labelled neurons identify the
//! object.
//!
//! Reproduction: train a software bSOM off-line on the synthetic dataset
//! (§V-F's off-line training on PC-extracted signatures), load its weights
//! into the cycle-accurate FPGA model, then run the synthetic scene through
//! the vision pipeline and classify every observation on the "FPGA",
//! scoring against the scene's ground truth.

use bsom_dataset::{DatasetConfig, SurveillanceDataset};
use bsom_fpga::FpgaBSom;
use bsom_som::{BSom, BSomConfig, LabelledSom, SelfOrganizingMap, TrainSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// Configuration of the end-to-end experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Config {
    /// Dataset used for the off-line training phase.
    pub dataset: DatasetConfig,
    /// Training iterations (full passes) for the off-line phase.
    pub train_iterations: usize,
    /// Number of live test signatures classified on the FPGA model.
    pub live_signatures: usize,
    /// Base random seed.
    pub seed: u64,
}

impl Fig6Config {
    /// A tractable default: a 900/450 dataset, 30 training iterations, 300
    /// live signatures.
    pub fn quick() -> Self {
        Fig6Config {
            dataset: DatasetConfig {
                train_instances: 900,
                test_instances: 450,
                ..DatasetConfig::paper_default()
            },
            train_iterations: 30,
            live_signatures: 300,
            seed: 6,
        }
    }

    /// A smoke-test configuration for the integration tests.
    pub fn smoke() -> Self {
        Fig6Config {
            dataset: DatasetConfig {
                train_instances: 150,
                test_instances: 80,
                ..DatasetConfig::paper_default()
            },
            train_iterations: 10,
            live_signatures: 60,
            seed: 6,
        }
    }
}

impl Default for Fig6Config {
    fn default() -> Self {
        Self::quick()
    }
}

/// The end-to-end result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Number of live signatures presented to the FPGA model.
    pub presented: usize,
    /// Number identified with the correct label.
    pub correct: usize,
    /// Number rejected (unlabelled winning neuron).
    pub unknown: usize,
    /// Recognition accuracy in percent.
    pub accuracy_percent: f64,
    /// Total FPGA cycles consumed by the live phase.
    pub fpga_cycles: u64,
    /// Wall-clock seconds those cycles correspond to at 40 MHz.
    pub fpga_seconds: f64,
    /// Number of neurons that ended up labelled.
    pub labelled_neurons: usize,
}

impl Fig6Result {
    /// Renders the summary.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(["Metric", "Value"]);
        table.push_row(["Live signatures".to_owned(), self.presented.to_string()]);
        table.push_row(["Correct".to_owned(), self.correct.to_string()]);
        table.push_row(["Unknown".to_owned(), self.unknown.to_string()]);
        table.push_row([
            "Accuracy".to_owned(),
            format!("{:.2}%", self.accuracy_percent),
        ]);
        table.push_row([
            "Labelled neurons".to_owned(),
            self.labelled_neurons.to_string(),
        ]);
        table.push_row(["FPGA cycles".to_owned(), self.fpga_cycles.to_string()]);
        table.push_row([
            "FPGA time @40MHz".to_owned(),
            format!("{:.4} s", self.fpga_seconds),
        ]);
        table
    }
}

/// Runs the end-to-end experiment.
pub fn run(config: &Fig6Config) -> Fig6Result {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dataset = SurveillanceDataset::generate(&config.dataset, &mut rng);

    // Off-line training on the PC (software bSOM), §V-F.
    let mut som = BSom::new(
        BSomConfig {
            neurons: 40,
            vector_len: 768,
            ..BSomConfig::paper_default()
        },
        &mut rng,
    );
    som.train_labelled_data(
        &dataset.train,
        TrainSchedule::new(config.train_iterations),
        &mut rng,
    )
    .expect("training data is non-empty");
    let classifier = LabelledSom::label(som, &dataset.train);
    let labelled_neurons = classifier
        .neuron_labels()
        .iter()
        .filter(|l| l.is_some())
        .count();

    // Deploy the weights onto the FPGA model.
    let mut fpga = FpgaBSom::from_trained(classifier.map());
    let start_cycles = fpga.total_cycles();

    // Live identification of held-out signatures.
    let live: Vec<_> = dataset
        .test
        .iter()
        .take(config.live_signatures)
        .cloned()
        .collect();
    let mut correct = 0usize;
    let mut unknown = 0usize;
    for (signature, actual) in &live {
        let outcome = fpga.classify(signature).expect("weights loaded");
        match classifier.neuron_labels()[outcome.winner.index] {
            Some(label) if label == *actual => correct += 1,
            Some(_) => {}
            None => unknown += 1,
        }
    }
    let fpga_cycles = fpga.total_cycles() - start_cycles;
    let presented = live.len();

    Fig6Result {
        presented,
        correct,
        unknown,
        accuracy_percent: if presented == 0 {
            0.0
        } else {
            correct as f64 / presented as f64 * 100.0
        },
        fpga_cycles,
        fpga_seconds: fpga.config().clock.cycles_to_secs(fpga_cycles),
        labelled_neurons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_identifies_most_live_signatures() {
        let result = run(&Fig6Config::smoke());
        assert_eq!(result.presented, 60);
        assert!(result.labelled_neurons > 5);
        assert!(
            result.accuracy_percent > 40.0,
            "end-to-end accuracy too low: {:.2}%",
            result.accuracy_percent
        );
        // 1543 cycles per recognition.
        assert_eq!(result.fpga_cycles, 60 * 1543);
        assert!(result.fpga_seconds < 0.01);
        let text = result.render().to_string();
        assert!(text.contains("Accuracy"));
    }

    #[test]
    fn accuracy_is_consistent_with_counts() {
        let result = run(&Fig6Config::smoke());
        let expected = result.correct as f64 / result.presented as f64 * 100.0;
        assert!((result.accuracy_percent - expected).abs() < 1e-9);
    }
}
