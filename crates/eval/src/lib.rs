//! # bsom-eval
//!
//! The experiment harness: one module per table / figure of the paper's
//! evaluation, each exposing a `Config`, a `run` function returning a
//! serialisable result, and a text renderer that prints the same rows the
//! paper reports. The `bsom-eval` binary exposes every experiment as a
//! subcommand (`bsom-eval table1`, `bsom-eval fig5`, `bsom-eval all`, …).
//!
//! | Experiment | Paper artefact | Module |
//! |---|---|---|
//! | Table I | cSOM vs bSOM accuracy across iteration budgets | [`table1`] |
//! | Table II | One-tailed Wilcoxon rank-sum on Table I runs | [`table2`] |
//! | Table III | FPGA design specification | [`table3`] |
//! | Table IV | XC4VLX160 resource utilisation | [`table4`] |
//! | Fig. 2 | Histogram → binary signature worked example | [`fig2`] |
//! | Fig. 3 | Per-identity signature evolution over time | [`fig3`] |
//! | Fig. 4/5 + §V | Block cycle counts and throughput | [`fig5`] |
//! | Fig. 6 | End-to-end FPGA recognition after off-line training | [`fig6`] |
//! | §IV text | Neuron-count sweep (both SOMs > 90 % above 50 neurons) | [`neuron_sweep`] |
//! | §V-E + DESIGN.md | Bit-serial vs word-parallel training throughput | [`train_throughput`] |
//! | DESIGN.md §"Experiment and ablation index" | Update rule / binarisation threshold ablations | [`ablation`] |
//!
//! ## Quick example
//!
//! Regenerate the (deterministic) Table III design specification and render
//! it as text:
//!
//! ```rust
//! let result = bsom_eval::table3::run();
//! assert_eq!(result.config.neurons, 40);
//! assert_eq!(result.config.vector_len, 768);
//! let text = result.render().to_string();
//! assert!(text.contains("Network Size"));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablation;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod neuron_sweep;
pub mod report;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod train_throughput;

pub use report::TextTable;
