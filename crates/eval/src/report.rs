//! Plain-text table rendering shared by every experiment.

use std::fmt;

/// A simple fixed-width text table: a header row plus data rows, rendered
/// with column widths fitted to the content.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row; short rows are padded with empty cells and long
    /// rows are truncated to the header width.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Column widths fitted to content.
    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render_row(&self.header))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_and_rows() {
        let mut t = TextTable::new(["Iterations", "cSOM", "bSOM"]);
        t.push_row(["10", "81.84%", "84.41%"]);
        t.push_row(["500", "87.42%", "86.89%"]);
        let text = t.to_string();
        assert!(text.contains("Iterations"));
        assert!(text.contains("84.41%"));
        assert!(text.contains("---"));
        assert_eq!(t.row_count(), 2);
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["1"]);
        t.push_row(["1", "2", "3"]);
        let text = t.to_string();
        assert_eq!(text.lines().count(), 4);
        assert!(!text.contains('3'));
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(["x"]);
        assert_eq!(t.to_string().lines().count(), 2);
        assert_eq!(t.row_count(), 0);
    }
}
