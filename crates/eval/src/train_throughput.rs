//! Training-datapath throughput: the plane-sliced window trainer versus the
//! per-neuron word-parallel and bit-serial references, next to the FPGA
//! cycle model's training figure.
//!
//! The recognition side of this comparison lives in `bsom-engine`'s
//! [`throughput`](bsom_engine::throughput) module and the `fig5` experiment;
//! this experiment is the training half (DESIGN.md §"The word-parallel
//! trainer"): how many pattern presentations per second each software
//! datapath sustains on a given configuration, and how both relate to the
//! §V-E sub-second-training claim the cycle model reproduces.

use std::time::Duration;

use bsom_engine::{compare_training_throughput, TrainThroughputComparison};
use bsom_fpga::{training_throughput, FpgaConfig, ThroughputReport};
use bsom_signature::BinaryVector;
use bsom_som::BSomConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// Configuration for the training-throughput experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainThroughputConfig {
    /// Neurons in the measured map.
    pub neurons: usize,
    /// Vector length in bits.
    pub vector_len: usize,
    /// Patterns per measured epoch.
    pub patterns: usize,
    /// Milliseconds of wall clock spent on each measured path.
    pub min_duration_ms: u64,
    /// Seed for the map construction and the synthetic patterns.
    pub seed: u64,
}

impl TrainThroughputConfig {
    /// A fast profile for CI and interactive runs (tens of milliseconds per
    /// path on the paper shape).
    pub fn quick() -> Self {
        TrainThroughputConfig {
            neurons: 40,
            vector_len: 768,
            patterns: 32,
            min_duration_ms: 60,
            seed: 0xB50A,
        }
    }

    /// The paper configuration measured long enough for stable figures.
    pub fn paper_default() -> Self {
        TrainThroughputConfig {
            patterns: 300,
            min_duration_ms: 1500,
            ..TrainThroughputConfig::quick()
        }
    }
}

/// The training-throughput experiment output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainThroughputResult {
    /// The configuration that was measured.
    pub config: TrainThroughputConfig,
    /// Software bit-serial vs per-neuron vs plane-sliced-window steps per
    /// second.
    pub comparison: TrainThroughputComparison,
    /// The FPGA cycle model's training throughput at the paper's clock.
    pub fpga: ThroughputReport,
    /// Production (window) steps/s over bit-serial steps/s.
    pub speedup_window_over_bit_serial: f64,
    /// Window steps/s over the per-neuron word-parallel path — the
    /// neighbourhood-broadcast acceptance figure.
    pub speedup_window_over_per_neuron: f64,
    /// Window steps/s over the FPGA cycle-model figure.
    pub window_vs_fpga: f64,
}

impl TrainThroughputResult {
    /// Renders the four training datapaths side by side.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new(["Trainer", "Steps/s", "vs bit-serial"]);
        table.push_row([
            "bit-serial (reference)".to_owned(),
            format!("{:.0}", self.comparison.bit_serial.patterns_per_second),
            "1.00x".to_owned(),
        ]);
        table.push_row([
            "word-parallel (per-neuron)".to_owned(),
            format!("{:.0}", self.comparison.per_neuron.patterns_per_second),
            format!(
                "{:.2}x",
                self.comparison.per_neuron.patterns_per_second
                    / self.comparison.bit_serial.patterns_per_second
            ),
        ]);
        table.push_row([
            "window (plane-sliced)".to_owned(),
            format!("{:.0}", self.comparison.window.patterns_per_second),
            format!("{:.2}x", self.speedup_window_over_bit_serial),
        ]);
        table.push_row([
            "FPGA cycle model (40 MHz)".to_owned(),
            format!("{:.0}", self.fpga.patterns_per_second),
            format!(
                "{:.2}x",
                self.fpga.patterns_per_second / self.comparison.bit_serial.patterns_per_second
            ),
        ]);
        table
    }
}

/// Runs the experiment: synthesises `config.patterns` random signatures,
/// measures both software datapaths from identically seeded maps, and
/// derives the FPGA figure from the cycle model.
pub fn run(config: &TrainThroughputConfig) -> TrainThroughputResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let data: Vec<BinaryVector> = (0..config.patterns.max(1))
        .map(|_| BinaryVector::random(config.vector_len, &mut rng))
        .collect();
    let som_config = BSomConfig {
        neurons: config.neurons,
        vector_len: config.vector_len,
        ..BSomConfig::paper_default()
    };
    let comparison = compare_training_throughput(
        som_config,
        &data,
        Duration::from_millis(config.min_duration_ms),
        config.seed,
    );
    let fpga = training_throughput(FpgaConfig {
        neurons: config.neurons,
        vector_len: config.vector_len,
        ..FpgaConfig::paper_default()
    });
    TrainThroughputResult {
        config: *config,
        speedup_window_over_bit_serial: comparison.speedup(),
        speedup_window_over_per_neuron: comparison.window_speedup(),
        window_vs_fpga: comparison.window.patterns_per_second / fpga.patterns_per_second,
        comparison,
        fpga,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_positive_figures_and_renders() {
        let mut config = TrainThroughputConfig::quick();
        config.min_duration_ms = 10;
        config.patterns = 8;
        let result = run(&config);
        assert!(result.comparison.bit_serial.patterns_per_second > 0.0);
        assert!(result.comparison.per_neuron.patterns_per_second > 0.0);
        assert!(result.comparison.window.patterns_per_second > 0.0);
        assert!(result.speedup_window_over_bit_serial > 0.0);
        assert!(result.speedup_window_over_per_neuron > 0.0);
        assert!(result.fpga.patterns_per_second > 0.0);
        let text = result.render().to_string();
        assert!(text.contains("word-parallel"));
        assert!(text.contains("window"));
        assert!(text.contains("FPGA cycle model"));
        let json = serde_json::to_string(&result).unwrap();
        assert!(json.contains("speedup_window_over_bit_serial"));
    }

    #[test]
    fn paper_profile_uses_the_table_three_shape() {
        let config = TrainThroughputConfig::paper_default();
        assert_eq!(config.neurons, 40);
        assert_eq!(config.vector_len, 768);
        assert!(config.min_duration_ms >= 1000);
    }
}
