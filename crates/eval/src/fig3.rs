//! Figure 3: per-identity signature evolution over time.
//!
//! The paper stacks the per-frame binary signatures of three of the nine
//! tracked people into time × bits rasters, showing that a person's signature
//! is broadly consistent across their walk-through while still evolving
//! frame to frame. This experiment generates the equivalent rasters from the
//! synthetic appearance models and summarises their consistency.

use bsom_dataset::{signature_sequence, AppearanceModel, CorruptionConfig, SignatureFrame};
use bsom_stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::report::TextTable;

/// The signature raster of one identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdentityRaster {
    /// The identity index.
    pub identity: usize,
    /// The per-frame signatures (rows of the raster).
    pub frames: Vec<SignatureFrame>,
    /// Mean Hamming distance between consecutive frames.
    pub mean_consecutive_distance: f64,
    /// Mean Hamming distance between arbitrary frame pairs of the identity.
    pub mean_pairwise_distance: f64,
}

/// The Fig. 3 reproduction output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Result {
    /// One raster per plotted identity (the paper plots three).
    pub rasters: Vec<IdentityRaster>,
    /// Mean Hamming distance between signatures of *different* identities,
    /// for contrast with the within-identity numbers.
    pub mean_cross_identity_distance: f64,
}

impl Fig3Result {
    /// Renders the per-identity consistency summary.
    pub fn render(&self) -> TextTable {
        let mut table = TextTable::new([
            "Identity",
            "Frames",
            "Consecutive dist",
            "Within dist",
            "Cross dist",
        ]);
        for raster in &self.rasters {
            table.push_row([
                raster.identity.to_string(),
                raster.frames.len().to_string(),
                format!("{:.1}", raster.mean_consecutive_distance),
                format!("{:.1}", raster.mean_pairwise_distance),
                format!("{:.1}", self.mean_cross_identity_distance),
            ]);
        }
        table
    }

    /// Renders one identity's raster as rows of `#`/`.` characters,
    /// subsampling the bit axis to fit a terminal (one character per
    /// `bit_stride` bits).
    pub fn ascii_raster(&self, identity_index: usize, bit_stride: usize) -> String {
        let Some(raster) = self.rasters.get(identity_index) else {
            return String::new();
        };
        let stride = bit_stride.max(1);
        let mut out = String::new();
        for frame in &raster.frames {
            for bit in (0..frame.signature.len()).step_by(stride) {
                out.push(if frame.signature.bit(bit) { '#' } else { '.' });
            }
            out.push('\n');
        }
        out
    }
}

/// Runs the Fig. 3 reproduction: `identities` rasters of `frames` frames each.
pub fn run(identities: usize, frames: usize, seed: u64) -> Fig3Result {
    let mut rng = StdRng::seed_from_u64(seed);
    let corruption = CorruptionConfig::default();
    let models: Vec<AppearanceModel> = (0..identities.max(1))
        .map(|i| AppearanceModel::generate(i, &mut rng))
        .collect();

    let rasters: Vec<IdentityRaster> = models
        .iter()
        .map(|model| {
            let frames = signature_sequence(model, &corruption, frames, &mut rng);
            let mut consecutive = Vec::new();
            let mut pairwise = Vec::new();
            for i in 0..frames.len() {
                if i + 1 < frames.len() {
                    consecutive.push(
                        frames[i]
                            .signature
                            .hamming(&frames[i + 1].signature)
                            .unwrap() as f64,
                    );
                }
                for j in (i + 1)..frames.len() {
                    pairwise
                        .push(frames[i].signature.hamming(&frames[j].signature).unwrap() as f64);
                }
            }
            IdentityRaster {
                identity: model.label(),
                frames,
                mean_consecutive_distance: Summary::of(&consecutive).mean,
                mean_pairwise_distance: Summary::of(&pairwise).mean,
            }
        })
        .collect();

    // Cross-identity contrast: first frame of every raster against the others.
    let mut cross = Vec::new();
    for i in 0..rasters.len() {
        for j in (i + 1)..rasters.len() {
            if let (Some(a), Some(b)) = (rasters[i].frames.first(), rasters[j].frames.first()) {
                cross.push(a.signature.hamming(&b.signature).unwrap() as f64);
            }
        }
    }

    Fig3Result {
        rasters,
        mean_cross_identity_distance: Summary::of(&cross).mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_raster_per_identity() {
        let result = run(3, 20, 1);
        assert_eq!(result.rasters.len(), 3);
        for (i, raster) in result.rasters.iter().enumerate() {
            assert_eq!(raster.identity, i);
            assert_eq!(raster.frames.len(), 20);
        }
    }

    #[test]
    fn within_identity_distances_are_smaller_than_cross_identity() {
        let result = run(3, 25, 42);
        for raster in &result.rasters {
            assert!(
                raster.mean_pairwise_distance < result.mean_cross_identity_distance,
                "identity {} within {} !< cross {}",
                raster.identity,
                raster.mean_pairwise_distance,
                result.mean_cross_identity_distance
            );
        }
    }

    #[test]
    fn ascii_raster_has_one_row_per_frame() {
        let result = run(1, 10, 5);
        let ascii = result.ascii_raster(0, 8);
        assert_eq!(ascii.lines().count(), 10);
        assert!(ascii.contains('#'));
        assert_eq!(result.ascii_raster(9, 8), "");
    }

    #[test]
    fn render_contains_every_identity() {
        let result = run(3, 10, 2);
        let text = result.render().to_string();
        assert!(text.contains("Identity"));
        assert_eq!(result.render().row_count(), 3);
    }
}
