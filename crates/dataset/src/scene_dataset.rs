//! Dataset generation through the full vision pipeline.
//!
//! [`from_scene`] is the end-to-end route: render synthetic frames, run
//! background subtraction / connected components / tracking, extract the
//! signature of every surviving detection, and label it using the scene's
//! ground truth (the reproduction's stand-in for the paper's manual operator
//! labelling). It is slower than the histogram-space generator in
//! [`crate::generator`] and is used by the Fig. 6 experiment and the
//! end-to-end example rather than by the Table I sweeps.

use bsom_som::ObjectLabel;
use bsom_vision::pipeline::{PipelineConfig, SurveillancePipeline};
use bsom_vision::scene::{SceneConfig, SceneSimulator};
use rand::Rng;

use crate::LabelledSignature;

/// Runs the synthetic scene for `frames` frames and collects every
/// ground-truth-labelled observation the pipeline produces.
///
/// * People are spawned by the scene's own random entry process.
/// * Each observation is labelled with the identity of the *nearest*
///   ground-truth person in that frame (centroid distance); frames whose
///   detections have no ground truth (spurious foreground) are dropped.
/// * `min_object_pixels` follows the scene scale rather than the paper's 768
///   because the small synthetic people cover fewer pixels than VGA footage.
pub fn from_scene<R: Rng + ?Sized>(
    scene_config: SceneConfig,
    frames: usize,
    warmup_frames: usize,
    rng: &mut R,
) -> Vec<LabelledSignature> {
    let min_pixels = (scene_config.person_width * scene_config.person_height) / 4;
    let mut scene = SceneSimulator::new(scene_config, rng);
    let mut pipeline = SurveillancePipeline::with_config(
        scene.config().width,
        scene.config().height,
        PipelineConfig {
            min_object_pixels: Some(min_pixels.max(64)),
            ..PipelineConfig::default()
        },
    );

    for _ in 0..warmup_frames {
        let frame = scene.render_background_only(rng);
        pipeline.observe_background(&frame);
    }

    let mut out = Vec::new();
    for _ in 0..frames {
        let frame = scene.render_frame(rng);
        if frame.ground_truth.is_empty() {
            // Keep the background model honest on empty frames.
            pipeline.observe_background(&frame.image);
            continue;
        }
        for obs in pipeline.process_frame(&frame.image) {
            // Label by the nearest ground-truth centroid.
            let nearest = frame.ground_truth.iter().min_by(|a, b| {
                let da = dist2(a.centroid, obs.centroid);
                let db = dist2(b.centroid, obs.centroid);
                da.total_cmp(&db)
            });
            if let Some(gt) = nearest {
                out.push((obs.signature, ObjectLabel::new(gt.person)));
            }
        }
    }
    out
}

fn dist2(a: (f64, f64), b: (f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn scene_dataset_produces_labelled_full_length_signatures() {
        let mut rng = StdRng::seed_from_u64(0xACE);
        let config = SceneConfig {
            entry_probability: 0.4,
            jitter: 0,
            lighting_drift: 4,
            ..SceneConfig::small()
        };
        let data = from_scene(config, 120, 10, &mut rng);
        assert!(
            data.len() > 20,
            "expected a reasonable number of observations, got {}",
            data.len()
        );
        for (sig, label) in &data {
            assert_eq!(sig.len(), 768);
            assert!(label.id() < 9);
        }
    }

    #[test]
    fn observations_cover_more_than_one_identity_over_a_long_run() {
        let mut rng = StdRng::seed_from_u64(0xBEE);
        let config = SceneConfig {
            entry_probability: 0.6,
            jitter: 0,
            ..SceneConfig::small()
        };
        let data = from_scene(config, 300, 10, &mut rng);
        let mut labels: Vec<usize> = data.iter().map(|(_, l)| l.id()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert!(
            labels.len() >= 2,
            "expected at least two identities to be observed, got {labels:?}"
        );
    }

    #[test]
    fn zero_frames_give_empty_dataset() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = from_scene(SceneConfig::small(), 0, 5, &mut rng);
        assert!(data.is_empty());
    }
}
