//! Per-identity signature sequences over time (Fig. 3).
//!
//! Fig. 3 of the paper plots, for three of the nine people, the binary
//! signature of every frame of their walk-through stacked as rows of a
//! time × bits raster, showing both the frame-to-frame consistency and the
//! slow evolution of the signature. [`signature_sequence`] generates the data
//! behind such a plot: a sequence of corrupted signatures of one identity in
//! which the corruption parameters drift smoothly over time the way
//! occlusion and lighting do as someone walks across a room.

use bsom_signature::BinaryVector;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::appearance::{AppearanceModel, CorruptionConfig};

/// One time-step of a signature sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureFrame {
    /// Frame index within the walk-through.
    pub frame: usize,
    /// Occlusion fraction in effect at this frame.
    pub occlusion: f64,
    /// Lighting offset in effect at this frame.
    pub lighting: i16,
    /// The 768-bit signature observed at this frame.
    pub signature: BinaryVector,
}

/// Generates a temporally-coherent sequence of `frames` signatures of one
/// identity.
///
/// The occlusion fraction follows a smooth bump (the person walks behind
/// furniture mid-sequence) and the lighting offset follows a slow ramp, so
/// consecutive signatures are more similar than distant ones — the structure
/// visible in Fig. 3.
pub fn signature_sequence<R: Rng + ?Sized>(
    model: &AppearanceModel,
    corruption: &CorruptionConfig,
    frames: usize,
    rng: &mut R,
) -> Vec<SignatureFrame> {
    let mut out = Vec::with_capacity(frames);
    for frame in 0..frames {
        let progress = if frames <= 1 {
            0.0
        } else {
            frame as f64 / (frames - 1) as f64
        };
        // Occlusion bump peaking mid-walk (behind the furniture).
        let occlusion = corruption.max_occlusion * (std::f64::consts::PI * progress).sin().max(0.0);
        // Lighting ramps from dim to bright across the walk.
        let lighting = ((progress - 0.5) * 2.0 * f64::from(corruption.max_lighting_offset)) as i16;
        let frame_corruption = CorruptionConfig {
            max_occlusion: occlusion,
            max_lighting_offset: 0, // applied deterministically below
            ..*corruption
        };
        // Sample with the frame-specific occlusion, then apply the
        // deterministic lighting by regenerating through a histogram whose
        // sampling already includes noise; the simplest faithful route is to
        // fold the lighting into the corruption's noise-free offset by
        // sampling a model whose palette is pre-brightened.
        let lit_model = AppearanceModel {
            person: bsom_vision::scene::PersonModel {
                label: model.person.label,
                head: model.person.head.brightened(lighting),
                torso: model.person.torso.brightened(lighting),
                legs: model.person.legs.brightened(lighting),
            },
            ..*model
        };
        let signature = lit_model.sample_signature(&frame_corruption, rng);
        out.push(SignatureFrame {
            frame,
            occlusion,
            lighting,
            signature,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xF16)
    }

    #[test]
    fn sequence_has_requested_length_and_frame_indices() {
        let mut r = rng();
        let model = AppearanceModel::generate(0, &mut r);
        let seq = signature_sequence(&model, &CorruptionConfig::default(), 25, &mut r);
        assert_eq!(seq.len(), 25);
        for (i, f) in seq.iter().enumerate() {
            assert_eq!(f.frame, i);
            assert_eq!(f.signature.len(), 768);
        }
    }

    #[test]
    fn occlusion_peaks_mid_sequence() {
        let mut r = rng();
        let model = AppearanceModel::generate(1, &mut r);
        let seq = signature_sequence(&model, &CorruptionConfig::default(), 21, &mut r);
        let first = seq.first().unwrap().occlusion;
        let middle = seq[10].occlusion;
        let last = seq.last().unwrap().occlusion;
        assert!(middle > first);
        assert!(middle > last);
    }

    #[test]
    fn lighting_ramps_from_negative_to_positive() {
        let mut r = rng();
        let model = AppearanceModel::generate(2, &mut r);
        let seq = signature_sequence(&model, &CorruptionConfig::default(), 11, &mut r);
        assert!(seq.first().unwrap().lighting < 0);
        assert!(seq.last().unwrap().lighting > 0);
    }

    #[test]
    fn consecutive_frames_are_more_similar_than_within_class_average() {
        let mut r = rng();
        let model = AppearanceModel::generate(3, &mut r);
        let seq = signature_sequence(&model, &CorruptionConfig::default(), 40, &mut r);
        let mut consecutive = 0usize;
        let mut distant = 0usize;
        let pairs = seq.len() - 1;
        for i in 0..pairs {
            consecutive += seq[i].signature.hamming(&seq[i + 1].signature).unwrap();
            let far = (i + seq.len() / 2) % seq.len();
            distant += seq[i].signature.hamming(&seq[far].signature).unwrap();
        }
        assert!(
            consecutive <= distant,
            "consecutive frames should not be farther apart than distant ones \
             (consecutive {consecutive}, distant {distant})"
        );
    }

    #[test]
    fn single_frame_sequence_is_valid() {
        let mut r = rng();
        let model = AppearanceModel::generate(4, &mut r);
        let seq = signature_sequence(&model, &CorruptionConfig::default(), 1, &mut r);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].occlusion, 0.0);
    }

    #[test]
    fn empty_sequence_is_empty() {
        let mut r = rng();
        let model = AppearanceModel::generate(5, &mut r);
        let seq = signature_sequence(&model, &CorruptionConfig::default(), 0, &mut r);
        assert!(seq.is_empty());
    }
}
