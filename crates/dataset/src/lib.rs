//! # bsom-dataset
//!
//! Synthetic labelled signature datasets standing in for the paper's
//! two-hour indoor surveillance recording.
//!
//! The paper trains and tests the bSOM on binary signatures extracted from
//! nine people tracked near a building entrance: 2,248 manually labelled
//! training instances and 1,139 test instances, with signature variation
//! caused by partial occlusion (office furniture), camera jitter, over- and
//! under-segmentation and lighting changes from wide windows (§III-B, §IV).
//! That recording is unavailable, so this crate generates datasets with the
//! same structure and the same corruption processes (see DESIGN.md
//! §"Synthetic data substitutions"):
//!
//! * [`AppearanceModel`] — a per-identity clothing palette plus sampling
//!   parameters that turn it into per-frame colour histograms with
//!   occlusion, segmentation leakage and lighting drift applied.
//! * [`DatasetConfig`] / [`SurveillanceDataset`] — generation of complete
//!   train/test splits mirroring the paper's instance counts.
//! * [`signature_sequence`] — per-identity signature sequences over time,
//!   used to reproduce the signature-evolution plots of Fig. 3.
//! * [`from_scene`] — the slower, fully end-to-end route: run the synthetic
//!   scene and the vision pipeline and label observations from ground truth,
//!   mirroring the operator labelling of §III-B.
//!
//! ## Quick example
//!
//! ```rust
//! use bsom_dataset::{DatasetConfig, SurveillanceDataset};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let config = DatasetConfig::small();
//! let dataset = SurveillanceDataset::generate(&config, &mut rng);
//! assert_eq!(dataset.train.len(), config.train_instances);
//! assert_eq!(dataset.test.len(), config.test_instances);
//! assert_eq!(dataset.identity_count(), config.identities);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod appearance;
pub mod generator;
pub mod scene_dataset;
pub mod sequence;

pub use appearance::{AppearanceModel, CorruptionConfig};
pub use generator::{DatasetConfig, SurveillanceDataset};
pub use scene_dataset::from_scene;
pub use sequence::{signature_sequence, SignatureFrame};

/// A labelled signature: the sample type of every dataset in this crate.
pub type LabelledSignature = (bsom_signature::BinaryVector, bsom_som::ObjectLabel);
