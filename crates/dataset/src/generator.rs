//! Whole-dataset generation mirroring the paper's data volumes.
//!
//! §III-B / §IV: nine people, 2,248 labelled training signatures, 1,139
//! labelled test signatures, all drawn from the same footage (so the same
//! corruption processes) but disjoint in time. [`SurveillanceDataset::generate`]
//! reproduces that structure; instance counts per identity are drawn from a
//! mildly unbalanced distribution because some people simply walk past the
//! camera more often than others.

use bsom_signature::BinaryVector;
use bsom_som::ObjectLabel;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::appearance::{AppearanceModel, CorruptionConfig};
use crate::LabelledSignature;

/// Configuration of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of distinct identities (the paper uses nine).
    pub identities: usize,
    /// Number of labelled training instances (paper: 2,248).
    pub train_instances: usize,
    /// Number of labelled test instances (paper: 1,139).
    pub test_instances: usize,
    /// Corruption processes applied to every sampled frame.
    pub corruption: CorruptionConfig,
    /// Degree of class imbalance: 0.0 gives equal instance counts, 1.0 makes
    /// the most frequent identity roughly three times as common as the least
    /// frequent.
    pub imbalance: f64,
}

impl DatasetConfig {
    /// The paper's dataset shape: nine identities, 2,248 / 1,139 instances.
    pub fn paper_default() -> Self {
        DatasetConfig {
            identities: 9,
            train_instances: 2248,
            test_instances: 1139,
            corruption: CorruptionConfig::default(),
            imbalance: 0.5,
        }
    }

    /// A small dataset for fast tests (nine identities, 180 / 90 instances).
    pub fn small() -> Self {
        DatasetConfig {
            identities: 9,
            train_instances: 180,
            test_instances: 90,
            corruption: CorruptionConfig::default(),
            imbalance: 0.3,
        }
    }

    /// Overrides the number of identities.
    pub fn with_identities(mut self, identities: usize) -> Self {
        self.identities = identities;
        self
    }

    /// Overrides the corruption configuration.
    pub fn with_corruption(mut self, corruption: CorruptionConfig) -> Self {
        self.corruption = corruption;
        self
    }
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A complete generated dataset: train and test splits plus the appearance
/// models they were drawn from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurveillanceDataset {
    /// The configuration the dataset was generated from.
    pub config: DatasetConfig,
    /// The appearance model of every identity.
    pub models: Vec<AppearanceModel>,
    /// Labelled training signatures (paper: 2,248).
    pub train: Vec<LabelledSignature>,
    /// Labelled test signatures (paper: 1,139).
    pub test: Vec<LabelledSignature>,
}

impl SurveillanceDataset {
    /// Generates a dataset.
    ///
    /// Identity appearance models are generated first, then each split is
    /// filled by sampling identities according to a fixed (per-dataset)
    /// unbalanced prior and sampling one corrupted frame per instance. Train
    /// and test share the prior and the models — as in the paper, where both
    /// splits come from the same nine people in the same scene — but every
    /// frame is sampled independently.
    pub fn generate<R: Rng + ?Sized>(config: &DatasetConfig, rng: &mut R) -> Self {
        let identities = config.identities.max(1);
        let models: Vec<AppearanceModel> = (0..identities)
            .map(|i| AppearanceModel::generate(i, rng))
            .collect();

        // Unbalanced identity prior: weight_i = 1 + imbalance * u_i, u ~ U(0, 2).
        let weights: Vec<f64> = (0..identities)
            .map(|_| 1.0 + config.imbalance.clamp(0.0, 1.0) * rng.gen_range(0.0..2.0))
            .collect();
        let total_weight: f64 = weights.iter().sum();

        let sample_split = |count: usize, rng: &mut R| -> Vec<LabelledSignature> {
            let mut split = Vec::with_capacity(count);
            for _ in 0..count {
                // Draw an identity from the weighted prior.
                let mut roll = rng.gen_range(0.0..total_weight);
                let mut identity = identities - 1;
                for (i, w) in weights.iter().enumerate() {
                    if roll < *w {
                        identity = i;
                        break;
                    }
                    roll -= w;
                }
                let signature = models[identity].sample_signature(&config.corruption, rng);
                split.push((signature, ObjectLabel::new(identity)));
            }
            split
        };

        let train = sample_split(config.train_instances, rng);
        let test = sample_split(config.test_instances, rng);

        SurveillanceDataset {
            config: *config,
            models,
            train,
            test,
        }
    }

    /// Number of identities in the dataset.
    pub fn identity_count(&self) -> usize {
        self.models.len()
    }

    /// Number of training instances carrying each label, indexed by identity.
    pub fn train_label_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.identity_count()];
        for (_, label) in &self.train {
            if label.id() < counts.len() {
                counts[label.id()] += 1;
            }
        }
        counts
    }

    /// All training signatures without their labels (the unsupervised view
    /// used while training the SOM itself).
    pub fn train_signatures(&self) -> Vec<BinaryVector> {
        self.train.iter().map(|(s, _)| s.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5E7)
    }

    #[test]
    fn paper_default_matches_reported_volumes() {
        let c = DatasetConfig::paper_default();
        assert_eq!(c.identities, 9);
        assert_eq!(c.train_instances, 2248);
        assert_eq!(c.test_instances, 1139);
        assert_eq!(DatasetConfig::default(), c);
    }

    #[test]
    fn generated_dataset_has_requested_shape() {
        let mut r = rng();
        let config = DatasetConfig::small();
        let ds = SurveillanceDataset::generate(&config, &mut r);
        assert_eq!(ds.train.len(), 180);
        assert_eq!(ds.test.len(), 90);
        assert_eq!(ds.identity_count(), 9);
        assert_eq!(ds.train_signatures().len(), 180);
        for (sig, label) in ds.train.iter().chain(ds.test.iter()) {
            assert_eq!(sig.len(), 768);
            assert!(label.id() < 9);
        }
    }

    #[test]
    fn every_identity_appears_in_a_reasonably_sized_training_split() {
        let mut r = rng();
        let config = DatasetConfig::small();
        let ds = SurveillanceDataset::generate(&config, &mut r);
        let counts = ds.train_label_counts();
        assert_eq!(counts.len(), 9);
        assert!(
            counts.iter().all(|&c| c > 0),
            "every identity should appear at least once: {counts:?}"
        );
    }

    #[test]
    fn imbalance_zero_gives_roughly_uniform_counts() {
        let mut r = rng();
        let config = DatasetConfig {
            imbalance: 0.0,
            train_instances: 900,
            ..DatasetConfig::small()
        };
        let ds = SurveillanceDataset::generate(&config, &mut r);
        let counts = ds.train_label_counts();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        // With 900 uniform draws over 9 classes (expected 100 each), the
        // spread stays well under 2x.
        assert!(
            max < 2 * min,
            "counts too spread for uniform prior: {counts:?}"
        );
    }

    #[test]
    fn different_seeds_give_different_datasets() {
        let config = DatasetConfig::small();
        let a = SurveillanceDataset::generate(&config, &mut StdRng::seed_from_u64(1));
        let b = SurveillanceDataset::generate(&config, &mut StdRng::seed_from_u64(2));
        assert_ne!(a.train[0].0, b.train[0].0);
    }

    #[test]
    fn same_seed_reproduces_the_same_dataset() {
        let config = DatasetConfig::small();
        let a = SurveillanceDataset::generate(&config, &mut StdRng::seed_from_u64(7));
        let b = SurveillanceDataset::generate(&config, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn with_identities_changes_model_count() {
        let mut r = rng();
        let config = DatasetConfig::small().with_identities(4);
        let ds = SurveillanceDataset::generate(&config, &mut r);
        assert_eq!(ds.identity_count(), 4);
        assert!(ds.train.iter().all(|(_, l)| l.id() < 4));
    }

    #[test]
    fn zero_identities_is_clamped_to_one() {
        let mut r = rng();
        let config = DatasetConfig::small().with_identities(0);
        let ds = SurveillanceDataset::generate(&config, &mut r);
        assert_eq!(ds.identity_count(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = rng();
        let config = DatasetConfig {
            train_instances: 10,
            test_instances: 5,
            ..DatasetConfig::small()
        };
        let ds = SurveillanceDataset::generate(&config, &mut r);
        let json = serde_json::to_string(&ds).unwrap();
        let back: SurveillanceDataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds.train, back.train);
        assert_eq!(ds.test, back.test);
    }
}
