//! Per-identity appearance models and the corruption processes that make
//! their signatures vary from frame to frame.
//!
//! Each identity is a clothing palette (reusing the scene renderer's
//! [`PersonModel`]) plus body-region proportions. Sampling a "frame" draws a
//! silhouette's worth of pixels from that palette and then applies the same
//! corruptions the paper attributes to its real footage: partial occlusion by
//! furniture, over-/under-segmentation (background pixels leaking into the
//! silhouette and silhouette size changes), lighting drift and per-pixel
//! colour noise. The result is a [`ColorHistogram`], binarised exactly as in
//! §III-A.

use bsom_signature::{BinaryVector, ColorHistogram, Rgb};
use bsom_vision::scene::{hsv_to_rgb, PersonModel};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The corruption processes applied when sampling a frame of an identity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionConfig {
    /// Minimum silhouette size in pixels (the paper filters objects below
    /// 768 pixels, so real silhouettes start around there).
    pub min_pixels: usize,
    /// Maximum silhouette size in pixels.
    pub max_pixels: usize,
    /// Maximum fraction of silhouette pixels replaced by occluder (furniture)
    /// colours; the actual fraction per frame is uniform in `[0, max]`.
    pub max_occlusion: f64,
    /// Maximum fraction of silhouette pixels leaked in from the background
    /// (over-segmentation); uniform in `[0, max]` per frame.
    pub max_background_leak: f64,
    /// Maximum absolute brightness offset applied to the whole frame
    /// (lighting variation from the windows).
    pub max_lighting_offset: i16,
    /// Per-pixel colour noise amplitude.
    pub colour_noise: u8,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        // Calibrated (see EXPERIMENTS.md) so that a 40-neuron map lands in
        // the mid-80 % accuracy band of Table I and >50-neuron maps clear
        // 90 %, matching the paper's reported operating points.
        CorruptionConfig {
            min_pixels: 768,
            max_pixels: 2600,
            max_occlusion: 0.40,
            max_background_leak: 0.25,
            max_lighting_offset: 8,
            colour_noise: 12,
        }
    }
}

impl CorruptionConfig {
    /// A gentler corruption profile for quick tests: small silhouettes, less
    /// occlusion.
    pub fn mild() -> Self {
        CorruptionConfig {
            min_pixels: 400,
            max_pixels: 900,
            max_occlusion: 0.15,
            max_background_leak: 0.10,
            max_lighting_offset: 8,
            colour_noise: 10,
        }
    }
}

/// A per-identity appearance model: palette + body proportions + the shared
/// scene palette used for occlusion and background leakage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppearanceModel {
    /// The clothing palette of the identity.
    pub person: PersonModel,
    /// Fraction of silhouette pixels belonging to the head region.
    pub head_fraction: f64,
    /// Fraction of silhouette pixels belonging to the torso region.
    pub torso_fraction: f64,
}

impl AppearanceModel {
    /// Generates the appearance model for identity `label`.
    ///
    /// Identities get well-spread torso hues (people dress differently) but
    /// share skin tones, furniture colours and background colours — which is
    /// precisely what limits recognition accuracy in the paper.
    pub fn generate<R: Rng + ?Sized>(label: usize, rng: &mut R) -> Self {
        let person = PersonModel::generate(label, rng);
        AppearanceModel {
            person,
            head_fraction: rng.gen_range(0.10..0.18),
            torso_fraction: rng.gen_range(0.38..0.50),
        }
    }

    /// Generates a *confusable* variant of this identity: same legs and head,
    /// torso hue shifted only slightly. Used by robustness experiments to
    /// study how the bSOM degrades when two people dress alike.
    pub fn confusable_variant<R: Rng + ?Sized>(&self, new_label: usize, rng: &mut R) -> Self {
        let shift = rng.gen_range(-18.0..18.0);
        let torso = shift_hue(self.person.torso, shift);
        AppearanceModel {
            person: PersonModel {
                label: new_label,
                head: self.person.head,
                torso,
                legs: self.person.legs,
            },
            head_fraction: self.head_fraction,
            torso_fraction: self.torso_fraction,
        }
    }

    /// The identity this model belongs to.
    pub fn label(&self) -> usize {
        self.person.label
    }

    /// Samples the colour histogram of one frame of this identity under the
    /// given corruption configuration.
    pub fn sample_histogram<R: Rng + ?Sized>(
        &self,
        corruption: &CorruptionConfig,
        rng: &mut R,
    ) -> ColorHistogram {
        let pixels =
            rng.gen_range(corruption.min_pixels..=corruption.max_pixels.max(corruption.min_pixels));
        let occlusion = rng.gen_range(0.0..=corruption.max_occlusion.max(0.0));
        let leak = rng.gen_range(0.0..=corruption.max_background_leak.max(0.0));
        let lighting =
            rng.gen_range(-corruption.max_lighting_offset..=corruption.max_lighting_offset);
        let noise = corruption.colour_noise;

        let mut hist = ColorHistogram::new();
        for _ in 0..pixels {
            let roll: f64 = rng.gen();
            let base = if roll < occlusion {
                // Occluded by furniture: one of the shared furniture colours.
                *pick(rng, &FURNITURE_PALETTE)
            } else if roll < occlusion + leak {
                // Over-segmentation: background wall / floor pixels.
                *pick(rng, &BACKGROUND_PALETTE)
            } else {
                // The person themself.
                let region: f64 = rng.gen();
                if region < self.head_fraction {
                    self.person.head
                } else if region < self.head_fraction + self.torso_fraction {
                    self.person.torso
                } else {
                    self.person.legs
                }
            };
            hist.add_pixel(corrupt_pixel(base, lighting, noise, rng));
        }
        hist
    }

    /// Samples one frame and converts it straight to a 768-bit signature
    /// (histogram → mean threshold → bits), the form the bSOM consumes.
    pub fn sample_signature<R: Rng + ?Sized>(
        &self,
        corruption: &CorruptionConfig,
        rng: &mut R,
    ) -> BinaryVector {
        self.sample_histogram(corruption, rng).to_signature()
    }
}

/// The shared furniture palette used for occlusion pixels (matches the scene
/// renderer's desks and cabinets).
const FURNITURE_PALETTE: [Rgb; 3] = [
    Rgb {
        r: 90,
        g: 60,
        b: 35,
    },
    Rgb {
        r: 70,
        g: 70,
        b: 80,
    },
    Rgb {
        r: 110,
        g: 80,
        b: 50,
    },
];

/// The shared background palette used for over-segmentation leakage (wall and
/// floor colours of the scene renderer).
const BACKGROUND_PALETTE: [Rgb; 3] = [
    Rgb {
        r: 170,
        g: 170,
        b: 175,
    },
    Rgb {
        r: 190,
        g: 190,
        b: 195,
    },
    Rgb {
        r: 120,
        g: 100,
        b: 80,
    },
];

fn pick<'a, R: Rng + ?Sized, T>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

fn corrupt_pixel<R: Rng + ?Sized>(base: Rgb, lighting: i16, noise: u8, rng: &mut R) -> Rgb {
    let mut jitter = |c: u8| -> u8 {
        let delta = rng.gen_range(-(i16::from(noise))..=i16::from(noise));
        (i16::from(c) + delta + lighting).clamp(0, 255) as u8
    };
    Rgb::new(jitter(base.r), jitter(base.g), jitter(base.b))
}

/// Rotates the hue of a colour by `degrees`, preserving rough brightness.
fn shift_hue(colour: Rgb, degrees: f64) -> Rgb {
    // Convert to HSV-ish by finding max/min channels; approximate but
    // sufficient to create "similar but not identical" clothing colours.
    let r = f64::from(colour.r) / 255.0;
    let g = f64::from(colour.g) / 255.0;
    let b = f64::from(colour.b) / 255.0;
    let max = r.max(g).max(b);
    let min = r.min(g).min(b);
    let delta = max - min;
    let mut h = if delta == 0.0 {
        0.0
    } else if max == r {
        60.0 * (((g - b) / delta) % 6.0)
    } else if max == g {
        60.0 * ((b - r) / delta + 2.0)
    } else {
        60.0 * ((r - g) / delta + 4.0)
    };
    if h < 0.0 {
        h += 360.0;
    }
    let s = if max == 0.0 { 0.0 } else { delta / max };
    hsv_to_rgb(h + degrees, s, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDA7A)
    }

    #[test]
    fn default_corruption_respects_paper_noise_floor() {
        let c = CorruptionConfig::default();
        assert_eq!(c.min_pixels, 768);
        assert!(c.max_pixels > c.min_pixels);
        assert!(c.max_occlusion < 1.0);
    }

    #[test]
    fn generated_models_carry_their_label() {
        let mut r = rng();
        for label in 0..9 {
            let m = AppearanceModel::generate(label, &mut r);
            assert_eq!(m.label(), label);
            assert!(m.head_fraction > 0.0 && m.head_fraction < 0.3);
            assert!(m.torso_fraction > 0.3 && m.torso_fraction < 0.6);
        }
    }

    #[test]
    fn sampled_histogram_has_expected_pixel_count_range() {
        let mut r = rng();
        let m = AppearanceModel::generate(0, &mut r);
        let c = CorruptionConfig::default();
        for _ in 0..20 {
            let h = m.sample_histogram(&c, &mut r);
            let n = h.pixel_count() as usize;
            assert!(n >= c.min_pixels && n <= c.max_pixels, "pixel count {n}");
        }
    }

    #[test]
    fn sampled_signature_is_768_bits_and_sparse() {
        let mut r = rng();
        let m = AppearanceModel::generate(3, &mut r);
        let sig = m.sample_signature(&CorruptionConfig::default(), &mut r);
        assert_eq!(sig.len(), 768);
        // A colour histogram of clothing concentrates mass in a few dozen
        // bins; the signature should be far from all-ones and not empty.
        let ones = sig.count_ones();
        assert!(ones > 3, "ones = {ones}");
        assert!(ones < 500, "ones = {ones}");
    }

    #[test]
    fn same_identity_signatures_are_more_similar_than_cross_identity() {
        let mut r = rng();
        let c = CorruptionConfig::default();
        let a = AppearanceModel::generate(0, &mut r);
        let b = AppearanceModel::generate(4, &mut r);
        let mut within = 0usize;
        let mut between = 0usize;
        let samples = 30;
        for _ in 0..samples {
            let a1 = a.sample_signature(&c, &mut r);
            let a2 = a.sample_signature(&c, &mut r);
            let b1 = b.sample_signature(&c, &mut r);
            within += a1.hamming(&a2).unwrap();
            between += a1.hamming(&b1).unwrap();
        }
        assert!(
            within < between,
            "mean within-class distance {} should be below cross-class {}",
            within / samples,
            between / samples
        );
    }

    #[test]
    fn signatures_of_one_identity_still_vary() {
        let mut r = rng();
        let m = AppearanceModel::generate(2, &mut r);
        let c = CorruptionConfig::default();
        let s1 = m.sample_signature(&c, &mut r);
        let s2 = m.sample_signature(&c, &mut r);
        assert!(
            s1.hamming(&s2).unwrap() > 0,
            "corruption must cause variation"
        );
    }

    #[test]
    fn confusable_variant_is_closer_than_an_independent_identity() {
        let mut r = rng();
        let c = CorruptionConfig::mild();
        let a = AppearanceModel::generate(0, &mut r);
        let twin = a.confusable_variant(1, &mut r);
        let other = AppearanceModel::generate(5, &mut r);
        assert_eq!(twin.label(), 1);
        let mut to_twin = 0usize;
        let mut to_other = 0usize;
        for _ in 0..30 {
            let s = a.sample_signature(&c, &mut r);
            to_twin += s.hamming(&twin.sample_signature(&c, &mut r)).unwrap();
            to_other += s.hamming(&other.sample_signature(&c, &mut r)).unwrap();
        }
        assert!(to_twin < to_other);
    }

    #[test]
    fn lighting_offset_changes_histograms_but_not_catastrophically() {
        let mut r = rng();
        let m = AppearanceModel::generate(1, &mut r);
        let calm = CorruptionConfig {
            max_lighting_offset: 0,
            max_occlusion: 0.0,
            max_background_leak: 0.0,
            ..CorruptionConfig::default()
        };
        let lit = CorruptionConfig {
            max_lighting_offset: 40,
            max_occlusion: 0.0,
            max_background_leak: 0.0,
            ..CorruptionConfig::default()
        };
        // Lighting shifts histogram bins, so the same person under different
        // lighting does drift — but far less than a different person looks.
        let other = AppearanceModel::generate(6, &mut r);
        let mut same_person = 0usize;
        let mut cross_person = 0usize;
        for _ in 0..20 {
            let s_calm = m.sample_signature(&calm, &mut r);
            let s_lit = m.sample_signature(&lit, &mut r);
            let s_other = other.sample_signature(&calm, &mut r);
            same_person += s_calm.hamming(&s_lit).unwrap();
            cross_person += s_calm.hamming(&s_other).unwrap();
        }
        assert!(
            same_person < cross_person,
            "lighting drift ({same_person}) should cost less than identity change ({cross_person})"
        );
    }

    #[test]
    fn hue_shift_preserves_rough_brightness() {
        let c = Rgb::new(200, 40, 40);
        let shifted = shift_hue(c, 30.0);
        let brightness = |c: Rgb| i32::from(c.r) + i32::from(c.g) + i32::from(c.b);
        assert!((brightness(c) - brightness(shifted)).abs() < 200);
        assert_ne!(c, shifted);
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = rng();
        let m = AppearanceModel::generate(7, &mut r);
        let json = serde_json::to_string(&m).unwrap();
        let back: AppearanceModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m.label(), back.label());
        assert_eq!(m.person.torso, back.person.torso);
    }
}
