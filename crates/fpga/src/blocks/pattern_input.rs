//! Pattern-input block (§V-B).
//!
//! The binary input vector arrives from the external camera (or USB link) as
//! a 32 × 24 binary image, one bit per cycle; the block is complete when all
//! 768 bits have been shifted into the input register.

use bsom_signature::BinaryVector;

use crate::clock::CycleCount;

/// The pattern-input block: a serial-in shift register of the configured
/// width.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PatternInputBlock {
    register: Vec<bool>,
    expected_len: usize,
}

impl PatternInputBlock {
    /// Creates a block expecting input vectors of `expected_len` bits.
    pub fn new(expected_len: usize) -> Self {
        PatternInputBlock {
            register: Vec::with_capacity(expected_len),
            expected_len,
        }
    }

    /// The configured input width.
    pub fn expected_len(&self) -> usize {
        self.expected_len
    }

    /// Number of bits currently latched.
    pub fn bits_received(&self) -> usize {
        self.register.len()
    }

    /// Whether a complete pattern has been received.
    pub fn is_complete(&self) -> bool {
        self.register.len() == self.expected_len
    }

    /// Shifts one bit in (one cycle). Extra bits beyond the expected length
    /// are ignored, as the hardware stops sampling once the counter reaches
    /// the programmed size.
    pub fn shift_in(&mut self, bit: bool) {
        if self.register.len() < self.expected_len {
            self.register.push(bit);
        }
    }

    /// Loads an entire pattern bit-serially and returns the latched vector
    /// plus the cycle count (one cycle per expected bit — short inputs still
    /// hold the bus for the full transfer window, mirroring the fixed-size
    /// camera frame).
    pub fn load(&mut self, input: &BinaryVector) -> (BinaryVector, CycleCount) {
        self.register.clear();
        for bit in input.iter().take(self.expected_len) {
            self.shift_in(bit);
        }
        // Missing bits (input shorter than the register) read as zero.
        while self.register.len() < self.expected_len {
            self.register.push(false);
        }
        let latched = BinaryVector::from_bits(self.register.iter().copied());
        (latched, self.expected_len as CycleCount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_takes_one_cycle_per_bit() {
        let mut block = PatternInputBlock::new(768);
        let input = BinaryVector::from_bits((0..768).map(|i| i % 3 == 0));
        let (latched, cycles) = block.load(&input);
        assert_eq!(cycles, 768, "§V-B: 768 bits, one per cycle");
        assert_eq!(latched, input);
        assert!(block.is_complete());
    }

    #[test]
    fn short_input_is_zero_padded() {
        let mut block = PatternInputBlock::new(16);
        let input = BinaryVector::from_bit_str("1111").unwrap();
        let (latched, cycles) = block.load(&input);
        assert_eq!(cycles, 16);
        assert_eq!(latched.len(), 16);
        assert_eq!(latched.count_ones(), 4);
        assert!(latched.bit(0) && latched.bit(3) && !latched.bit(4));
    }

    #[test]
    fn long_input_is_truncated() {
        let mut block = PatternInputBlock::new(4);
        let input = BinaryVector::from_bit_str("10101010").unwrap();
        let (latched, _) = block.load(&input);
        assert_eq!(latched.to_bit_string(), "1010");
    }

    #[test]
    fn shift_in_fills_incrementally() {
        let mut block = PatternInputBlock::new(3);
        assert_eq!(block.bits_received(), 0);
        assert!(!block.is_complete());
        block.shift_in(true);
        block.shift_in(false);
        assert_eq!(block.bits_received(), 2);
        block.shift_in(true);
        assert!(block.is_complete());
        // Further bits are ignored.
        block.shift_in(true);
        assert_eq!(block.bits_received(), 3);
        assert_eq!(block.expected_len(), 3);
    }

    #[test]
    fn reload_clears_previous_pattern() {
        let mut block = PatternInputBlock::new(4);
        let (_, _) = block.load(&BinaryVector::from_bit_str("1111").unwrap());
        let (latched, _) = block.load(&BinaryVector::from_bit_str("0000").unwrap());
        assert_eq!(latched.count_ones(), 0);
    }
}
