//! The Hamming-distance computation unit of the WTA block (§V-C, Eq. 3).
//!
//! One unit per neuron walks the input vector and the neuron's tri-state
//! weight vector one bit per cycle, incrementing a counter when the weight is
//! concrete and disagrees with the input; `#` positions never contribute.
//! All units run in parallel, so the whole bank finishes in exactly
//! `vector_len` cycles regardless of the neuron count.

use bsom_signature::{BinaryVector, TriStateVector, Trit};

use crate::clock::CycleCount;

/// A single bit-serial Hamming-distance unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HammingUnit {
    accumulator: u32,
    position: usize,
}

impl HammingUnit {
    /// Creates a unit with a cleared accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the accumulator for a new pattern.
    pub fn reset(&mut self) {
        self.accumulator = 0;
        self.position = 0;
    }

    /// Processes one bit position (one cycle).
    pub fn step(&mut self, weight: Trit, input_bit: bool) {
        if !weight.matches(input_bit) {
            self.accumulator += 1;
        }
        self.position += 1;
    }

    /// The distance accumulated so far.
    pub fn distance(&self) -> u32 {
        self.accumulator
    }

    /// Number of bit positions processed since the last reset.
    pub fn bits_processed(&self) -> usize {
        self.position
    }

    /// Runs the whole vector through the unit and returns the distance plus
    /// the cycle count (one cycle per bit).
    ///
    /// The shorter of the two vectors bounds the scan, mirroring a hardware
    /// counter programmed with the vector length.
    pub fn run(&mut self, weight: &TriStateVector, input: &BinaryVector) -> (u32, CycleCount) {
        self.reset();
        let len = weight.len().min(input.len());
        for k in 0..len {
            self.step(weight.trit(k), input.bit(k));
        }
        (self.accumulator, len as CycleCount)
    }
}

/// A bank of Hamming units, one per neuron, stepping in lock-step.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HammingBank {
    units: Vec<HammingUnit>,
}

impl HammingBank {
    /// Creates a bank of `neurons` units.
    pub fn new(neurons: usize) -> Self {
        HammingBank {
            units: vec![HammingUnit::new(); neurons],
        }
    }

    /// Number of parallel units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Computes the distance from `input` to every weight vector in parallel.
    ///
    /// Returns the per-neuron distances and the cycle count, which equals the
    /// vector length (not `neurons × length`) because the units run
    /// concurrently — the architectural point of §V-C.
    pub fn run(
        &mut self,
        weights: &[TriStateVector],
        input: &BinaryVector,
    ) -> (Vec<u32>, CycleCount) {
        let mut distances = Vec::with_capacity(weights.len());
        let mut cycles = 0;
        for (unit, weight) in self.units.iter_mut().zip(weights) {
            let (d, c) = unit.run(weight, input);
            distances.push(d);
            cycles = cycles.max(c);
        }
        (distances, cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_counts_mismatches_only_where_concrete() {
        let mut unit = HammingUnit::new();
        let weight = TriStateVector::from_str("01#10").unwrap();
        let input = BinaryVector::from_bit_str("11010").unwrap();
        let (d, cycles) = unit.run(&weight, &input);
        // position 0: 0 vs 1 mismatch; position 1: 1 vs 1 ok; position 2: #;
        // position 3: 1 vs 1 ok; position 4: 0 vs 0 ok.
        assert_eq!(d, 1);
        assert_eq!(cycles, 5);
        assert_eq!(unit.bits_processed(), 5);
    }

    #[test]
    fn unit_matches_software_hamming_for_full_width_vectors() {
        let weight = TriStateVector::from_str(&"01#".repeat(256)).unwrap();
        let input = BinaryVector::from_bits((0..768).map(|i| i % 2 == 0));
        let mut unit = HammingUnit::new();
        let (d, cycles) = unit.run(&weight, &input);
        assert_eq!(cycles, 768, "§V-C: 768 cycles for a 768-bit vector");
        assert_eq!(d as usize, weight.hamming(&input).unwrap());
    }

    #[test]
    fn all_dont_care_weight_scores_zero() {
        let weight = TriStateVector::all_dont_care(768);
        let input = BinaryVector::ones(768);
        let mut unit = HammingUnit::new();
        let (d, _) = unit.run(&weight, &input);
        assert_eq!(d, 0, "the paper calls this case out explicitly");
    }

    #[test]
    fn reset_clears_state_between_patterns() {
        let mut unit = HammingUnit::new();
        let weight = TriStateVector::from_str("1111").unwrap();
        let (_, _) = unit.run(&weight, &BinaryVector::from_bit_str("0000").unwrap());
        assert_eq!(unit.distance(), 4);
        let (d, _) = unit.run(&weight, &BinaryVector::from_bit_str("1111").unwrap());
        assert_eq!(d, 0);
    }

    #[test]
    fn bank_runs_all_units_in_parallel_cycle_count() {
        let weights: Vec<TriStateVector> = (0..40)
            .map(|i| {
                TriStateVector::from_binary(&BinaryVector::from_bits(
                    (0..768).map(|k| (k + i) % 5 == 0),
                ))
            })
            .collect();
        let input = BinaryVector::from_bits((0..768).map(|k| k % 5 == 0));
        let mut bank = HammingBank::new(40);
        let (distances, cycles) = bank.run(&weights, &input);
        assert_eq!(bank.unit_count(), 40);
        assert_eq!(distances.len(), 40);
        assert_eq!(cycles, 768, "parallel units: 768 cycles total, not 40x768");
        assert_eq!(distances[0], 0);
        for (i, d) in distances.iter().enumerate() {
            let expected = weights[i].hamming(&input).unwrap() as u32;
            assert_eq!(*d, expected, "neuron {i}");
        }
    }

    #[test]
    fn bank_with_mismatched_weight_count_only_scores_available_units() {
        let weights = vec![TriStateVector::all_dont_care(8); 2];
        let mut bank = HammingBank::new(4);
        let (distances, _) = bank.run(&weights, &BinaryVector::zeros(8));
        assert_eq!(distances.len(), 2);
    }
}
