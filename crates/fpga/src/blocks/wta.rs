//! Winner-take-all comparator tree (§V-C, Fig. 5).
//!
//! The winning-neuron unit reduces the 40 ten-bit Hamming distances with a
//! binary tree of two-input comparators: each stage halves the number of
//! candidates, and the result (minimum distance plus the address of the
//! corresponding neuron) is registered at the output. For 40 inputs the paper
//! reports seven clock cycles — six halving stages for the padded 64-wide
//! tree plus the output register stage — which is exactly what this model
//! counts.
//!
//! The comparator key carried through the tree is `(distance, #-count,
//! address)`: the secondary key implements the specificity tie-break
//! documented in `bsom_som::BSom::winner` (DESIGN.md §"Winner selection and
//! the WTA tie-break key"), and the address makes the reduction
//! deterministic, matching the software map bit for bit.

use crate::clock::CycleCount;

/// One candidate entering the comparator tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WtaCandidate {
    /// Neuron address.
    pub address: usize,
    /// Hamming distance from the Hamming unit.
    pub distance: u32,
    /// Number of `#` trits in the neuron (the specificity tie-break key).
    pub dont_care_count: u32,
}

impl WtaCandidate {
    /// The comparator key: smaller wins.
    fn key(&self) -> (u32, u32, usize) {
        (self.distance, self.dont_care_count, self.address)
    }
}

/// The result registered at the output of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WtaResult {
    /// Address of the winning neuron.
    pub winner: usize,
    /// Its Hamming distance.
    pub distance: u32,
    /// Number of comparator stages the reduction used (including the output
    /// register stage).
    pub cycles: CycleCount,
}

/// The comparator-tree winner-take-all block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WinnerTakeAllBlock;

impl WinnerTakeAllBlock {
    /// Creates the block.
    pub fn new() -> Self {
        WinnerTakeAllBlock
    }

    /// Number of cycles the tree needs for `n` candidates: one per halving
    /// stage of the power-of-two padded tree, plus one output register cycle.
    /// For the paper's 40 neurons this is 7 (Fig. 5).
    pub fn cycles_for(n: usize) -> CycleCount {
        if n <= 1 {
            return 1;
        }
        let mut stages = 0u64;
        let mut width = n.next_power_of_two();
        while width > 1 {
            width /= 2;
            stages += 1;
        }
        stages + 1
    }

    /// Reduces the candidates to the winner, simulating the tree stage by
    /// stage. Returns `None` for an empty candidate list.
    pub fn run(&self, candidates: &[WtaCandidate]) -> Option<WtaResult> {
        if candidates.is_empty() {
            return None;
        }
        let mut level: Vec<WtaCandidate> = candidates.to_vec();
        let mut stages: CycleCount = 0;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                let winner = if pair.len() == 1 || pair[0].key() <= pair[1].key() {
                    pair[0]
                } else {
                    pair[1]
                };
                next.push(winner);
            }
            level = next;
            stages += 1;
        }
        // Pad the stage count to the full power-of-two tree depth: the
        // hardware tree is built for the padded width, so narrower inputs do
        // not finish early. Add one cycle for the output register.
        let cycles = Self::cycles_for(candidates.len()).max(stages + 1);
        let winner = level[0];
        Some(WtaResult {
            winner: winner.address,
            distance: winner.distance,
            cycles,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(address: usize, distance: u32) -> WtaCandidate {
        WtaCandidate {
            address,
            distance,
            dont_care_count: 0,
        }
    }

    #[test]
    fn forty_candidates_take_seven_cycles() {
        // Fig. 5: seven cycles for the 40-way reduction.
        assert_eq!(WinnerTakeAllBlock::cycles_for(40), 7);
        let candidates: Vec<WtaCandidate> =
            (0..40).map(|i| candidate(i, (40 - i) as u32)).collect();
        let result = WinnerTakeAllBlock::new().run(&candidates).unwrap();
        assert_eq!(result.cycles, 7);
        assert_eq!(result.winner, 39);
        assert_eq!(result.distance, 1);
    }

    #[test]
    fn cycle_counts_for_other_widths() {
        assert_eq!(WinnerTakeAllBlock::cycles_for(1), 1);
        assert_eq!(WinnerTakeAllBlock::cycles_for(2), 2);
        assert_eq!(WinnerTakeAllBlock::cycles_for(10), 5); // 16-wide tree + register
        assert_eq!(WinnerTakeAllBlock::cycles_for(64), 7);
        assert_eq!(WinnerTakeAllBlock::cycles_for(100), 8);
    }

    #[test]
    fn winner_is_global_minimum() {
        let candidates = vec![
            candidate(0, 17),
            candidate(1, 3),
            candidate(2, 9),
            candidate(3, 3),
            candidate(4, 25),
        ];
        let result = WinnerTakeAllBlock::new().run(&candidates).unwrap();
        // Tie between addresses 1 and 3 broken towards the lower address.
        assert_eq!(result.winner, 1);
        assert_eq!(result.distance, 3);
    }

    #[test]
    fn specificity_breaks_distance_ties() {
        let candidates = vec![
            WtaCandidate {
                address: 0,
                distance: 5,
                dont_care_count: 700,
            },
            WtaCandidate {
                address: 1,
                distance: 5,
                dont_care_count: 3,
            },
        ];
        let result = WinnerTakeAllBlock::new().run(&candidates).unwrap();
        assert_eq!(result.winner, 1, "the more specific neuron wins the tie");
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(WinnerTakeAllBlock::new().run(&[]).is_none());
    }

    #[test]
    fn single_candidate_wins_in_one_cycle() {
        let result = WinnerTakeAllBlock::new().run(&[candidate(7, 42)]).unwrap();
        assert_eq!(result.winner, 7);
        assert_eq!(result.cycles, 1);
    }

    #[test]
    fn matches_linear_scan_on_many_random_like_inputs() {
        for offset in 0..25usize {
            let candidates: Vec<WtaCandidate> = (0..40)
                .map(|i| candidate(i, ((i * 37 + offset * 11) % 97) as u32))
                .collect();
            let tree = WinnerTakeAllBlock::new().run(&candidates).unwrap();
            let linear = candidates
                .iter()
                .min_by_key(|c| (c.distance, c.dont_care_count, c.address))
                .unwrap();
            assert_eq!(tree.winner, linear.address);
            assert_eq!(tree.distance, linear.distance);
        }
    }
}
