//! Weight-initialisation block (§V-A).
//!
//! At start-up every neuron is loaded with a random binary weight vector.
//! All neurons are initialised in parallel, bit by bit, so the block takes
//! exactly as many cycles as there are bits in the weight vector — 768 for
//! the paper's configuration.

use bsom_signature::{TriStateVector, Trit};

use crate::clock::CycleCount;

/// The weight-initialisation block: a per-neuron LFSR feeding one bit per
/// cycle into the weight memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightInitBlock {
    /// 64-bit xorshift state per neuron (the hardware uses one LFSR per
    /// neuron so all weight memories are written in parallel).
    states: Vec<u64>,
}

impl WeightInitBlock {
    /// Creates the block with one pseudo-random generator per neuron, all
    /// derived from `seed`.
    pub fn new(neurons: usize, seed: u64) -> Self {
        let states = (0..neurons)
            .map(|i| {
                // SplitMix64 expansion of the seed so neurons differ.
                let mut z = seed.wrapping_add((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) | 1
            })
            .collect();
        WeightInitBlock { states }
    }

    /// Number of neurons the block initialises in parallel.
    pub fn neuron_count(&self) -> usize {
        self.states.len()
    }

    /// Runs the block: produces one random *concrete* weight vector per
    /// neuron, bit-serially, and reports the cycle count (one cycle per bit,
    /// independent of the neuron count because neurons are written in
    /// parallel).
    pub fn run(&mut self, vector_len: usize) -> (Vec<TriStateVector>, CycleCount) {
        let mut weights = vec![TriStateVector::all_dont_care(vector_len); self.states.len()];
        for bit in 0..vector_len {
            for (n, state) in self.states.iter_mut().enumerate() {
                // xorshift64 step produces this neuron's bit for this cycle.
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                weights[n].set(bit, Trit::from_bit(x & 1 == 1));
            }
        }
        (weights, vector_len as CycleCount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initialisation_takes_one_cycle_per_bit() {
        let mut block = WeightInitBlock::new(40, 1);
        let (weights, cycles) = block.run(768);
        assert_eq!(cycles, 768, "§V-A: exactly 768 cycles");
        assert_eq!(weights.len(), 40);
        assert_eq!(block.neuron_count(), 40);
    }

    #[test]
    fn weights_are_fully_concrete_after_initialisation() {
        let mut block = WeightInitBlock::new(8, 3);
        let (weights, _) = block.run(64);
        for w in &weights {
            assert_eq!(w.len(), 64);
            assert_eq!(w.count_dont_care(), 0);
        }
    }

    #[test]
    fn different_neurons_receive_different_weights() {
        let mut block = WeightInitBlock::new(4, 99);
        let (weights, _) = block.run(256);
        for i in 0..weights.len() {
            for j in (i + 1)..weights.len() {
                assert_ne!(weights[i], weights[j], "neurons {i} and {j} identical");
            }
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_weights() {
        let (a, _) = WeightInitBlock::new(4, 5).run(128);
        let (b, _) = WeightInitBlock::new(4, 5).run(128);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = WeightInitBlock::new(4, 5).run(128);
        let (b, _) = WeightInitBlock::new(4, 6).run(128);
        assert_ne!(a, b);
    }

    #[test]
    fn bits_are_roughly_balanced() {
        let mut block = WeightInitBlock::new(1, 42);
        let (weights, _) = block.run(768);
        let ones = weights[0].to_binary(false).count_ones();
        assert!(ones > 300 && ones < 470, "ones = {ones}");
    }
}
