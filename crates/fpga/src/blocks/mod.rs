//! The five functional blocks of the FPGA design (Fig. 4).
//!
//! Three of the five blocks run in parallel on the real device (pattern
//! input, WTA and display); the weight-initialisation block runs only at
//! start-up and the neighbourhood-update block only when a winner has been
//! found for a training pattern. Each simulator here reports the cycle count
//! the paper attributes to its block so the top-level [`crate::FpgaBSom`] can
//! account for whole-operation latency.

pub mod display;
pub mod hamming;
pub mod neighbourhood;
pub mod pattern_input;
pub mod weight_init;
pub mod wta;
