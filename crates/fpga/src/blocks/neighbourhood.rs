//! Neighbourhood-update block (§V-D).
//!
//! Once a winner has been identified for a training pattern, the block
//! selects the window of neuron addresses around the winner (maximum radius
//! 4, shrinking as training progresses, Table III) and streams the input
//! vector through the weight memories of the selected neurons, applying the
//! tri-state update one bit per cycle. The neurons in the window are updated
//! in parallel, so the block costs one pass over the vector (768 cycles)
//! regardless of the window size.

use bsom_signature::{BinaryVector, TriStateVector, Trit};

use crate::clock::CycleCount;

/// The neighbourhood-selection and neuron-update block.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighbourhoodUpdateBlock {
    /// Maximum neighbourhood radius (Table III: 4).
    max_radius: usize,
    /// LFSR state driving the stochastic damping of the update rule (the
    /// hardware analogue of `BSomConfig`'s update probabilities).
    lfsr: u64,
    /// Probability that a disagreeing concrete bit relaxes to `#`.
    relax_probability: f64,
    /// Probability that a `#` bit commits to the input value.
    commit_probability: f64,
}

impl NeighbourhoodUpdateBlock {
    /// Creates the block with the paper's maximum radius of 4 and the given
    /// update probabilities (use `1.0, 1.0` for the undamped rule).
    pub fn new(
        max_radius: usize,
        relax_probability: f64,
        commit_probability: f64,
        seed: u64,
    ) -> Self {
        NeighbourhoodUpdateBlock {
            max_radius,
            lfsr: seed | 1,
            relax_probability,
            commit_probability,
        }
    }

    /// The paper's configuration: radius 4, undamped updates.
    pub fn paper_default() -> Self {
        Self::new(4, 1.0, 1.0, 0xACE1)
    }

    /// The maximum neighbourhood radius.
    pub fn max_radius(&self) -> usize {
        self.max_radius
    }

    /// The radius in force at training iteration `iteration` of
    /// `total_iterations`, following §V-D: the iteration budget is divided
    /// into `max_radius` phases and the radius steps down by one per phase.
    pub fn radius_at(&self, iteration: usize, total_iterations: usize) -> usize {
        let max = self.max_radius.max(1);
        if total_iterations == 0 {
            return max;
        }
        let phase_len = total_iterations.div_ceil(max);
        let phase = (iteration / phase_len.max(1)).min(max - 1);
        max - phase
    }

    /// The window of neuron addresses updated around `winner` at the given
    /// radius (clamped to the address range, winner included).
    pub fn window(&self, winner: usize, radius: usize, neurons: usize) -> Vec<usize> {
        let lo = winner.saturating_sub(radius);
        let hi = (winner + radius).min(neurons.saturating_sub(1));
        (lo..=hi).collect()
    }

    fn coin(&mut self, probability: f64) -> bool {
        if probability >= 1.0 {
            return true;
        }
        if probability <= 0.0 {
            return false;
        }
        // 16-bit Fibonacci LFSR stepped per decision, as a hardware design
        // would tap a free-running LFSR.
        let lfsr = &mut self.lfsr;
        let bit = (*lfsr ^ (*lfsr >> 2) ^ (*lfsr >> 3) ^ (*lfsr >> 5)) & 1;
        *lfsr = (*lfsr >> 1) | (bit << 15);
        let sample = (*lfsr & 0xFFFF) as f64 / 65536.0;
        sample < probability
    }

    /// Applies the tri-state update to every neuron in the window, one bit
    /// per cycle, and returns the cycle count (the window updates in
    /// parallel, so the cost is one pass over the vector).
    pub fn update(
        &mut self,
        weights: &mut [TriStateVector],
        window: &[usize],
        input: &BinaryVector,
    ) -> CycleCount {
        for k in 0..input.len() {
            let x = input.bit(k);
            for &idx in window {
                let Some(weight) = weights.get_mut(idx) else {
                    continue;
                };
                if k >= weight.len() {
                    continue;
                }
                match weight.trit(k) {
                    Trit::DontCare => {
                        if self.coin(self.commit_probability) {
                            weight.set(k, Trit::from_bit(x));
                        }
                    }
                    t => {
                        if !t.matches(x) && self.coin(self.relax_probability) {
                            weight.set(k, Trit::DontCare);
                        }
                    }
                }
            }
        }
        input.len() as CycleCount
    }
}

impl Default for NeighbourhoodUpdateBlock {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_schedule_matches_paper_example() {
        let block = NeighbourhoodUpdateBlock::paper_default();
        // §V-D example with 100 iterations.
        assert_eq!(block.radius_at(0, 100), 4);
        assert_eq!(block.radius_at(24, 100), 4);
        assert_eq!(block.radius_at(25, 100), 3);
        assert_eq!(block.radius_at(50, 100), 2);
        assert_eq!(block.radius_at(75, 100), 1);
        assert_eq!(block.radius_at(99, 100), 1);
        assert_eq!(block.max_radius(), 4);
    }

    #[test]
    fn window_is_clamped_to_the_address_range() {
        let block = NeighbourhoodUpdateBlock::paper_default();
        assert_eq!(block.window(0, 4, 40), vec![0, 1, 2, 3, 4]);
        assert_eq!(block.window(39, 4, 40), vec![35, 36, 37, 38, 39]);
        assert_eq!(block.window(20, 2, 40), vec![18, 19, 20, 21, 22]);
        assert_eq!(block.window(5, 0, 40), vec![5]);
    }

    #[test]
    fn undamped_update_applies_the_tristate_rule_exactly() {
        let mut block = NeighbourhoodUpdateBlock::paper_default();
        let mut weights = vec![TriStateVector::from_str("01#").unwrap()];
        let input = BinaryVector::from_bit_str("001").unwrap();
        let cycles = block.update(&mut weights, &[0], &input);
        assert_eq!(cycles, 3, "one cycle per bit");
        assert_eq!(weights[0].to_trit_string(), "0#1");
    }

    #[test]
    fn update_cost_is_independent_of_window_size() {
        let mut block = NeighbourhoodUpdateBlock::paper_default();
        let mut weights = vec![TriStateVector::all_dont_care(768); 40];
        let input = BinaryVector::ones(768);
        let cycles_small = block.update(&mut weights, &[0], &input);
        let cycles_large = block.update(&mut weights, &(0..40).collect::<Vec<_>>(), &input);
        assert_eq!(cycles_small, 768);
        assert_eq!(cycles_large, 768, "parallel window update");
    }

    #[test]
    fn zero_probability_update_changes_nothing() {
        let mut block = NeighbourhoodUpdateBlock::new(4, 0.0, 0.0, 1);
        let mut weights = vec![TriStateVector::from_str("0101").unwrap()];
        let before = weights[0].clone();
        block.update(
            &mut weights,
            &[0],
            &BinaryVector::from_bit_str("1010").unwrap(),
        );
        assert_eq!(weights[0], before);
    }

    #[test]
    fn damped_update_changes_some_but_not_all_disagreeing_bits() {
        let mut block = NeighbourhoodUpdateBlock::new(4, 0.5, 0.5, 0xBEEF);
        let mut weights = vec![TriStateVector::from_binary(&BinaryVector::zeros(256))];
        let input = BinaryVector::ones(256);
        block.update(&mut weights, &[0], &input);
        let relaxed = weights[0].count_dont_care();
        assert!(relaxed > 50, "some bits should relax, got {relaxed}");
        assert!(relaxed < 256, "not every bit should relax, got {relaxed}");
    }

    #[test]
    fn out_of_range_window_entries_are_ignored() {
        let mut block = NeighbourhoodUpdateBlock::paper_default();
        let mut weights = vec![TriStateVector::from_str("00").unwrap()];
        let cycles = block.update(
            &mut weights,
            &[0, 5],
            &BinaryVector::from_bit_str("11").unwrap(),
        );
        assert_eq!(cycles, 2);
        assert_eq!(weights[0].to_trit_string(), "##");
    }
}
