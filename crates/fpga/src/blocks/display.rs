//! Output display block (§V-E).
//!
//! The display block continuously renders the neuron weight vectors as
//! binary images on an external VGA monitor for visual verification, running
//! in parallel with the input and WTA blocks at the monitor's refresh rate
//! (60 Hz). The simulator reproduces the standard 640 × 480 @ 60 Hz timing
//! and renders the neuron grid into an ASCII/"framebuffer" form that the
//! examples print.

use bsom_signature::{BinaryImage, TriStateVector};
use serde::{Deserialize, Serialize};

use crate::clock::{ClockDomain, CycleCount};

/// Standard VGA timing parameters (pixels per line / lines per frame include
/// blanking intervals).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VgaTiming {
    /// Visible pixels per line.
    pub h_visible: u32,
    /// Total pixel clocks per line (visible + front porch + sync + back porch).
    pub h_total: u32,
    /// Visible lines per frame.
    pub v_visible: u32,
    /// Total lines per frame.
    pub v_total: u32,
    /// Pixel clock driving the timing.
    pub pixel_clock: ClockDomain,
}

impl VgaTiming {
    /// The 640 × 480 @ 60 Hz mode used by the paper's display block.
    pub fn vga_640x480_60() -> Self {
        VgaTiming {
            h_visible: 640,
            h_total: 800,
            v_visible: 480,
            v_total: 525,
            pixel_clock: ClockDomain::vga_pixel_clock(),
        }
    }

    /// Pixel clocks per full frame (including blanking).
    pub fn cycles_per_frame(&self) -> CycleCount {
        CycleCount::from(self.h_total) * CycleCount::from(self.v_total)
    }

    /// The refresh rate implied by the timing.
    pub fn refresh_rate_hz(&self) -> f64 {
        self.pixel_clock.frequency_hz() / self.cycles_per_frame() as f64
    }
}

impl Default for VgaTiming {
    fn default() -> Self {
        Self::vga_640x480_60()
    }
}

/// The output display block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DisplayBlock {
    timing: VgaTiming,
}

impl DisplayBlock {
    /// Creates the block with the standard VGA timing.
    pub fn new() -> Self {
        Self::default()
    }

    /// The VGA timing the block drives.
    pub fn timing(&self) -> &VgaTiming {
        &self.timing
    }

    /// Renders every neuron's weight vector as a `width × height` binary
    /// image (don't-care trits rendered as background), the content the VGA
    /// output shows. Neurons whose length does not match `width × height`
    /// are skipped.
    pub fn render_neurons(
        &self,
        neurons: &[TriStateVector],
        width: usize,
        height: usize,
    ) -> Vec<BinaryImage> {
        neurons
            .iter()
            .filter(|n| n.len() == width * height)
            .map(|n| {
                BinaryImage::from_bits(width, height, n.to_binary(false))
                    .expect("length checked above")
            })
            .collect()
    }

    /// Number of pixel-clock cycles needed to refresh the display once.
    pub fn cycles_per_refresh(&self) -> CycleCount {
        self.timing.cycles_per_frame()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsom_signature::BinaryVector;

    #[test]
    fn standard_vga_timing_is_sixty_hertz() {
        let t = VgaTiming::vga_640x480_60();
        assert_eq!(t.cycles_per_frame(), 800 * 525);
        let rate = t.refresh_rate_hz();
        assert!((rate - 59.94).abs() < 0.1, "rate = {rate}");
        assert_eq!(VgaTiming::default(), t);
    }

    #[test]
    fn render_produces_one_image_per_neuron() {
        let display = DisplayBlock::new();
        let neurons: Vec<TriStateVector> = (0..5)
            .map(|i| {
                TriStateVector::from_binary(&BinaryVector::from_bits(
                    (0..768).map(|k| (k + i) % 9 == 0),
                ))
            })
            .collect();
        let images = display.render_neurons(&neurons, 32, 24);
        assert_eq!(images.len(), 5);
        for img in &images {
            assert_eq!(img.width(), 32);
            assert_eq!(img.height(), 24);
        }
    }

    #[test]
    fn dont_care_trits_render_as_background() {
        let display = DisplayBlock::new();
        let neurons = vec![TriStateVector::all_dont_care(768)];
        let images = display.render_neurons(&neurons, 32, 24);
        assert_eq!(images[0].count_ones(), 0);
    }

    #[test]
    fn mismatched_neuron_lengths_are_skipped() {
        let display = DisplayBlock::new();
        let neurons = vec![
            TriStateVector::all_dont_care(768),
            TriStateVector::all_dont_care(10),
        ];
        assert_eq!(display.render_neurons(&neurons, 32, 24).len(), 1);
    }

    #[test]
    fn refresh_cost_matches_timing() {
        let display = DisplayBlock::new();
        assert_eq!(display.cycles_per_refresh(), 800 * 525);
        assert_eq!(display.timing().h_visible, 640);
    }
}
