//! The top-level FPGA bSOM: the five blocks wired together with cycle
//! accounting (Fig. 4, §V).
//!
//! [`FpgaBSom`] is the functional-plus-timing model of the chip: it holds the
//! neuron weight memories ("BlockRAM"), runs the weight-initialisation block
//! at start-up, and for every presented signature runs the pattern-input
//! block, the Hamming bank, the comparator-tree WTA and (when training) the
//! neighbourhood-update block, summing their cycle counts. Classification
//! results are bit-identical to the software [`bsom_som::BSom`] loaded with
//! the same weights — the equivalence tests in `tests/` rely on that.

use bsom_signature::{BinaryVector, TriStateVector};
use bsom_som::{BSom, SelfOrganizingMap};
use serde::{Deserialize, Serialize};

use crate::blocks::display::DisplayBlock;
use crate::blocks::hamming::HammingBank;
use crate::blocks::neighbourhood::NeighbourhoodUpdateBlock;
use crate::blocks::pattern_input::PatternInputBlock;
use crate::blocks::weight_init::WeightInitBlock;
use crate::blocks::wta::{WinnerTakeAllBlock, WtaCandidate};
use crate::clock::{ClockDomain, CycleCount};

/// Errors reported by the FPGA model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FpgaError {
    /// A signature was presented before the weights were initialised or
    /// loaded.
    NotInitialised,
    /// The design holds no neurons (invalid configuration).
    EmptyDesign,
}

impl std::fmt::Display for FpgaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FpgaError::NotInitialised => {
                write!(f, "weights have not been initialised or loaded")
            }
            FpgaError::EmptyDesign => write!(f, "the design must have at least one neuron"),
        }
    }
}

impl std::error::Error for FpgaError {}

/// Static configuration of the FPGA design (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpgaConfig {
    /// Number of neurons (Table III: 40).
    pub neurons: usize,
    /// Input / weight vector width in bits (Table III: 768).
    pub vector_len: usize,
    /// Maximum neighbourhood radius (Table III: 4).
    pub max_neighbourhood: usize,
    /// System clock.
    pub clock: ClockDomain,
    /// Probability that a disagreeing weight bit relaxes to `#` during a
    /// training update (1.0 = undamped rule; see `bsom_som::BSomConfig`).
    pub relax_probability: f64,
    /// Probability that a `#` weight bit commits during a training update.
    pub commit_probability: f64,
}

impl FpgaConfig {
    /// The paper's design point: 40 neurons × 768 bits, radius 4, 40 MHz.
    pub fn paper_default() -> Self {
        FpgaConfig {
            neurons: 40,
            vector_len: 768,
            max_neighbourhood: 4,
            clock: ClockDomain::paper_default(),
            relax_probability: 1.0,
            commit_probability: 1.0,
        }
    }

    /// Overrides the number of neurons.
    pub fn with_neurons(mut self, neurons: usize) -> Self {
        self.neurons = neurons;
        self
    }

    /// Overrides the vector width.
    pub fn with_vector_len(mut self, vector_len: usize) -> Self {
        self.vector_len = vector_len;
        self
    }
}

impl Default for FpgaConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-operation cycle breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CycleReport {
    /// Cycles spent in the weight-initialisation block.
    pub init_cycles: CycleCount,
    /// Cycles spent loading the pattern (pattern-input block).
    pub load_cycles: CycleCount,
    /// Cycles spent in the Hamming-distance units.
    pub hamming_cycles: CycleCount,
    /// Cycles spent in the comparator-tree WTA.
    pub wta_cycles: CycleCount,
    /// Cycles spent in the neighbourhood-update block.
    pub update_cycles: CycleCount,
}

impl CycleReport {
    /// Total cycles of the operation.
    pub fn total(&self) -> CycleCount {
        self.init_cycles
            + self.load_cycles
            + self.hamming_cycles
            + self.wta_cycles
            + self.update_cycles
    }
}

/// The outcome of presenting one signature for classification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassificationOutcome {
    /// The winning neuron and its distance.
    pub winner: bsom_som::Winner,
    /// Cycle breakdown of the operation.
    pub cycles: CycleReport,
}

/// The cycle-accurate FPGA bSOM model.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaBSom {
    config: FpgaConfig,
    weights: Vec<TriStateVector>,
    initialised: bool,
    weight_init: WeightInitBlock,
    pattern_input: PatternInputBlock,
    hamming: HammingBank,
    wta: WinnerTakeAllBlock,
    neighbourhood: NeighbourhoodUpdateBlock,
    display: DisplayBlock,
    total_cycles: CycleCount,
    patterns_processed: u64,
}

impl FpgaBSom {
    /// Creates the design with uninitialised weight memories; call
    /// [`initialize`](Self::initialize) (random weights, as at power-up) or
    /// [`load_weights`](Self::load_weights) / [`from_trained`](Self::from_trained)
    /// (off-line trained weights, §V-F) before presenting signatures.
    pub fn new(config: FpgaConfig, seed: u64) -> Self {
        FpgaBSom {
            weights: vec![TriStateVector::all_dont_care(config.vector_len); config.neurons],
            initialised: false,
            weight_init: WeightInitBlock::new(config.neurons, seed),
            pattern_input: PatternInputBlock::new(config.vector_len),
            hamming: HammingBank::new(config.neurons),
            wta: WinnerTakeAllBlock::new(),
            neighbourhood: NeighbourhoodUpdateBlock::new(
                config.max_neighbourhood,
                config.relax_probability,
                config.commit_probability,
                seed ^ 0xD15C,
            ),
            display: DisplayBlock::new(),
            total_cycles: 0,
            patterns_processed: 0,
            config,
        }
    }

    /// Builds the design pre-loaded with the weights of an off-line trained
    /// software bSOM — the deployment flow of §V-F, where the PC-trained
    /// weights are stored in BlockRAM for real-time identification.
    pub fn from_trained(som: &BSom) -> Self {
        let config = FpgaConfig {
            neurons: som.neuron_count(),
            vector_len: som.vector_len(),
            ..FpgaConfig::paper_default()
        };
        let mut fpga = Self::new(config, 0x5EED);
        fpga.load_weights(som.neurons().to_vec());
        fpga
    }

    /// The design configuration.
    pub fn config(&self) -> &FpgaConfig {
        &self.config
    }

    /// The current contents of the weight BlockRAM.
    pub fn weights(&self) -> &[TriStateVector] {
        &self.weights
    }

    /// Total cycles consumed since power-up.
    pub fn total_cycles(&self) -> CycleCount {
        self.total_cycles
    }

    /// Elapsed wall-clock time at the configured system clock.
    pub fn elapsed_secs(&self) -> f64 {
        self.config.clock.cycles_to_secs(self.total_cycles)
    }

    /// Number of signatures presented (training + classification).
    pub fn patterns_processed(&self) -> u64 {
        self.patterns_processed
    }

    /// Runs the weight-initialisation block: random concrete weights, one
    /// cycle per bit (768 cycles for the paper's design).
    pub fn initialize(&mut self) -> CycleReport {
        let (weights, cycles) = self.weight_init.run(self.config.vector_len);
        self.weights = weights;
        self.initialised = true;
        let report = CycleReport {
            init_cycles: cycles,
            ..CycleReport::default()
        };
        self.total_cycles += report.total();
        report
    }

    /// Loads externally-trained weights into the BlockRAM (no cycles counted:
    /// the paper performs this over the configuration/USB path before
    /// real-time operation starts).
    pub fn load_weights(&mut self, weights: Vec<TriStateVector>) {
        self.config.neurons = weights.len();
        self.hamming = HammingBank::new(weights.len());
        self.weights = weights;
        self.initialised = true;
    }

    /// Exports the BlockRAM contents as a software bSOM (for verification or
    /// further off-line training).
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::EmptyDesign`] if there are no neurons.
    pub fn to_software(&self) -> Result<BSom, FpgaError> {
        BSom::from_weights(self.weights.clone()).map_err(|_| FpgaError::EmptyDesign)
    }

    /// Runs one full recognition pass for `input`: pattern load, parallel
    /// Hamming distances, comparator-tree WTA. No weights are modified.
    ///
    /// # Errors
    ///
    /// Returns [`FpgaError::NotInitialised`] if the weights have not been
    /// initialised or loaded, or [`FpgaError::EmptyDesign`] for a zero-neuron
    /// design.
    pub fn classify(&mut self, input: &BinaryVector) -> Result<ClassificationOutcome, FpgaError> {
        let (latched, load_cycles, distances, hamming_cycles, result) = self.front_end(input)?;
        let _ = latched;
        let report = CycleReport {
            load_cycles,
            hamming_cycles,
            wta_cycles: result.cycles,
            ..CycleReport::default()
        };
        self.total_cycles += report.total();
        self.patterns_processed += 1;
        let _ = distances;
        Ok(ClassificationOutcome {
            winner: bsom_som::Winner::new(result.winner, f64::from(result.distance)),
            cycles: report,
        })
    }

    /// Runs one training presentation: the recognition front end followed by
    /// the neighbourhood-update block at the radius dictated by the training
    /// progress (`iteration` of `total_iterations`).
    ///
    /// # Errors
    ///
    /// As for [`classify`](Self::classify).
    pub fn train_pattern(
        &mut self,
        input: &BinaryVector,
        iteration: usize,
        total_iterations: usize,
    ) -> Result<ClassificationOutcome, FpgaError> {
        let (latched, load_cycles, _distances, hamming_cycles, result) = self.front_end(input)?;
        let radius = self.neighbourhood.radius_at(iteration, total_iterations);
        let window = self
            .neighbourhood
            .window(result.winner, radius, self.config.neurons);
        let update_cycles = self
            .neighbourhood
            .update(&mut self.weights, &window, &latched);
        let report = CycleReport {
            load_cycles,
            hamming_cycles,
            wta_cycles: result.cycles,
            update_cycles,
            ..CycleReport::default()
        };
        self.total_cycles += report.total();
        self.patterns_processed += 1;
        Ok(ClassificationOutcome {
            winner: bsom_som::Winner::new(result.winner, f64::from(result.distance)),
            cycles: report,
        })
    }

    /// Renders the neuron memories the way the display block drives the VGA
    /// output: one 32 × 24 binary image per neuron (for the paper's vector
    /// width; other widths render as a single row).
    pub fn display_frames(&self) -> Vec<bsom_signature::BinaryImage> {
        let (w, h) = if self.config.vector_len == 768 {
            (32, 24)
        } else {
            (self.config.vector_len, 1)
        };
        self.display.render_neurons(&self.weights, w, h)
    }

    /// Common front end shared by classification and training: input block,
    /// Hamming bank, WTA tree.
    #[allow(clippy::type_complexity)]
    fn front_end(
        &mut self,
        input: &BinaryVector,
    ) -> Result<
        (
            BinaryVector,
            CycleCount,
            Vec<u32>,
            CycleCount,
            crate::blocks::wta::WtaResult,
        ),
        FpgaError,
    > {
        if self.config.neurons == 0 {
            return Err(FpgaError::EmptyDesign);
        }
        if !self.initialised {
            return Err(FpgaError::NotInitialised);
        }
        let (latched, load_cycles) = self.pattern_input.load(input);
        let (distances, hamming_cycles) = self.hamming.run(&self.weights, &latched);
        let candidates: Vec<WtaCandidate> = distances
            .iter()
            .enumerate()
            .map(|(address, &distance)| WtaCandidate {
                address,
                distance,
                dont_care_count: self.weights[address].count_dont_care() as u32,
            })
            .collect();
        let result = self.wta.run(&candidates).ok_or(FpgaError::EmptyDesign)?;
        Ok((latched, load_cycles, distances, hamming_cycles, result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsom_som::{BSomConfig, TrainSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn signature(step: usize) -> BinaryVector {
        BinaryVector::from_bits((0..768).map(|i| i % step == 0))
    }

    #[test]
    fn initialisation_costs_exactly_the_vector_width() {
        let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 1);
        let report = fpga.initialize();
        assert_eq!(report.init_cycles, 768);
        assert_eq!(report.total(), 768);
        assert_eq!(fpga.total_cycles(), 768);
    }

    #[test]
    fn classify_before_initialisation_errors() {
        let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 1);
        assert_eq!(
            fpga.classify(&signature(3)).unwrap_err(),
            FpgaError::NotInitialised
        );
    }

    #[test]
    fn classification_cycle_breakdown_matches_the_paper() {
        let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 1);
        fpga.initialize();
        let outcome = fpga.classify(&signature(5)).unwrap();
        assert_eq!(outcome.cycles.load_cycles, 768, "§V-B");
        assert_eq!(outcome.cycles.hamming_cycles, 768, "§V-C");
        assert_eq!(outcome.cycles.wta_cycles, 7, "Fig. 5");
        assert_eq!(outcome.cycles.update_cycles, 0);
        assert_eq!(outcome.cycles.total(), 768 + 768 + 7);
        assert!(outcome.winner.index < 40);
        assert_eq!(fpga.patterns_processed(), 1);
    }

    #[test]
    fn training_adds_the_neighbourhood_update_pass() {
        let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 1);
        fpga.initialize();
        let outcome = fpga.train_pattern(&signature(4), 0, 100).unwrap();
        assert_eq!(outcome.cycles.update_cycles, 768);
        assert_eq!(outcome.cycles.total(), 768 + 768 + 7 + 768);
    }

    #[test]
    fn classification_matches_software_bsom_with_same_weights() {
        let mut rng = StdRng::seed_from_u64(0xFACE);
        let mut software = bsom_som::BSom::new(BSomConfig::paper_default(), &mut rng);
        let data: Vec<BinaryVector> = (2..12).map(signature).collect();
        software
            .train(&data, TrainSchedule::new(5), &mut rng)
            .unwrap();

        let mut fpga = FpgaBSom::from_trained(&software);
        for input in &data {
            let sw = software.winner(input).unwrap();
            let hw = fpga.classify(input).unwrap();
            assert_eq!(hw.winner.index, sw.index, "winner index must match");
            assert_eq!(hw.winner.distance, sw.distance, "distance must match");
        }
    }

    #[test]
    fn undamped_training_matches_undamped_software_update_for_the_winner() {
        // Single-neuron design: the FPGA's undamped neighbourhood update must
        // reproduce the software rule exactly.
        let weights = vec![TriStateVector::from_str(&"01#0".repeat(192)).unwrap()];
        let software = BSom::from_weights(weights.clone())
            .unwrap()
            .with_update_probabilities(1.0, 1.0);
        let mut software = software;
        let mut fpga = FpgaBSom::new(
            FpgaConfig {
                neurons: 1,
                ..FpgaConfig::paper_default()
            },
            3,
        );
        fpga.load_weights(weights);
        let input = signature(3);
        software
            .train_step(&input, 0, &TrainSchedule::new(1))
            .unwrap();
        fpga.train_pattern(&input, 0, 1).unwrap();
        assert_eq!(fpga.weights()[0], *software.neuron(0).unwrap());
    }

    #[test]
    fn elapsed_time_accumulates_with_operations() {
        let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 1);
        fpga.initialize();
        assert!(fpga.elapsed_secs() > 0.0);
        let before = fpga.total_cycles();
        fpga.classify(&signature(6)).unwrap();
        assert!(fpga.total_cycles() > before);
    }

    #[test]
    fn display_frames_render_one_image_per_neuron() {
        let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 1);
        fpga.initialize();
        let frames = fpga.display_frames();
        assert_eq!(frames.len(), 40);
        assert_eq!(frames[0].width(), 32);
        assert_eq!(frames[0].height(), 24);
    }

    #[test]
    fn to_software_roundtrip_preserves_weights() {
        let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 9);
        fpga.initialize();
        let software = fpga.to_software().unwrap();
        assert_eq!(software.neurons(), fpga.weights());
    }

    #[test]
    fn smaller_designs_report_fewer_wta_cycles() {
        let mut fpga = FpgaBSom::new(FpgaConfig::paper_default().with_neurons(10), 2);
        fpga.initialize();
        let outcome = fpga.classify(&signature(3)).unwrap();
        assert_eq!(outcome.cycles.wta_cycles, 5);
    }

    #[test]
    fn error_display_strings() {
        assert!(!FpgaError::NotInitialised.to_string().is_empty());
        assert!(!FpgaError::EmptyDesign.to_string().is_empty());
    }
}
