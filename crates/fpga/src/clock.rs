//! Clock-domain modelling.
//!
//! The paper's design closes timing at 40 MHz including the camera and VGA
//! interfaces (§V-E). Cycle counts produced by the block simulators are
//! converted into wall-clock time and throughput through a [`ClockDomain`].

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// A number of clock cycles.
pub type CycleCount = u64;

/// A synchronous clock domain with a fixed frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockDomain {
    frequency_hz: f64,
}

impl ClockDomain {
    /// Creates a clock domain.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_hz` is not strictly positive and finite.
    pub fn new(frequency_hz: f64) -> Self {
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "clock frequency must be positive and finite, got {frequency_hz}"
        );
        ClockDomain { frequency_hz }
    }

    /// The paper's 40 MHz system clock.
    pub fn paper_default() -> Self {
        ClockDomain::new(40_000_000.0)
    }

    /// The standard 25.175 MHz VGA pixel clock used by the display block.
    pub fn vga_pixel_clock() -> Self {
        ClockDomain::new(25_175_000.0)
    }

    /// The clock frequency in hertz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// The period of one cycle in seconds.
    pub fn period_secs(&self) -> f64 {
        1.0 / self.frequency_hz
    }

    /// Converts a cycle count to elapsed seconds.
    pub fn cycles_to_secs(&self, cycles: CycleCount) -> f64 {
        cycles as f64 / self.frequency_hz
    }

    /// Converts a cycle count to a [`Duration`].
    pub fn cycles_to_duration(&self, cycles: CycleCount) -> Duration {
        Duration::from_secs_f64(self.cycles_to_secs(cycles))
    }

    /// How many operations per second fit if each takes `cycles_per_op`
    /// cycles (0 cycles per op returns infinity).
    pub fn ops_per_second(&self, cycles_per_op: CycleCount) -> f64 {
        if cycles_per_op == 0 {
            return f64::INFINITY;
        }
        self.frequency_hz / cycles_per_op as f64
    }
}

impl Default for ClockDomain {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_is_forty_megahertz() {
        let c = ClockDomain::paper_default();
        assert_eq!(c.frequency_hz(), 40e6);
        assert!((c.period_secs() - 25e-9).abs() < 1e-15);
        assert_eq!(ClockDomain::default(), c);
    }

    #[test]
    fn cycle_conversions() {
        let c = ClockDomain::new(1_000_000.0);
        assert_eq!(c.cycles_to_secs(1_000_000), 1.0);
        assert_eq!(c.cycles_to_duration(500_000), Duration::from_millis(500));
    }

    #[test]
    fn ops_per_second_matches_paper_claim() {
        // ~1600 cycles per training pattern at 40 MHz -> 25,000 patterns/s.
        let c = ClockDomain::paper_default();
        assert!((c.ops_per_second(1600) - 25_000.0).abs() < 1e-9);
        assert_eq!(c.ops_per_second(0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "clock frequency")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::new(0.0);
    }

    #[test]
    fn vga_clock_value() {
        assert_eq!(ClockDomain::vga_pixel_clock().frequency_hz(), 25_175_000.0);
    }
}
