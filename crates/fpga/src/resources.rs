//! Device resource model (Table IV).
//!
//! The paper reports the post-synthesis utilisation of its design on a
//! Virtex-4 XC4VLX160 (package FF1148, speed grade −10): flip-flops, 4-input
//! LUTs, bonded IOBs, occupied slices and RAM16 blocks. We cannot re-run the
//! Handel-C/ISE toolchain, so this module provides an *analytical* model: a
//! per-block resource inventory whose coefficients are calibrated so that the
//! paper's design point (40 neurons × 768 bits) reproduces Table IV exactly,
//! and which scales with the design parameters so alternative configurations
//! (neuron sweeps) produce plausible estimates.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The resource categories of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Slice flip-flops.
    FlipFlops,
    /// 4-input LUTs.
    Lut4,
    /// Bonded I/O blocks.
    BondedIob,
    /// Occupied slices.
    Slices,
    /// RAM16 BlockRAM primitives.
    Ram16,
}

impl ResourceKind {
    /// All categories in Table IV order.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::FlipFlops,
        ResourceKind::Lut4,
        ResourceKind::BondedIob,
        ResourceKind::Slices,
        ResourceKind::Ram16,
    ];

    /// The row label used in Table IV.
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::FlipFlops => "Flip Flops",
            ResourceKind::Lut4 => "4 input LUTs",
            ResourceKind::BondedIob => "bonded IOBs",
            ResourceKind::Slices => "Occupied Slices",
            ResourceKind::Ram16 => "RAM16s",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// The capacity of a target device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceModel {
    /// Device name.
    pub name: String,
    /// Total slice flip-flops.
    pub flip_flops: u64,
    /// Total 4-input LUTs.
    pub lut4: u64,
    /// Total bonded IOBs.
    pub bonded_iobs: u64,
    /// Total slices.
    pub slices: u64,
    /// Total RAM16 blocks.
    pub ram16: u64,
}

impl DeviceModel {
    /// The paper's target: Xilinx Virtex-4 XC4VLX160, package FF1148,
    /// speed grade −10 (totals from Table IV).
    pub fn xc4vlx160() -> Self {
        DeviceModel {
            name: "XC4VLX160 (FF1148, -10)".to_owned(),
            flip_flops: 135_168,
            lut4: 135_168,
            bonded_iobs: 768,
            slices: 67_584,
            ram16: 288,
        }
    }

    /// The total capacity for a resource kind.
    pub fn total(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::FlipFlops => self.flip_flops,
            ResourceKind::Lut4 => self.lut4,
            ResourceKind::BondedIob => self.bonded_iobs,
            ResourceKind::Slices => self.slices,
            ResourceKind::Ram16 => self.ram16,
        }
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        Self::xc4vlx160()
    }
}

/// Resource usage of a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ResourceUsage {
    /// Slice flip-flops used.
    pub flip_flops: u64,
    /// 4-input LUTs used.
    pub lut4: u64,
    /// Bonded IOBs used.
    pub bonded_iobs: u64,
    /// Slices occupied.
    pub slices: u64,
    /// RAM16 blocks used.
    pub ram16: u64,
}

impl ResourceUsage {
    /// The usage for a resource kind.
    pub fn used(&self, kind: ResourceKind) -> u64 {
        match kind {
            ResourceKind::FlipFlops => self.flip_flops,
            ResourceKind::Lut4 => self.lut4,
            ResourceKind::BondedIob => self.bonded_iobs,
            ResourceKind::Slices => self.slices,
            ResourceKind::Ram16 => self.ram16,
        }
    }

    /// Estimates the utilisation of the bSOM design for a given shape.
    ///
    /// The model is a per-block inventory:
    ///
    /// * **Weight memories** — one RAM16 per neuron (768 × 2 bits fits
    ///   comfortably), plus three shared buffers (input register, label
    ///   store, display line buffer).
    /// * **Hamming units / per-neuron datapath** — registers and LUTs that
    ///   scale linearly with the neuron count.
    /// * **WTA comparator tree** — one comparator per internal tree node
    ///   (`neurons − 1`).
    /// * **Control, camera/VGA/USB interfaces** — fixed overhead independent
    ///   of the network size; all external pins live here.
    ///
    /// The coefficients are calibrated so the paper's design point
    /// (40 neurons, 768-bit vectors) reproduces Table IV exactly.
    pub fn estimate_bsom(neurons: usize, vector_len: usize) -> Self {
        let n = neurons as u64;
        // Scale vector-width-dependent terms relative to the paper's 768.
        let width_scale = vector_len as f64 / 768.0;
        let scale = |per_neuron: u64| -> u64 {
            ((per_neuron as f64 * width_scale).round() as u64).max(1) * n
        };
        ResourceUsage {
            // 40·74 + 1135 = 4095
            flip_flops: scale(74) + 1_135,
            // 40·380 + 39·25 + 2212 = 18387
            lut4: scale(380) + n.saturating_sub(1) * 25 + 2_212,
            // Fixed: camera + VGA + USB + configuration pins.
            bonded_iobs: 147,
            // 40·253 + 1348 = 11468
            slices: scale(253) + 1_348,
            // One RAM16 per neuron + input/label/display buffers.
            ram16: n + 3,
        }
    }
}

/// A full utilisation report: usage against a device, in Table IV form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceReport {
    /// The target device.
    pub device: DeviceModel,
    /// The design's estimated usage.
    pub usage: ResourceUsage,
}

impl ResourceReport {
    /// Builds the report for a bSOM design shape on the paper's device.
    pub fn for_bsom(neurons: usize, vector_len: usize) -> Self {
        ResourceReport {
            device: DeviceModel::xc4vlx160(),
            usage: ResourceUsage::estimate_bsom(neurons, vector_len),
        }
    }

    /// Percentage utilisation for a resource kind, rounded to the nearest
    /// integer as in Table IV.
    pub fn percent(&self, kind: ResourceKind) -> u64 {
        let total = self.device.total(kind);
        if total == 0 {
            return 0;
        }
        ((self.usage.used(kind) as f64 / total as f64) * 100.0).round() as u64
    }

    /// Renders the report as rows of `(label, total, used, percent)` in the
    /// order Table IV lists them.
    pub fn rows(&self) -> Vec<(String, u64, u64, u64)> {
        ResourceKind::ALL
            .iter()
            .map(|&kind| {
                (
                    kind.label().to_owned(),
                    self.device.total(kind),
                    self.usage.used(kind),
                    self.percent(kind),
                )
            })
            .collect()
    }

    /// Whether the design fits the device.
    pub fn fits(&self) -> bool {
        ResourceKind::ALL
            .iter()
            .all(|&kind| self.usage.used(kind) <= self.device.total(kind))
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<18} {:>10} {:>10} {:>8}",
            "Resource", "Total", "Used", "Per.(%)"
        )?;
        for (label, total, used, percent) in self.rows() {
            writeln!(f, "{label:<18} {total:>10} {used:>10} {percent:>8}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_totals_match_table_four() {
        let d = DeviceModel::xc4vlx160();
        assert_eq!(d.flip_flops, 135_168);
        assert_eq!(d.lut4, 135_168);
        assert_eq!(d.bonded_iobs, 768);
        assert_eq!(d.slices, 67_584);
        assert_eq!(d.ram16, 288);
        assert_eq!(DeviceModel::default(), d);
    }

    #[test]
    fn paper_design_point_reproduces_table_four_exactly() {
        let usage = ResourceUsage::estimate_bsom(40, 768);
        assert_eq!(usage.flip_flops, 4_095);
        assert_eq!(usage.lut4, 18_387);
        assert_eq!(usage.bonded_iobs, 147);
        assert_eq!(usage.slices, 11_468);
        assert_eq!(usage.ram16, 43);
    }

    #[test]
    fn paper_design_point_reproduces_table_four_percentages() {
        let report = ResourceReport::for_bsom(40, 768);
        assert_eq!(report.percent(ResourceKind::FlipFlops), 3);
        assert_eq!(report.percent(ResourceKind::Lut4), 14); // paper rounds 13.6 down to 13
        assert_eq!(report.percent(ResourceKind::BondedIob), 19);
        assert_eq!(report.percent(ResourceKind::Slices), 17); // paper reports 16 (floor)
        assert_eq!(report.percent(ResourceKind::Ram16), 15); // paper reports 14 (floor)
        assert!(report.fits());
    }

    #[test]
    fn usage_scales_with_neuron_count() {
        let small = ResourceUsage::estimate_bsom(10, 768);
        let large = ResourceUsage::estimate_bsom(100, 768);
        for kind in ResourceKind::ALL {
            if kind == ResourceKind::BondedIob {
                assert_eq!(small.used(kind), large.used(kind), "IOBs are fixed");
            } else {
                assert!(small.used(kind) < large.used(kind), "{kind} should grow");
            }
        }
    }

    #[test]
    fn usage_scales_with_vector_width() {
        let narrow = ResourceUsage::estimate_bsom(40, 256);
        let wide = ResourceUsage::estimate_bsom(40, 768);
        assert!(narrow.lut4 < wide.lut4);
        assert!(narrow.flip_flops < wide.flip_flops);
    }

    #[test]
    fn a_much_larger_map_still_fits_the_device() {
        // The paper argues the design leaves ample headroom; a 200-neuron map
        // should still fit the XC4VLX160 except possibly BlockRAM.
        let report = ResourceReport::for_bsom(200, 768);
        assert!(report.usage.lut4 < report.device.lut4);
        assert!(report.usage.slices < report.device.slices);
        assert!(report.usage.ram16 <= report.device.ram16);
    }

    #[test]
    fn rows_and_display_cover_all_five_resources() {
        let report = ResourceReport::for_bsom(40, 768);
        let rows = report.rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].0, "Flip Flops");
        let rendered = report.to_string();
        assert!(rendered.contains("RAM16s"));
        assert!(rendered.contains("18387"));
    }

    #[test]
    fn resource_kind_labels_match_table_four() {
        assert_eq!(ResourceKind::FlipFlops.to_string(), "Flip Flops");
        assert_eq!(ResourceKind::Lut4.label(), "4 input LUTs");
        assert_eq!(ResourceKind::ALL.len(), 5);
    }
}
