//! Throughput derivation (§V-E, §V-F).
//!
//! From the per-operation cycle counts and the 40 MHz clock the paper derives
//! that the design can train with "up to 25,000 patterns of size 768 bits in
//! a second" and recognise far more signatures per second than the 30 fps
//! tracker can supply. This module performs the same derivation from the
//! simulated cycle counts so the claim can be checked mechanically.

use serde::{Deserialize, Serialize};

use crate::clock::ClockDomain;
use crate::core::{FpgaBSom, FpgaConfig};

/// A throughput figure derived from cycle counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputReport {
    /// Cycles one operation takes.
    pub cycles_per_pattern: u64,
    /// Clock frequency used for the conversion.
    pub clock_hz: f64,
    /// Operations per second.
    pub patterns_per_second: f64,
    /// Seconds to process one pattern.
    pub seconds_per_pattern: f64,
}

impl ThroughputReport {
    fn from_cycles(cycles: u64, clock: ClockDomain) -> Self {
        ThroughputReport {
            cycles_per_pattern: cycles,
            clock_hz: clock.frequency_hz(),
            patterns_per_second: clock.ops_per_second(cycles),
            seconds_per_pattern: clock.cycles_to_secs(cycles),
        }
    }

    /// How long training `patterns` patterns takes at this throughput.
    pub fn seconds_for(&self, patterns: u64) -> f64 {
        self.seconds_per_pattern * patterns as f64
    }
}

/// Throughput of one *training* presentation (pattern load + Hamming + WTA +
/// neighbourhood update), measured by actually running the simulator once.
pub fn training_throughput(config: FpgaConfig) -> ThroughputReport {
    let clock = config.clock;
    let mut fpga = FpgaBSom::new(config, 0x70);
    fpga.initialize();
    let input = bsom_signature::BinaryVector::from_bits((0..config.vector_len).map(|i| i % 3 == 0));
    let outcome = fpga
        .train_pattern(&input, 0, 100)
        .expect("freshly initialised design accepts patterns");
    ThroughputReport::from_cycles(outcome.cycles.total(), clock)
}

/// Throughput of one *recognition* presentation (no weight update).
pub fn recognition_throughput(config: FpgaConfig) -> ThroughputReport {
    let clock = config.clock;
    let mut fpga = FpgaBSom::new(config, 0x7E57);
    fpga.initialize();
    let input = bsom_signature::BinaryVector::from_bits((0..config.vector_len).map(|i| i % 3 == 0));
    let outcome = fpga
        .classify(&input)
        .expect("freshly initialised design accepts patterns");
    ThroughputReport::from_cycles(outcome.cycles.total(), clock)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_throughput_exceeds_the_paper_claim() {
        let report = training_throughput(FpgaConfig::paper_default());
        // 768 + 768 + 7 + 768 = 2311 cycles -> ~17.3k training patterns/s;
        // the paper's 25,000/s claim counts the recognition path (no update),
        // so check both here and in the recognition test below.
        assert_eq!(report.cycles_per_pattern, 2311);
        assert!(report.patterns_per_second > 17_000.0);
        // Training the paper's whole 2,248-signature set takes well under a second.
        assert!(
            report.seconds_for(2248) < 1.0,
            "§V-F: thousands of patterns in < 1 s"
        );
    }

    #[test]
    fn recognition_throughput_exceeds_25000_per_second() {
        let report = recognition_throughput(FpgaConfig::paper_default());
        assert_eq!(report.cycles_per_pattern, 768 + 768 + 7);
        assert!(
            report.patterns_per_second >= 25_000.0,
            "paper claims 25,000 signatures/s, model gives {}",
            report.patterns_per_second
        );
    }

    #[test]
    fn recognition_far_exceeds_the_camera_rate() {
        // §V-F: the 30 fps tracker cannot saturate the FPGA.
        let report = recognition_throughput(FpgaConfig::paper_default());
        assert!(report.patterns_per_second > 30.0 * 100.0);
    }

    #[test]
    fn throughput_scales_with_clock_frequency() {
        let slow = recognition_throughput(FpgaConfig {
            clock: ClockDomain::new(10_000_000.0),
            ..FpgaConfig::paper_default()
        });
        let fast = recognition_throughput(FpgaConfig::paper_default());
        assert!(fast.patterns_per_second > 3.9 * slow.patterns_per_second);
    }

    #[test]
    fn smaller_vectors_process_faster() {
        let narrow = recognition_throughput(FpgaConfig::paper_default().with_vector_len(256));
        let wide = recognition_throughput(FpgaConfig::paper_default());
        assert!(narrow.patterns_per_second > wide.patterns_per_second);
    }
}
