//! # bsom-fpga
//!
//! A cycle-accurate software model of the paper's FPGA implementation of the
//! bSOM (§V), together with an analytical resource model of the target
//! device (Xilinx Virtex-4 XC4VLX160).
//!
//! The real design was written in Handel-C and synthesised with the Agility
//! DK / Xilinx ISE toolchain onto hardware we do not have; what the paper
//! actually *reports* about that hardware is a set of architectural facts
//! that a simulator can reproduce exactly:
//!
//! * the five-block structure — weight initialisation, pattern input,
//!   winner-take-all, neighbourhood update and display (Fig. 4);
//! * cycle counts: 768 cycles to initialise, 768 cycles to load a pattern,
//!   768 cycles for the bit-serial Hamming distances computed in parallel
//!   across all 40 neurons, and 7 cycles for the comparator-tree WTA
//!   (Fig. 5);
//! * a 40 MHz system clock giving ≥ 25,000 processed signatures per second;
//! * the resource utilisation of Table IV.
//!
//! [`FpgaBSom`] wires the per-block simulators together and counts cycles;
//! [`resources`] reproduces Table IV; [`throughput`] derives the signatures
//! per second figures.
//!
//! ## Quick example
//!
//! ```rust
//! use bsom_fpga::{FpgaBSom, FpgaConfig};
//! use bsom_signature::BinaryVector;
//!
//! let mut fpga = FpgaBSom::new(FpgaConfig::paper_default(), 7);
//! let init = fpga.initialize();
//! assert_eq!(init.total(), 768); // §V-A: exactly 768 cycles
//!
//! let signature = BinaryVector::from_bits((0..768).map(|i| i % 7 == 0));
//! let outcome = fpga.classify(&signature).unwrap();
//! assert!(outcome.winner.index < 40);
//! assert_eq!(outcome.cycles.wta_cycles, 7); // Fig. 5: seven comparator stages
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod blocks;
pub mod clock;
pub mod core;
pub mod resources;
pub mod throughput;

pub use blocks::display::{DisplayBlock, VgaTiming};
pub use blocks::hamming::HammingUnit;
pub use blocks::neighbourhood::NeighbourhoodUpdateBlock;
pub use blocks::pattern_input::PatternInputBlock;
pub use blocks::weight_init::WeightInitBlock;
pub use blocks::wta::WinnerTakeAllBlock;
pub use clock::{ClockDomain, CycleCount};
pub use core::{ClassificationOutcome, CycleReport, FpgaBSom, FpgaConfig, FpgaError};
pub use resources::{DeviceModel, ResourceKind, ResourceReport, ResourceUsage};
pub use throughput::{recognition_throughput, training_throughput, ThroughputReport};
