//! Multi-tenant facade cost model: what [`MapRegistry`] charges per
//! training step and per classify next to a bare [`Trainer`], plus the
//! spill round-trip rate the LRU evictor can sustain.
//!
//! The paper's "millions of users" framing turns into thousands of small
//! per-user maps behind one facade; the figures here keep that facade
//! honest. The load-bearing number is the dimensionless
//! [`RegistryThroughputComparison::registry_step_overhead`]: how much of a
//! direct trainer's step rate survives the registry's slab lookup, FIFO
//! queue and round-robin tick. `bench_report --check` gates it (and the
//! raw rates) in `BENCH_registry.json`.

use std::time::Duration;

use bsom_signature::BinaryVector;
use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
use serde::{Deserialize, Serialize};

use crate::registry::{MapRegistry, RegistryConfig};
use crate::throughput::{measure, MeasuredThroughput};
use crate::EngineConfig;

/// Registry-vs-direct throughput at a given fleet shape.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegistryThroughputComparison {
    /// Tenants in the measured registry.
    pub tenants: usize,
    /// Neurons per tenant map.
    pub neurons: usize,
    /// Bits per weight vector.
    pub vector_len: usize,
    /// Training steps per second through a bare [`crate::Trainer`] — the
    /// no-facade reference numerator every registry figure is held against.
    pub direct_steps: MeasuredThroughput,
    /// Training steps per second through [`MapRegistry::feed`] +
    /// [`MapRegistry::train_tick`], spread round-robin across all tenants.
    pub registry_steps: MeasuredThroughput,
    /// Signatures classified per second through [`MapRegistry::classify`],
    /// cycling across tenants so every call pays the facade lookup.
    pub registry_classify: MeasuredThroughput,
    /// Full evict-to-disk + validating-reload round-trips per second for
    /// one tenant ([`MapRegistry::evict`] then [`MapRegistry::reload`]).
    pub spill_roundtrips: MeasuredThroughput,
}

impl RegistryThroughputComparison {
    /// Fraction of the direct trainer's step rate the registry path keeps
    /// (1.0 = free facade; the gate watches this, not the machine-bound raw
    /// rates, so it stays meaningful across hosts).
    pub fn registry_step_overhead(&self) -> f64 {
        self.registry_steps.patterns_per_second
            / self.direct_steps.patterns_per_second.max(f64::MIN_POSITIVE)
    }
}

impl std::fmt::Display for RegistryThroughputComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "registry costs ({} tenants x {} neurons x {} bits)",
            self.tenants, self.neurons, self.vector_len
        )?;
        writeln!(
            f,
            "  direct trainer steps  {:>12.0} steps/s",
            self.direct_steps.patterns_per_second
        )?;
        writeln!(
            f,
            "  registry feed+tick    {:>12.0} steps/s  ({:.2}x direct)",
            self.registry_steps.patterns_per_second,
            self.registry_step_overhead()
        )?;
        writeln!(
            f,
            "  facade classify       {:>12.0} signatures/s",
            self.registry_classify.patterns_per_second
        )?;
        write!(
            f,
            "  spill round-trips     {:>12.1} evict+reloads/s",
            self.spill_roundtrips.patterns_per_second
        )
    }
}

/// Measures the four registry figures on a fleet of `tenants` maps of the
/// given shape. `min_duration` is spent on **each** measurement. The spill
/// directory lives under the OS temp directory and is removed before
/// returning.
///
/// # Panics
///
/// Panics if `tenants` is zero or the OS temp directory is not writable
/// (benchmark infrastructure, not a recoverable serving condition).
pub fn compare_registry_throughput(
    tenants: usize,
    config: BSomConfig,
    min_duration: Duration,
    seed: u64,
) -> RegistryThroughputComparison {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    assert!(tenants > 0, "cannot measure an empty fleet");
    let neurons = config.neurons;
    let vector_len = config.vector_len;
    let mut rng = StdRng::seed_from_u64(seed);
    // One shared batch of examples; every step trains on the next one.
    let examples: Vec<(BinaryVector, ObjectLabel)> = (0..64)
        .map(|i| {
            (
                BinaryVector::random(vector_len, &mut rng),
                ObjectLabel::new(i % 8),
            )
        })
        .collect();
    let batch = examples.len();

    // A step's cost depends on the map's training history: as a map
    // converges on its stream, fewer bits flip and each tick's
    // copy-on-write publish copies fewer dirty rows. So (a) each leg is
    // warmed with its **own measured closure** until that regime is
    // stationary — otherwise a short smoke window measures the expensive
    // early regime while a full window measures the converged one, and the
    // smoke-vs-committed gate compares different physics — and (b) both
    // step legs give every map the same stream (one fixed example per map,
    // matching the round-robin assignment below), so the overhead ratio
    // isolates the facade, not a distribution difference.
    let (_service, mut trainer) = crate::SomService::train_while_serve(
        BSom::new(config, &mut StdRng::seed_from_u64(seed)),
        TrainSchedule::new(usize::MAX),
        &[],
        EngineConfig::with_workers(1),
    );
    let (direct_signature, direct_label) = examples[0].clone();
    let mut direct_work = || {
        for _ in 0..batch {
            trainer
                .feed(&direct_signature, direct_label)
                .expect("generated signatures match the map's vector length");
        }
    };
    for _ in 0..512 {
        direct_work();
    }
    let direct_steps = measure(batch, min_duration, direct_work);

    let dir = std::env::temp_dir().join(format!(
        "bsom-registry-bench-{}-{seed:x}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).expect("the OS temp directory is writable");
    let registry =
        MapRegistry::new(RegistryConfig::new(EngineConfig::with_workers(1)).with_spill_dir(&dir));
    for t in 0..tenants {
        registry
            .create_tenant(
                t as u64,
                BSom::new(config, &mut StdRng::seed_from_u64(seed ^ t as u64)),
                TrainSchedule::new(usize::MAX),
                &[],
            )
            .expect("fresh tenant ids are unique");
    }

    // Facade path: queue one batch round-robin across the fleet, flush it
    // with one tick — every step pays the slab lookup + FIFO + scheduler,
    // and every trained tenant pays a publish at tick end. Tenant `i %
    // tenants` always receives example `i`, so each map sees a fixed slice
    // of the corpus (exactly one example when `tenants` equals the batch
    // size, as in the committed report) — matching the direct trainer's
    // fixed stream.
    let registry_work = || {
        for (i, (signature, label)) in examples.iter().enumerate() {
            registry
                .feed((i % tenants) as u64, signature, *label)
                .expect("every tenant exists and signatures match");
        }
        let report = registry.train_tick(u64::MAX);
        assert!(report.failures.is_empty(), "bench tick failed: {report:?}");
    };
    for _ in 0..4096 {
        registry_work();
    }
    let registry_steps = measure(batch, min_duration, registry_work);

    let probes: Vec<BinaryVector> = (0..8)
        .map(|_| BinaryVector::random(vector_len, &mut rng))
        .collect();
    let registry_classify = measure(probes.len() * tenants.min(8), min_duration, || {
        for t in 0..tenants.min(8) {
            std::hint::black_box(
                registry
                    .classify(t as u64, &probes)
                    .expect("every tenant exists and probes match"),
            );
        }
    });

    let spill_roundtrips = measure(1, min_duration, || {
        registry.evict(0u64).expect("tenant 0 is healthy");
        registry
            .reload(0u64)
            .expect("a just-spilled tenant reloads");
    });

    let _ = std::fs::remove_dir_all(&dir);
    RegistryThroughputComparison {
        tenants,
        neurons,
        vector_len,
        direct_steps,
        registry_steps,
        registry_classify,
        spill_roundtrips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_comparison_produces_positive_figures_and_renders() {
        // A scaled-down fleet keeps the unit test fast; the committed
        // BENCH_registry.json uses 64 tenants at the paper map shape.
        let comparison = compare_registry_throughput(
            8,
            BSomConfig::new(10, 96),
            Duration::from_millis(10),
            0x4E57,
        );
        assert_eq!(comparison.tenants, 8);
        assert_eq!(comparison.neurons, 10);
        assert_eq!(comparison.vector_len, 96);
        assert!(comparison.direct_steps.patterns_per_second > 0.0);
        assert!(comparison.registry_steps.patterns_per_second > 0.0);
        assert!(comparison.registry_classify.patterns_per_second > 0.0);
        assert!(comparison.spill_roundtrips.patterns_per_second > 0.0);
        assert!(comparison.registry_step_overhead() > 0.0);
        let text = comparison.to_string();
        assert!(text.contains("registry feed+tick"));
        assert!(text.contains("spill round-trips"));
        let json = serde_json::to_string(&comparison).unwrap();
        let back: RegistryThroughputComparison = serde_json::from_str(&json).unwrap();
        assert_eq!(back, comparison);
    }
}
