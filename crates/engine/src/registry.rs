//! The multi-tenant map registry: thousands of independent bSOM maps behind
//! one facade.
//!
//! The paper's classifier is a 40-neuron map — tiny. Serving "millions of
//! users" (the ROADMAP north star) therefore means many small per-user maps
//! in one process, not one giant map; the related FPGA recognizers scale the
//! same way, by replicating a small binary core. [`MapRegistry`] is that
//! replication in software (DESIGN.md §"The multi-tenant registry"):
//!
//! * **Slab-packed tenant table.** Tenants live in a `Vec<Option<TenantSlot>>`
//!   with a free list, indexed by a [`TenantId`] → slot map, so create/remove
//!   churn reuses slots instead of reallocating, and the round-robin scheduler
//!   walks a dense array.
//! * **One shared worker pool.** Every classify [`Job`](crate::service) in
//!   the engine carries the `Arc<PackedLayer>` it must search, so a single
//!   supervised pool serves *every* tenant's snapshots — N tenants cost N
//!   maps, not N thread pools.
//! * **Fair round-robin training.** Clients enqueue labelled examples with
//!   [`feed`](MapRegistry::feed); [`train_tick`](MapRegistry::train_tick)
//!   spreads a per-tick step budget across all tenants with pending work, one
//!   step per tenant per rotation, resuming each tick where the last stopped.
//!   Every tenant that trained is published at tick end, which establishes
//!   the invariant the eviction path relies on: **outside a tick, a tenant's
//!   trainer state equals its published snapshot.**
//! * **LRU eviction to disk.** Cold tenants spill to the validating
//!   checkpoint frames of [`Trainer::write_checkpoint`] and are reloaded
//!   transparently (and fault-typed) on their next touch. Because of the
//!   publish-at-tick-end invariant the reload republishes at the *same*
//!   version the tenant had when evicted — the round trip is invisible to
//!   clients, which the `tenant_isolation` differential suite proves
//!   bit-identically (weights, `#`-counts, RNG stream, versions).
//! * **In-place trainer recovery.** A tenant whose training step panicked
//!   ([`EngineError::TrainerPoisoned`]) can be recovered without a checkpoint
//!   file via [`replace_trainer`](MapRegistry::replace_trainer), which
//!   rebuilds the trainer's map from the last published snapshot.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use bsom_signature::BinaryVector;
use bsom_som::{BSom, ObjectLabel, Prediction, TrainSchedule};

use crate::checkpoint::{self, CheckpointDoc};
use crate::service::{
    lock_recovering, resolve_queue_capacity, resolve_workers, ServiceHealth, SomService,
    SomSnapshot, Trainer, WorkerPool,
};
use crate::{EngineConfig, EngineError};

/// A tenant's identity: an arbitrary UTF-8 string (u64 ids convert via
/// `From<u64>` as their decimal rendering, matching the wire format, which
/// carries tenant ids as strings).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(String);

impl TenantId {
    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TenantId {
    fn from(id: String) -> Self {
        TenantId(id)
    }
}

impl From<&str> for TenantId {
    fn from(id: &str) -> Self {
        TenantId(id.to_string())
    }
}

impl From<&String> for TenantId {
    fn from(id: &String) -> Self {
        TenantId(id.clone())
    }
}

impl From<u64> for TenantId {
    fn from(id: u64) -> Self {
        TenantId(id.to_string())
    }
}

impl From<&TenantId> for TenantId {
    fn from(id: &TenantId) -> Self {
        id.clone()
    }
}

/// Configuration of a [`MapRegistry`].
#[derive(Debug, Clone, Default)]
pub struct RegistryConfig {
    /// The per-tenant engine configuration (worker count and queue capacity
    /// size the one shared pool; the rest applies to every tenant).
    pub engine: EngineConfig,
    /// Maximum tenants kept resident in memory; beyond it the
    /// least-recently-touched tenant is evicted to disk. `0` (the default)
    /// means unlimited — nothing is ever evicted automatically.
    pub max_resident: usize,
    /// Directory for eviction spill checkpoints. Required (asserted by
    /// [`MapRegistry::new`]) when `max_resident > 0`; without it, explicit
    /// [`evict`](MapRegistry::evict) returns
    /// [`EngineError::SpillUnconfigured`].
    pub spill_dir: Option<PathBuf>,
}

impl RegistryConfig {
    /// Starts from the given per-tenant engine configuration.
    pub fn new(engine: EngineConfig) -> Self {
        RegistryConfig {
            engine,
            ..RegistryConfig::default()
        }
    }

    /// Sets the resident-tenant ceiling (see
    /// [`max_resident`](RegistryConfig::max_resident)).
    pub fn with_max_resident(mut self, max_resident: usize) -> Self {
        self.max_resident = max_resident;
        self
    }

    /// Sets the eviction spill directory.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }
}

/// Where a tenant's state currently lives.
enum TenantState {
    /// In memory: a live service/trainer pair over the shared pool. The
    /// trainer is boxed so an evicted slot shrinks to the enum tag — the
    /// slab stays dense when most of "thousands of tenants" are cold.
    Resident {
        service: Arc<SomService>,
        trainer: Box<Trainer>,
    },
    /// Spilled to the slot's checkpoint file; reloaded on next touch.
    Evicted,
}

/// One slab slot: a tenant's identity, state, queued training examples and
/// LRU clock. The pending queue lives *outside* [`TenantState`], so feeding
/// an evicted tenant costs no reload — the queue drains when the scheduler
/// reloads it anyway.
struct TenantSlot {
    id: TenantId,
    state: TenantState,
    pending: VecDeque<(BinaryVector, ObjectLabel)>,
    /// Logical LRU clock value of the last touch (feed/classify/train).
    last_touch: u64,
    /// This tenant's spill file, fixed at creation (`Some` iff the registry
    /// has a spill directory). Deleted when the tenant is removed.
    spill_path: Option<PathBuf>,
}

impl TenantSlot {
    fn is_resident(&self) -> bool {
        matches!(self.state, TenantState::Resident { .. })
    }
}

/// Everything behind the registry's one mutex.
struct RegistryInner {
    slots: Vec<Option<TenantSlot>>,
    free: Vec<usize>,
    index: HashMap<TenantId, usize>,
    /// Slot index the next [`MapRegistry::train_tick`] rotation starts at.
    rr_cursor: usize,
    /// Logical LRU clock, bumped on every touch.
    clock: u64,
    /// Tenants ever created — names spill files uniquely across removes.
    created_total: u64,
    evictions_total: u64,
    reloads_total: u64,
    steps_total: u64,
    ticks_total: u64,
}

impl RegistryInner {
    fn touch(&mut self, index: usize) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(slot) = self.slots[index].as_mut() {
            slot.last_touch = clock;
        }
    }

    fn index_of(&self, id: &TenantId) -> Result<usize, EngineError> {
        self.index
            .get(id)
            .copied()
            .ok_or_else(|| EngineError::UnknownTenant {
                tenant: id.as_str().to_string(),
            })
    }

    fn slot_mut(&mut self, index: usize) -> &mut TenantSlot {
        self.slots[index]
            .as_mut()
            .expect("indexed slots are occupied")
    }
}

/// Counters and occupancy of a registry ([`MapRegistry::stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct RegistryStats {
    /// Tenants currently registered.
    pub tenants: usize,
    /// Tenants resident in memory.
    pub resident: usize,
    /// Tenants spilled to disk.
    pub evicted: usize,
    /// Labelled examples queued and not yet trained, across all tenants.
    pub pending_steps: u64,
    /// Tenants evicted to disk since construction.
    pub evictions_total: u64,
    /// Evicted tenants reloaded since construction.
    pub reloads_total: u64,
    /// Training steps run by the scheduler since construction.
    pub steps_total: u64,
    /// [`train_tick`](MapRegistry::train_tick) calls since construction.
    pub ticks_total: u64,
}

/// What one [`MapRegistry::train_tick`] did.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct TickReport {
    /// Training steps run this tick (≤ the budget).
    pub steps: u64,
    /// Distinct tenants that ran at least one step.
    pub tenants_trained: usize,
    /// Evicted tenants reloaded to train their pending work.
    pub reloads: u64,
    /// Tenants evicted at tick end to enforce the residency ceiling.
    pub evictions: u64,
    /// Tenants the tick skipped on a typed error (a failed reload, a
    /// poisoned trainer, a wrong-length example). The registry stays
    /// consistent and every other tenant trained normally.
    pub failures: Vec<(TenantId, EngineError)>,
}

/// A facade owning many independent train-while-serve bSOM tenants over one
/// shared supervised worker pool — see the [module docs](self) for the
/// design and DESIGN.md §"The multi-tenant registry" for the full picture.
///
/// All methods take `&self`; the registry is internally synchronised and
/// shareable via `Arc` across serving and training threads.
///
/// # Examples
///
/// ```rust
/// use bsom_engine::registry::{MapRegistry, RegistryConfig};
/// use bsom_engine::EngineConfig;
/// use bsom_signature::BinaryVector;
/// use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), bsom_engine::EngineError> {
/// let mut rng = StdRng::seed_from_u64(7);
/// let registry = MapRegistry::new(RegistryConfig::new(EngineConfig::with_workers(2)));
///
/// let pattern = BinaryVector::random(64, &mut rng);
/// registry.create_tenant(
///     "camera-17",
///     BSom::new(BSomConfig::new(8, 64), &mut rng),
///     TrainSchedule::new(50),
///     &[],
/// )?;
/// registry.feed("camera-17", &pattern, ObjectLabel::new(3))?;
/// registry.train_tick(64); // fair round-robin over every tenant
/// let verdicts = registry.classify("camera-17", &[pattern][..])?;
/// assert_eq!(verdicts.len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct MapRegistry {
    pool: Arc<WorkerPool>,
    workers: usize,
    config: RegistryConfig,
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for MapRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("MapRegistry")
            .field("tenants", &stats.tenants)
            .field("resident", &stats.resident)
            .field("workers", &self.workers)
            .field("max_resident", &self.config.max_resident)
            .finish()
    }
}

impl MapRegistry {
    /// Creates an empty registry: spawns the shared worker pool sized by the
    /// per-tenant engine configuration.
    ///
    /// # Panics
    ///
    /// Panics if `max_resident > 0` without a spill directory (the eviction
    /// policy would have nowhere to put cold tenants), or if the
    /// `BSOM_DISPATCH` environment variable names an unusable kernel
    /// dispatch — validated eagerly, like every service constructor.
    pub fn new(config: RegistryConfig) -> Self {
        assert!(
            config.max_resident == 0 || config.spill_dir.is_some(),
            "RegistryConfig::max_resident needs a spill_dir to evict into"
        );
        if let Err(error) = bsom_signature::validate_env_dispatch() {
            panic!("{error}");
        }
        let workers = resolve_workers(config.engine.workers);
        let queue_capacity = resolve_queue_capacity(config.engine.queue_capacity, workers);
        let pool = Arc::new(WorkerPool::spawn(workers, queue_capacity));
        MapRegistry {
            pool,
            workers,
            config,
            inner: Mutex::new(RegistryInner {
                slots: Vec::new(),
                free: Vec::new(),
                index: HashMap::new(),
                rr_cursor: 0,
                clock: 0,
                created_total: 0,
                evictions_total: 0,
                reloads_total: 0,
                steps_total: 0,
                ticks_total: 0,
            }),
        }
    }

    /// Registers a new tenant: opens a train-while-serve pair over the
    /// shared pool, exactly like [`SomService::train_while_serve`] (snapshot
    /// v1 published from the map as given, labelled by a win pass over
    /// `seed_data`). May evict the least-recently-touched tenant when the
    /// residency ceiling is hit.
    ///
    /// # Errors
    ///
    /// [`EngineError::DuplicateTenant`] if the id is taken; a
    /// [`EngineError::Checkpoint`] if enforcing the residency ceiling failed
    /// to spill a cold tenant (the new tenant is registered regardless).
    pub fn create_tenant(
        &self,
        id: impl Into<TenantId>,
        som: BSom,
        schedule: TrainSchedule,
        seed_data: &[(BinaryVector, ObjectLabel)],
    ) -> Result<(), EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        if inner.index.contains_key(&id) {
            return Err(EngineError::DuplicateTenant {
                tenant: id.as_str().to_string(),
            });
        }
        let (service, trainer) = SomService::pair_train_while_serve_on(
            som,
            schedule,
            seed_data,
            self.config.engine,
            Arc::clone(&self.pool),
            self.workers,
        );
        inner.created_total += 1;
        let seq = inner.created_total;
        let spill_path = self
            .config
            .spill_dir
            .as_ref()
            .map(|dir| dir.join(format!("tenant-{seq}.bsomckpt")));
        let slot = TenantSlot {
            id: id.clone(),
            state: TenantState::Resident {
                service: Arc::new(service),
                trainer: Box::new(trainer),
            },
            pending: VecDeque::new(),
            last_touch: 0,
            spill_path,
        };
        let index = match inner.free.pop() {
            Some(index) => {
                inner.slots[index] = Some(slot);
                index
            }
            None => {
                inner.slots.push(Some(slot));
                inner.slots.len() - 1
            }
        };
        inner.index.insert(id, index);
        inner.touch(index);
        self.enforce_residency(&mut inner)?;
        Ok(())
    }

    /// Removes a tenant, dropping its in-memory state, queued examples and
    /// spill file. The freed slab slot is reused by the next create.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`].
    pub fn remove(&self, id: impl Into<TenantId>) -> Result<(), EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        let slot = inner.slots[index]
            .take()
            .expect("indexed slots are occupied");
        inner.index.remove(&id);
        inner.free.push(index);
        drop(inner);
        if let Some(path) = slot.spill_path {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }

    /// Queues one labelled training example for the tenant. Cheap — no
    /// training, no reload; the example is consumed by a later
    /// [`train_tick`](Self::train_tick) (or
    /// [`drain_tenant`](Self::drain_tenant)). Feeding counts as a touch for
    /// the LRU policy, but an evicted tenant stays on disk until the
    /// scheduler needs it.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`].
    pub fn feed(
        &self,
        id: impl Into<TenantId>,
        signature: &BinaryVector,
        label: ObjectLabel,
    ) -> Result<(), EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        inner.touch(index);
        inner
            .slot_mut(index)
            .pending
            .push_back((signature.clone(), label));
        Ok(())
    }

    /// Classifies a batch against the tenant's latest published snapshot.
    /// The winner search runs on the shared pool *outside* the registry
    /// lock — concurrent classifies of different tenants do not serialise on
    /// each other (only the snapshot lookup does). An evicted tenant is
    /// transparently reloaded first.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`]; [`EngineError::Checkpoint`] when the
    /// reload of an evicted tenant fails (the tenant stays evicted, the
    /// registry stays consistent).
    pub fn classify(
        &self,
        id: impl Into<TenantId>,
        signatures: impl Into<crate::SignatureBatch>,
    ) -> Result<Vec<Prediction>, EngineError> {
        let id = id.into();
        let (service, snapshot) = {
            let mut inner = lock_recovering(&self.inner);
            let index = inner.index_of(&id)?;
            inner.touch(index);
            self.ensure_resident(&mut inner, index)?;
            let TenantState::Resident { service, .. } = &inner.slot_mut(index).state else {
                unreachable!("ensure_resident leaves the slot resident");
            };
            (Arc::clone(service), service.snapshot())
        };
        Ok(service.classify_pinned(&snapshot, signatures))
    }

    /// The tenant's latest published snapshot (reloading it if evicted) —
    /// gives serving threads a pinned, immutable view exactly like
    /// [`SomService::snapshot`].
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`]; [`EngineError::Checkpoint`] on a
    /// failed reload.
    pub fn snapshot(&self, id: impl Into<TenantId>) -> Result<Arc<SomSnapshot>, EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        inner.touch(index);
        self.ensure_resident(&mut inner, index)?;
        let TenantState::Resident { service, .. } = &inner.slot_mut(index).state else {
            unreachable!("ensure_resident leaves the slot resident");
        };
        Ok(service.snapshot())
    }

    /// The tenant's latest published snapshot version. Works without a
    /// reload for evicted tenants: the spill checkpoint records the version,
    /// and reload republishes at exactly that version, so the answer is the
    /// same either way.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`]; [`EngineError::Checkpoint`] if an
    /// evicted tenant's spill file cannot be read.
    pub fn version(&self, id: impl Into<TenantId>) -> Result<u64, EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        let slot = inner.slot_mut(index);
        match &slot.state {
            TenantState::Resident { service, .. } => Ok(service.version()),
            TenantState::Evicted => {
                let path = slot
                    .spill_path
                    .clone()
                    .ok_or(EngineError::SpillUnconfigured)?;
                let doc = checkpoint::read_doc(&path)?;
                Ok(doc.service_version)
            }
        }
    }

    /// A clone of the tenant's map in its current training state (reloading
    /// it if evicted) — the inspection hook the differential
    /// `tenant_isolation` suite compares bit-for-bit against standalone
    /// services (weights, `#`-counts and RNG position all live in the
    /// [`BSom`]).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`]; [`EngineError::Checkpoint`] on a
    /// failed reload.
    pub fn tenant_som(&self, id: impl Into<TenantId>) -> Result<BSom, EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        self.ensure_resident(&mut inner, index)?;
        let TenantState::Resident { trainer, .. } = &inner.slot_mut(index).state else {
            unreachable!("ensure_resident leaves the slot resident");
        };
        Ok(trainer.som().clone())
    }

    /// `true` once the tenant's trainer poisoned itself on a panicked
    /// training step — recover with
    /// [`replace_trainer`](Self::replace_trainer). `false` for evicted
    /// tenants (their checkpointed state predates any poisoning; poisoned
    /// tenants are never evicted).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`].
    pub fn is_poisoned(&self, id: impl Into<TenantId>) -> Result<bool, EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        match &inner.slot_mut(index).state {
            TenantState::Resident { trainer, .. } => Ok(trainer.is_poisoned()),
            TenantState::Evicted => Ok(false),
        }
    }

    /// Recovers the tenant's trainer in place from its last published
    /// snapshot — the poisoned-trainer recovery path
    /// ([`Trainer::reset_from_snapshot`]): no checkpoint file needed, the
    /// tenant keeps serving throughout, and training resumes deterministically
    /// from the published weights.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`]; [`EngineError::Checkpoint`] on a
    /// failed reload of an evicted tenant.
    pub fn replace_trainer(&self, id: impl Into<TenantId>) -> Result<(), EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        inner.touch(index);
        self.ensure_resident(&mut inner, index)?;
        let TenantState::Resident { trainer, .. } = &mut inner.slot_mut(index).state else {
            unreachable!("ensure_resident leaves the slot resident");
        };
        trainer.reset_from_snapshot()
    }

    /// Explicitly evicts a tenant to its spill checkpoint. The in-memory
    /// state is dropped only after the checkpoint frame is durably on disk;
    /// a failure (or an injected `registry.evict` panic) leaves the tenant
    /// resident and servable. Queued examples stay in memory — they spill
    /// with the *slot*, not the state, and train after the next reload.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`]; [`EngineError::SpillUnconfigured`]
    /// without a spill directory; [`EngineError::TrainerPoisoned`] for a
    /// poisoned tenant (its map may hold a torn update — checkpointing it
    /// would resurrect the tear as clean state; recover with
    /// [`replace_trainer`](Self::replace_trainer) first);
    /// [`EngineError::Checkpoint`] when the spill write fails.
    pub fn evict(&self, id: impl Into<TenantId>) -> Result<(), EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        self.evict_slot(&mut inner, index)
    }

    /// Reloads an evicted tenant into memory now (instead of lazily on next
    /// touch). A no-op for resident tenants.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`]; [`EngineError::Checkpoint`] when the
    /// spill file is missing, torn or corrupt — typed, and the registry
    /// stays consistent (the tenant simply stays evicted).
    pub fn reload(&self, id: impl Into<TenantId>) -> Result<(), EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        inner.touch(index);
        self.ensure_resident(&mut inner, index)
    }

    /// Runs up to `step_budget` training steps, spread fairly across every
    /// tenant with queued examples: one step per tenant per rotation,
    /// starting each tick at the slot after the one the previous tick
    /// stopped at. Evicted tenants with pending work are reloaded
    /// transparently. Every tenant that trained is published at tick end
    /// (plus any mid-tick publishes its own
    /// [`EngineConfig::publish_every_steps`] cadence fired), then the
    /// residency ceiling is enforced by evicting the least-recently-touched
    /// tenants.
    ///
    /// Per-tenant errors (failed reload, poisoned trainer, wrong-length
    /// example) never fail the tick: the tenant is skipped for the rest of
    /// the tick and reported in [`TickReport::failures`].
    pub fn train_tick(&self, step_budget: u64) -> TickReport {
        let mut report = TickReport::default();
        let mut inner = lock_recovering(&self.inner);
        inner.ticks_total += 1;
        let reloads_at_start = inner.reloads_total;
        let evictions_at_start = inner.evictions_total;
        let slot_count = inner.slots.len();
        if slot_count == 0 || step_budget == 0 {
            return report;
        }
        // Indices of tenants that trained this tick (publish at tick end)
        // and of tenants that errored (skipped for the rest of the tick).
        let mut trained: Vec<usize> = Vec::new();
        let mut failed: Vec<usize> = Vec::new();
        let mut budget = step_budget;
        'tick: loop {
            let mut progressed = false;
            for offset in 0..slot_count {
                if budget == 0 {
                    // Resume the interrupted rotation here next tick.
                    inner.rr_cursor = (inner.rr_cursor + offset) % slot_count;
                    break 'tick;
                }
                let index = (inner.rr_cursor + offset) % slot_count;
                let Some(slot) = inner.slots[index].as_ref() else {
                    continue;
                };
                if slot.pending.is_empty() || failed.contains(&index) {
                    continue;
                }
                if let Err(error) = self.ensure_resident(&mut inner, index) {
                    let id = inner.slot_mut(index).id.clone();
                    report.failures.push((id, error));
                    failed.push(index);
                    continue;
                }
                inner.touch(index);
                let slot = inner.slot_mut(index);
                let id = slot.id.clone();
                let (signature, label) = slot
                    .pending
                    .pop_front()
                    .expect("pending checked non-empty above");
                let TenantState::Resident { trainer, .. } = &mut slot.state else {
                    unreachable!("ensure_resident leaves the slot resident");
                };
                match trainer.try_feed(&signature, label) {
                    Ok(_) => {
                        budget -= 1;
                        report.steps += 1;
                        inner.steps_total += 1;
                        if !trained.contains(&index) {
                            trained.push(index);
                        }
                        progressed = true;
                    }
                    Err(error) => {
                        // The example is consumed either way: a wrong-length
                        // signature can never train, and a panicked step's
                        // example is part of the torn state the recovery
                        // path discards.
                        report.failures.push((id, error));
                        failed.push(index);
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        // Publish every tenant that moved: the invariant that makes
        // eviction version-transparent (trainer state == published snapshot
        // outside a tick).
        for &index in &trained {
            let TenantState::Resident { trainer, .. } = &mut inner.slot_mut(index).state else {
                continue; // unreachable in practice: trained tenants are resident
            };
            trainer.publish_if_dirty();
        }
        report.tenants_trained = trained.len();
        if let Err((id, error)) = self.enforce_residency_attributed(&mut inner) {
            // The tenant that failed to spill stays resident and servable.
            report.failures.push((id, error));
        }
        report.reloads = inner.reloads_total - reloads_at_start;
        report.evictions = inner.evictions_total - evictions_at_start;
        report
    }

    /// Flushes **all** of one tenant's queued examples through its trainer
    /// (ignoring any tick budget), publishes, and returns
    /// `(steps_flushed, final_version)` — the tenant-scoped graceful drain
    /// the serve layer maps `DrainRequest{tenant}` onto.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`]; [`EngineError::Checkpoint`] on a
    /// failed reload; the first training error (the remaining queue is
    /// preserved).
    pub fn drain_tenant(&self, id: impl Into<TenantId>) -> Result<(u64, u64), EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        inner.touch(index);
        self.ensure_resident(&mut inner, index)?;
        let slot = inner.slot_mut(index);
        let TenantState::Resident { trainer, service } = &mut slot.state else {
            unreachable!("ensure_resident leaves the slot resident");
        };
        let mut steps = 0u64;
        while let Some((signature, label)) = slot.pending.pop_front() {
            match trainer.try_feed(&signature, label) {
                Ok(_) => steps += 1,
                Err(error) => return Err(error),
            }
        }
        trainer.publish_if_dirty();
        let version = service.version();
        inner.steps_total += steps;
        Ok((steps, version))
    }

    /// Aggregate counters and occupancy.
    pub fn stats(&self) -> RegistryStats {
        let inner = lock_recovering(&self.inner);
        let mut resident = 0usize;
        let mut evicted = 0usize;
        let mut pending_steps = 0u64;
        for slot in inner.slots.iter().flatten() {
            if slot.is_resident() {
                resident += 1;
            } else {
                evicted += 1;
            }
            pending_steps += slot.pending.len() as u64;
        }
        RegistryStats {
            tenants: inner.index.len(),
            resident,
            evicted,
            pending_steps,
            evictions_total: inner.evictions_total,
            reloads_total: inner.reloads_total,
            steps_total: inner.steps_total,
            ticks_total: inner.ticks_total,
        }
    }

    /// Supervision counters of the one shared worker pool (see
    /// [`SomService::health`] — the registry's tenants all report through
    /// this single pool).
    pub fn health(&self) -> ServiceHealth {
        self.pool.health_with(self.workers)
    }

    /// Number of registered tenants.
    pub fn len(&self) -> usize {
        lock_recovering(&self.inner).index.len()
    }

    /// `true` when no tenants are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` when the tenant exists (resident or evicted).
    pub fn contains(&self, id: impl Into<TenantId>) -> bool {
        lock_recovering(&self.inner).index.contains_key(&id.into())
    }

    /// `true` when the tenant exists and is resident in memory.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownTenant`].
    pub fn is_resident(&self, id: impl Into<TenantId>) -> Result<bool, EngineError> {
        let id = id.into();
        let mut inner = lock_recovering(&self.inner);
        let index = inner.index_of(&id)?;
        Ok(inner.slot_mut(index).is_resident())
    }

    /// The ids of every registered tenant, in unspecified order.
    pub fn tenant_ids(&self) -> Vec<TenantId> {
        lock_recovering(&self.inner).index.keys().cloned().collect()
    }

    /// Reloads `index` if evicted; no-op when resident. On failure the slot
    /// stays `Evicted` and the error is typed — the registry never poisons.
    fn ensure_resident(&self, inner: &mut RegistryInner, index: usize) -> Result<(), EngineError> {
        let slot = inner.slot_mut(index);
        if slot.is_resident() {
            return Ok(());
        }
        crate::faultpoint::hit("registry.reload");
        let path = slot
            .spill_path
            .clone()
            .ok_or(EngineError::SpillUnconfigured)?;
        let doc: CheckpointDoc = checkpoint::read_doc(&path)?;
        // Republished at *exactly* the checkpointed version (not +1 like the
        // public crash-recovery resume): the spill checkpoint was written
        // under the publish-at-tick-end invariant, so the checkpointed layer
        // IS the snapshot clients were already being served — the eviction
        // round trip must not masquerade as new state.
        let version = doc.service_version;
        let (service, trainer) =
            SomService::pair_from_doc_on(doc, version, Arc::clone(&self.pool), self.workers);
        let slot = inner.slot_mut(index);
        slot.state = TenantState::Resident {
            service: Arc::new(service),
            trainer: Box::new(trainer),
        };
        inner.reloads_total += 1;
        Ok(())
    }

    /// Spills slot `index` to disk. See [`evict`](Self::evict) for the
    /// ordering guarantees.
    fn evict_slot(&self, inner: &mut RegistryInner, index: usize) -> Result<(), EngineError> {
        let slot = inner.slot_mut(index);
        let TenantState::Resident { trainer, .. } = &slot.state else {
            return Ok(()); // already on disk
        };
        if trainer.is_poisoned() {
            return Err(EngineError::TrainerPoisoned);
        }
        debug_assert_eq!(
            trainer.steps_since_publish(),
            0,
            "evict outside a tick: trainer state must equal the published snapshot"
        );
        let path = slot
            .spill_path
            .clone()
            .ok_or(EngineError::SpillUnconfigured)?;
        trainer.write_checkpoint(&path)?;
        // A panic here (the `registry.evict` failpoint) unwinds with the
        // checkpoint durable but the tenant still resident — it stays
        // servable from memory, and the stale spill file is simply
        // overwritten by the next successful evict.
        crate::faultpoint::hit("registry.evict");
        inner.slot_mut(index).state = TenantState::Evicted;
        inner.evictions_total += 1;
        Ok(())
    }

    /// Evicts least-recently-touched tenants until the resident count is
    /// within [`RegistryConfig::max_resident`]. Poisoned tenants are never
    /// auto-evicted (their maps may be torn); they count against the ceiling
    /// until recovered.
    fn enforce_residency(&self, inner: &mut RegistryInner) -> Result<(), EngineError> {
        self.enforce_residency_attributed(inner)
            .map_err(|(_, error)| error)
    }

    /// [`enforce_residency`](Self::enforce_residency), reporting *which*
    /// tenant failed to spill — for [`TickReport::failures`].
    fn enforce_residency_attributed(
        &self,
        inner: &mut RegistryInner,
    ) -> Result<(), (TenantId, EngineError)> {
        let max = self.config.max_resident;
        if max == 0 {
            return Ok(());
        }
        loop {
            let mut resident = 0usize;
            let mut coldest: Option<(u64, usize)> = None;
            for (index, slot) in inner.slots.iter().enumerate() {
                let Some(slot) = slot else { continue };
                let TenantState::Resident { trainer, .. } = &slot.state else {
                    continue;
                };
                resident += 1;
                if trainer.is_poisoned() {
                    continue; // not evictable
                }
                if coldest
                    .map(|(touch, _)| slot.last_touch < touch)
                    .unwrap_or(true)
                {
                    coldest = Some((slot.last_touch, index));
                }
            }
            if resident <= max {
                return Ok(());
            }
            let Some((_, index)) = coldest else {
                return Ok(()); // every over-ceiling tenant is poisoned
            };
            if let Err(error) = self.evict_slot(inner, index) {
                let id = inner.slot_mut(index).id.clone();
                return Err((id, error));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsom_som::BSomConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x1E6157)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bsom-registry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn duplicate_and_unknown_tenants_are_typed() {
        let mut r = rng();
        let registry = MapRegistry::new(RegistryConfig::new(EngineConfig::with_workers(1)));
        let som = BSom::new(BSomConfig::new(4, 64), &mut r);
        registry
            .create_tenant("a", som.clone(), TrainSchedule::new(10), &[])
            .unwrap();
        assert!(matches!(
            registry.create_tenant("a", som, TrainSchedule::new(10), &[]),
            Err(EngineError::DuplicateTenant { .. })
        ));
        let probe = BinaryVector::random(64, &mut r);
        assert!(matches!(
            registry.feed("nope", &probe, ObjectLabel::new(0)),
            Err(EngineError::UnknownTenant { .. })
        ));
        assert!(matches!(
            registry.classify("nope", &[probe][..]),
            Err(EngineError::UnknownTenant { .. })
        ));
        assert!(registry.contains("a"));
        assert!(!registry.contains("nope"));
        assert_eq!(registry.len(), 1);
    }

    #[test]
    fn slab_slots_are_reused_after_remove() {
        let mut r = rng();
        let registry = MapRegistry::new(RegistryConfig::new(EngineConfig::with_workers(1)));
        for i in 0u64..4 {
            let som = BSom::new(BSomConfig::new(4, 64), &mut r);
            registry
                .create_tenant(i, som, TrainSchedule::new(10), &[])
                .unwrap();
        }
        registry.remove(1u64).unwrap();
        registry.remove(2u64).unwrap();
        let before = lock_recovering(&registry.inner).slots.len();
        for i in 10u64..12 {
            let som = BSom::new(BSomConfig::new(4, 64), &mut r);
            registry
                .create_tenant(i, som, TrainSchedule::new(10), &[])
                .unwrap();
        }
        let after = lock_recovering(&registry.inner).slots.len();
        assert_eq!(before, after, "freed slab slots are reused, not appended");
        assert_eq!(registry.len(), 4);
    }

    #[test]
    fn evict_requires_a_spill_dir() {
        let mut r = rng();
        let registry = MapRegistry::new(RegistryConfig::new(EngineConfig::with_workers(1)));
        let som = BSom::new(BSomConfig::new(4, 64), &mut r);
        registry
            .create_tenant("a", som, TrainSchedule::new(10), &[])
            .unwrap();
        assert!(matches!(
            registry.evict("a"),
            Err(EngineError::SpillUnconfigured)
        ));
    }

    #[test]
    #[should_panic(expected = "spill_dir")]
    fn max_resident_without_spill_dir_panics() {
        let _ = MapRegistry::new(
            RegistryConfig::new(EngineConfig::with_workers(1)).with_max_resident(2),
        );
    }

    #[test]
    fn lru_eviction_spills_the_coldest_tenant_and_reload_serves_it() {
        let mut r = rng();
        let dir = temp_dir("lru");
        let registry = MapRegistry::new(
            RegistryConfig::new(EngineConfig::with_workers(1))
                .with_max_resident(2)
                .with_spill_dir(&dir),
        );
        let data: Vec<(BinaryVector, ObjectLabel)> = (0..4)
            .map(|i| (BinaryVector::random(64, &mut r), ObjectLabel::new(i % 2)))
            .collect();
        for i in 0u64..2 {
            let som = BSom::new(BSomConfig::new(4, 64), &mut r);
            registry
                .create_tenant(i, som, TrainSchedule::new(10), &data)
                .unwrap();
        }
        // Touch tenant 1 so tenant 0 is coldest, then create a third.
        registry.feed(1u64, &data[0].0, data[0].1).unwrap();
        let som = BSom::new(BSomConfig::new(4, 64), &mut r);
        registry
            .create_tenant(2u64, som, TrainSchedule::new(10), &data)
            .unwrap();
        assert!(!registry.is_resident(0u64).unwrap(), "coldest was spilled");
        assert!(registry.is_resident(1u64).unwrap());
        assert!(registry.is_resident(2u64).unwrap());
        assert_eq!(registry.stats().evictions_total, 1);
        // Classifying the evicted tenant reloads it transparently...
        let version_before = registry.version(0u64).unwrap();
        let verdicts = registry.classify(0u64, &[data[0].0.clone()][..]).unwrap();
        assert_eq!(verdicts.len(), 1);
        // ...at the same published version (the round trip is invisible)...
        assert_eq!(registry.version(0u64).unwrap(), version_before);
        assert_eq!(registry.stats().reloads_total, 1);
        // ...and the ceiling pushed someone else out in its place? No —
        // reloading via classify does not enforce the ceiling; the next
        // create or tick does. All three may be momentarily resident.
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn train_tick_budget_is_shared_fairly_round_robin() {
        let mut r = rng();
        let registry = MapRegistry::new(RegistryConfig::new(EngineConfig::with_workers(1)));
        let signature = BinaryVector::random(64, &mut r);
        for i in 0u64..3 {
            let som = BSom::new(BSomConfig::new(4, 64), &mut r);
            registry
                .create_tenant(i, som, TrainSchedule::new(100), &[])
                .unwrap();
            for _ in 0..10 {
                registry.feed(i, &signature, ObjectLabel::new(0)).unwrap();
            }
        }
        // Budget 7 over 3 tenants: rotations give 3 + 3 + 1 steps, so the
        // per-tenant split is (3, 2, 2) — never (7, 0, 0).
        let report = registry.train_tick(7);
        assert_eq!(report.steps, 7);
        assert_eq!(report.tenants_trained, 3);
        assert!(report.failures.is_empty());
        let stats = registry.stats();
        assert_eq!(stats.pending_steps, 30 - 7);
        assert_eq!(stats.steps_total, 7);
        // The next tick resumes the rotation where this one stopped: after
        // 23 more steps every queue is empty.
        let report = registry.train_tick(1_000);
        assert_eq!(report.steps, 23);
        assert_eq!(registry.stats().pending_steps, 0);
        // A tick over empty queues is a no-op.
        let report = registry.train_tick(1_000);
        assert_eq!(report.steps, 0);
        assert_eq!(report.tenants_trained, 0);
    }

    #[test]
    fn drain_tenant_flushes_everything_and_publishes() {
        let mut r = rng();
        let registry = MapRegistry::new(RegistryConfig::new(EngineConfig::with_workers(1)));
        let som = BSom::new(BSomConfig::new(4, 64), &mut r);
        registry
            .create_tenant("t", som, TrainSchedule::new(100), &[])
            .unwrap();
        let signature = BinaryVector::random(64, &mut r);
        for _ in 0..5 {
            registry.feed("t", &signature, ObjectLabel::new(1)).unwrap();
        }
        let (steps, version) = registry.drain_tenant("t").unwrap();
        assert_eq!(steps, 5);
        assert_eq!(version, 2, "v1 at create + the drain publish");
        assert_eq!(registry.version("t").unwrap(), 2);
        assert_eq!(registry.stats().pending_steps, 0);
    }
}
