//! Engine-vs-scalar throughput, compared against the FPGA cycle model.
//!
//! The paper's §V-F claim is 25,000 recognitions per second at 40 MHz. This
//! module measures the software side of the same question three ways —
//! the single-signature loop ([`bsom_som::SelfOrganizingMap::winner`]), the
//! single-threaded batched winner search ([`bsom_som::PackedLayer`]), and a
//! sharded [`crate::Recognizer`] over a [`SomService`] — and places the
//! results next to the patterns-per-second figure that
//! [`bsom_fpga::throughput`] derives from simulated cycle counts, so the
//! "faster than the hardware allows?" question has one mechanical answer.

use std::time::{Duration, Instant};

use bsom_fpga::throughput::{recognition_throughput, ThroughputReport};
use bsom_fpga::FpgaConfig;
use bsom_signature::BinaryVector;
use bsom_som::{BSom, SelfOrganizingMap};
use serde::{Deserialize, Serialize};

use crate::SomService;

/// One wall-clock throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredThroughput {
    /// Signatures classified per second.
    pub patterns_per_second: f64,
    /// Seconds per signature.
    pub seconds_per_pattern: f64,
    /// How many passes over the batch the figure was averaged over.
    pub rounds: usize,
}

impl MeasuredThroughput {
    /// Derives a throughput figure from `rounds` passes over a batch of
    /// `batch_size` signatures taking `elapsed` in total.
    pub(crate) fn from_elapsed(batch_size: usize, rounds: usize, elapsed: Duration) -> Self {
        let patterns = (batch_size * rounds) as f64;
        let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
        MeasuredThroughput {
            patterns_per_second: patterns / secs,
            seconds_per_pattern: secs / patterns.max(1.0),
            rounds,
        }
    }
}

/// The three software measurements next to the FPGA cycle-model figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputComparison {
    /// Number of signatures in the measured batch.
    pub batch_size: usize,
    /// Scalar per-neuron winner loop, single thread.
    pub scalar: MeasuredThroughput,
    /// Plane-sliced batched winner search, single thread.
    pub batched: MeasuredThroughput,
    /// The sharded engine (batched search on every worker).
    pub engine: MeasuredThroughput,
    /// The FPGA cycle model's recognition throughput (§V-F derivation).
    pub fpga: ThroughputReport,
}

impl ThroughputComparison {
    /// Speed-up of the single-threaded batched search over the scalar loop —
    /// the pure effect of the plane-sliced layout.
    pub fn batched_speedup_over_scalar(&self) -> f64 {
        self.batched.patterns_per_second / self.scalar.patterns_per_second
    }

    /// Speed-up of the sharded engine over the scalar loop — layout plus
    /// multi-core sharding.
    pub fn engine_speedup_over_scalar(&self) -> f64 {
        self.engine.patterns_per_second / self.scalar.patterns_per_second
    }

    /// Ratio of engine throughput to the FPGA cycle model's figure; above
    /// 1.0 the software engine outruns the modelled hardware.
    pub fn engine_vs_fpga(&self) -> f64 {
        self.engine.patterns_per_second / self.fpga.patterns_per_second
    }
}

impl std::fmt::Display for ThroughputComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "recognition throughput (batch of {})", self.batch_size)?;
        writeln!(
            f,
            "  scalar loop   {:>12.0} signatures/s",
            self.scalar.patterns_per_second
        )?;
        writeln!(
            f,
            "  batched (1T)  {:>12.0} signatures/s  ({:.2}x scalar)",
            self.batched.patterns_per_second,
            self.batched_speedup_over_scalar()
        )?;
        writeln!(
            f,
            "  engine        {:>12.0} signatures/s  ({:.2}x scalar)",
            self.engine.patterns_per_second,
            self.engine_speedup_over_scalar()
        )?;
        write!(
            f,
            "  fpga model    {:>12.0} signatures/s  (engine = {:.2}x fpga)",
            self.fpga.patterns_per_second,
            self.engine_vs_fpga()
        )
    }
}

/// Times `work` (one full pass over the batch per call) repeatedly until
/// `min_duration` of wall clock has been spent, returning the averaged
/// throughput.
pub(crate) fn measure<F: FnMut()>(
    batch_size: usize,
    min_duration: Duration,
    mut work: F,
) -> MeasuredThroughput {
    // One untimed warm-up pass (page in the weights, fill the pool queues).
    work();
    let start = Instant::now();
    let mut rounds = 0usize;
    loop {
        work();
        rounds += 1;
        if start.elapsed() >= min_duration {
            break;
        }
    }
    MeasuredThroughput::from_elapsed(batch_size, rounds, start.elapsed())
}

/// Large-map (1000+-neuron) cost model: the copy-on-write publish against
/// the deep re-pack it replaced, and the tournament winner search against
/// the linear reduction — the two scaling mechanisms of DESIGN.md
/// §"Copy-on-write publication and the tournament WTA", measured at the
/// ROADMAP's scale target so `bench_report --check` can gate them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LargeMapThroughputComparison {
    /// Neurons in the measured map.
    pub neurons: usize,
    /// Bits per weight vector.
    pub vector_len: usize,
    /// Copy-on-write publishes per second, each preceded by one training
    /// step (so every publish has freshly dirtied rows to copy) — the
    /// serving-path publish cost under live training.
    pub publish_under_training: MeasuredThroughput,
    /// Deep re-packs per second ([`bsom_som::PackedLayer::pack`]) — the
    /// O(map) publish cost the copy-on-write rows replaced, kept as the
    /// reference denominator.
    pub deep_repack: MeasuredThroughput,
    /// Tournament winner searches per second (the production
    /// [`bsom_som::PackedLayer::winner`] path: distance pass + sharded
    /// comparator-tree reduction).
    pub tournament_search: MeasuredThroughput,
    /// Winner searches per second with the linear-scan reduction over the
    /// same distance pass — the reference the tournament must not lose to.
    pub linear_search: MeasuredThroughput,
}

impl LargeMapThroughputComparison {
    /// Publishes-per-second advantage of train-step-plus-CoW-clone over a
    /// deep re-pack. Dimensionless, so it stays meaningful across machines.
    /// Note the numerator *includes* a full training step per publish, so
    /// this understates the pure clone advantage — deliberately: it is the
    /// end-to-end publish cadence a trainer can sustain.
    pub fn publish_speedup_over_repack(&self) -> f64 {
        self.publish_under_training.patterns_per_second
            / self.deep_repack.patterns_per_second.max(f64::MIN_POSITIVE)
    }

    /// Tournament over linear-scan search throughput. Both share the
    /// distance pass that dominates the search, so this sits near 1.0 — the
    /// gate catches a reduction that became accidentally super-linear.
    pub fn tournament_vs_linear(&self) -> f64 {
        self.tournament_search.patterns_per_second
            / self
                .linear_search
                .patterns_per_second
                .max(f64::MIN_POSITIVE)
    }
}

impl std::fmt::Display for LargeMapThroughputComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "large-map costs ({} neurons x {} bits)",
            self.neurons, self.vector_len
        )?;
        writeln!(
            f,
            "  publish (train step + CoW clone) {:>12.0} publishes/s",
            self.publish_under_training.patterns_per_second
        )?;
        writeln!(
            f,
            "  deep re-pack                     {:>12.0} publishes/s  (publish = {:.2}x)",
            self.deep_repack.patterns_per_second,
            self.publish_speedup_over_repack()
        )?;
        writeln!(
            f,
            "  tournament search                {:>12.0} searches/s",
            self.tournament_search.patterns_per_second
        )?;
        write!(
            f,
            "  linear-scan search               {:>12.0} searches/s  (tournament = {:.2}x)",
            self.linear_search.patterns_per_second,
            self.tournament_vs_linear()
        )
    }
}

/// Measures the large-map publish and winner-search costs on a map of the
/// given shape: copy-on-write publish cadence under training, the deep
/// re-pack it replaced, and tournament vs linear-scan search throughput.
/// `min_duration` is spent on **each** of the four measurements.
///
/// # Panics
///
/// Panics if `signatures` is empty or any signature length differs from
/// `config`'s vector length.
pub fn compare_large_map_throughput(
    config: bsom_som::BSomConfig,
    signatures: &[BinaryVector],
    min_duration: Duration,
    seed: u64,
) -> LargeMapThroughputComparison {
    use rand::SeedableRng;
    assert!(!signatures.is_empty(), "cannot measure an empty batch");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let neurons = config.neurons;
    let vector_len = config.vector_len;
    let mut som = BSom::new(config, &mut rng);
    // Serving-time regime: the quartered schedule has shrunk to radius 1.
    let schedule = bsom_som::TrainSchedule::new(4);
    let t = schedule.iterations - 1;

    let mut feed = signatures.iter().cycle();
    let publish_under_training = measure(1, min_duration, || {
        let input = feed.next().expect("cycle over a non-empty batch");
        som.train_step(input, t, &schedule)
            .expect("signature lengths match the map");
        std::hint::black_box(som.packed_layer().clone());
    });

    let deep_repack = measure(1, min_duration, || {
        std::hint::black_box(bsom_som::PackedLayer::pack(&som));
    });

    let layer = som.packed_layer().clone();
    let mut distances = vec![0u32; layer.neuron_count()];
    let tournament_search = measure(signatures.len(), min_duration, || {
        for s in signatures {
            std::hint::black_box(
                layer
                    .winner_with_buffer(s, &mut distances)
                    .expect("signature lengths match the layer"),
            );
        }
    });

    let linear_search = measure(signatures.len(), min_duration, || {
        for s in signatures {
            distances.fill(0);
            layer
                .distances_into(s, &mut distances)
                .expect("signature lengths match the layer");
            std::hint::black_box(bsom_signature::select_winner(
                &distances,
                layer.dont_care_counts(),
            ));
        }
    });

    LargeMapThroughputComparison {
        neurons,
        vector_len,
        publish_under_training,
        deep_repack,
        tournament_search,
        linear_search,
    }
}

/// One dispatch path's distance-pass throughput.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchFigure {
    /// The dispatch name (`scalar`, `lanes4`, `avx512`, …).
    pub dispatch: String,
    /// Distance passes (full input batches against the whole layer) per
    /// second through this lowering.
    pub throughput: MeasuredThroughput,
}

/// Per-dispatch distance-pass throughput (DESIGN.md §"Wide-lane kernels and
/// dispatch"): the same plane-sliced distance pass measured once per kernel
/// lowering the machine can run, so the report records what the SIMD
/// widening is actually worth on this CPU — and `bench_report --check` can
/// catch a lowering that silently stopped being selected or stopped being
/// fast.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatchThroughputComparison {
    /// Neurons in the measured layer.
    pub neurons: usize,
    /// Bits per weight vector.
    pub vector_len: usize,
    /// Name of the widest lowering available on this machine
    /// ([`Dispatch::detect`](bsom_signature::Dispatch::detect)).
    pub widest_dispatch: String,
    /// The scalar reference walk.
    pub scalar: MeasuredThroughput,
    /// The widest available lowering (same dispatch as `widest_dispatch`).
    pub widest: MeasuredThroughput,
    /// Every available lowering, in widening order (includes the two above).
    pub figures: Vec<DispatchFigure>,
}

impl DispatchThroughputComparison {
    /// Distance-pass speed-up of the widest lowering over the scalar walk —
    /// the raw worth of the SIMD widening on this machine.
    pub fn widest_speedup_over_scalar(&self) -> f64 {
        self.widest.patterns_per_second / self.scalar.patterns_per_second.max(f64::MIN_POSITIVE)
    }
}

impl std::fmt::Display for DispatchThroughputComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "distance-pass dispatch ({} neurons x {} bits)",
            self.neurons, self.vector_len
        )?;
        for figure in &self.figures {
            let speedup = figure.throughput.patterns_per_second
                / self.scalar.patterns_per_second.max(f64::MIN_POSITIVE);
            writeln!(
                f,
                "  {:<8} {:>12.0} passes/s  ({speedup:.2}x scalar)",
                figure.dispatch, figure.throughput.patterns_per_second
            )?;
        }
        write!(
            f,
            "  widest = {} ({:.2}x scalar)",
            self.widest_dispatch,
            self.widest_speedup_over_scalar()
        )
    }
}

/// Measures the pure plane-sliced distance pass (no WTA reduction, no
/// training) through **every** kernel lowering available on this machine,
/// at the given layer shape. `min_duration` is spent per lowering.
///
/// The pass runs through the explicit-dispatch row kernel
/// ([`bsom_signature::accumulate_masked_hamming_row_with`]) over the
/// packed layer's shared rows, so the figures isolate exactly the code the
/// wide lanes replaced; every lowering is bit-identical, so the distance
/// buffers agree across all of them by construction (and are debug-asserted
/// to).
///
/// # Panics
///
/// Panics if `signatures` is empty or a signature length differs from the
/// layer's vector length.
pub fn compare_dispatch_throughput(
    layer: &bsom_som::PackedLayer,
    signatures: &[BinaryVector],
    min_duration: Duration,
) -> DispatchThroughputComparison {
    use bsom_signature::{accumulate_masked_hamming_row_with, Dispatch};
    assert!(!signatures.is_empty(), "cannot measure an empty batch");
    let neurons = layer.neuron_count();
    let words = signatures[0].as_words().len();
    let mut distances = vec![0u32; neurons];
    let mut measure_dispatch = |dispatch: Dispatch| {
        measure(signatures.len(), min_duration, || {
            for s in signatures {
                distances.fill(0);
                for (w, &x) in s.as_words().iter().enumerate().take(words) {
                    accumulate_masked_hamming_row_with(
                        dispatch,
                        layer.value_row(w),
                        layer.care_row(w),
                        x,
                        &mut distances,
                    );
                }
                std::hint::black_box(&mut distances);
            }
        })
    };
    let figures: Vec<DispatchFigure> = Dispatch::available()
        .into_iter()
        .map(|dispatch| DispatchFigure {
            dispatch: dispatch.name().to_string(),
            throughput: measure_dispatch(dispatch),
        })
        .collect();
    let widest = Dispatch::detect();
    let figure_for = |name: &str| {
        figures
            .iter()
            .find(|figure| figure.dispatch == name)
            .expect("scalar and the detected widest lowering are always available")
            .throughput
    };
    DispatchThroughputComparison {
        neurons,
        vector_len: layer.vector_len(),
        widest_dispatch: widest.name().to_string(),
        scalar: figure_for(Dispatch::Scalar.name()),
        widest: figure_for(widest.name()),
        figures,
    }
}

/// Measures scalar / batched / engine recognition throughput on `signatures`
/// and derives the FPGA figure from `fpga_config`'s cycle model.
///
/// `som` must be the same trained map the service snapshotted, so the three
/// software paths do identical work. `min_duration` is spent on **each** of
/// the three measurements; a few tens of milliseconds already gives stable
/// relative numbers with the vendored timer.
///
/// # Panics
///
/// Panics if `signatures` is empty.
pub fn compare_recognition_throughput(
    service: &SomService,
    som: &BSom,
    signatures: &[BinaryVector],
    fpga_config: FpgaConfig,
    min_duration: Duration,
) -> ThroughputComparison {
    assert!(!signatures.is_empty(), "cannot measure an empty batch");
    let batch_size = signatures.len();

    let scalar = measure(batch_size, min_duration, || {
        for s in signatures {
            std::hint::black_box(som.winner(s).expect("signature lengths match the map"));
        }
    });

    let snapshot = service.snapshot();
    let layer = snapshot.layer();
    let mut distances = vec![0u32; layer.neuron_count()];
    let batched = measure(batch_size, min_duration, || {
        for s in signatures {
            std::hint::black_box(
                layer
                    .winner_with_buffer(s, &mut distances)
                    .expect("signature lengths match the layer"),
            );
        }
    });

    let mut recognizer = service.recognizer();
    let shared = std::sync::Arc::new(signatures.to_vec());
    let engine_measured = measure(batch_size, min_duration, || {
        std::hint::black_box(recognizer.classify_batch(&shared));
    });

    ThroughputComparison {
        batch_size,
        scalar,
        batched,
        engine: engine_measured,
        fpga: recognition_throughput(fpga_config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineConfig;
    use bsom_som::{BSomConfig, LabelledSom, ObjectLabel, TrainSchedule};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn comparison_produces_positive_figures_and_renders() {
        let mut r = StdRng::seed_from_u64(0x7412);
        let data: Vec<(BinaryVector, ObjectLabel)> = (0..4)
            .map(|i| (BinaryVector::random(768, &mut r), ObjectLabel::new(i)))
            .collect();
        let mut som = BSom::new(BSomConfig::paper_default(), &mut r);
        som.train_labelled_data(&data, TrainSchedule::new(2), &mut r)
            .unwrap();
        let classifier = LabelledSom::label(som.clone(), &data);
        let service = SomService::serve(&classifier, EngineConfig::with_workers(2));
        let batch: Vec<BinaryVector> = (0..64).map(|_| BinaryVector::random(768, &mut r)).collect();

        let comparison = compare_recognition_throughput(
            &service,
            &som,
            &batch,
            FpgaConfig::paper_default(),
            Duration::from_millis(20),
        );
        assert_eq!(comparison.batch_size, 64);
        assert!(comparison.scalar.patterns_per_second > 0.0);
        assert!(comparison.batched.patterns_per_second > 0.0);
        assert!(comparison.engine.patterns_per_second > 0.0);
        assert!(comparison.fpga.patterns_per_second > 0.0);
        assert!(comparison.scalar.rounds >= 1);
        let text = comparison.to_string();
        assert!(text.contains("scalar loop"));
        assert!(text.contains("fpga model"));
        let json = serde_json::to_string(&comparison).unwrap();
        assert!(json.contains("patterns_per_second"));
    }

    #[test]
    fn large_map_comparison_produces_positive_figures_and_renders() {
        let mut r = StdRng::seed_from_u64(0x1024);
        // A scaled-down shape keeps the unit test fast; the committed
        // BENCH_large_map.json uses the full 1024 x 768.
        let batch: Vec<BinaryVector> = (0..16).map(|_| BinaryVector::random(256, &mut r)).collect();
        let comparison = compare_large_map_throughput(
            BSomConfig::new(128, 256),
            &batch,
            Duration::from_millis(10),
            0x1024,
        );
        assert_eq!(comparison.neurons, 128);
        assert_eq!(comparison.vector_len, 256);
        assert!(comparison.publish_under_training.patterns_per_second > 0.0);
        assert!(comparison.deep_repack.patterns_per_second > 0.0);
        assert!(comparison.tournament_search.patterns_per_second > 0.0);
        assert!(comparison.linear_search.patterns_per_second > 0.0);
        assert!(comparison.publish_speedup_over_repack() > 0.0);
        assert!(comparison.tournament_vs_linear() > 0.0);
        let text = comparison.to_string();
        assert!(text.contains("tournament search"));
        assert!(text.contains("deep re-pack"));
        let json = serde_json::to_string(&comparison).unwrap();
        assert!(json.contains("publish_under_training"));
    }

    #[test]
    fn dispatch_comparison_covers_every_available_lowering_and_renders() {
        let mut r = StdRng::seed_from_u64(0xD15B);
        // A scaled-down shape keeps the unit test fast; the committed
        // BENCH_recognition.json uses the full 1024 x 768.
        let som = BSom::new(BSomConfig::new(96, 200), &mut r);
        let batch: Vec<BinaryVector> = (0..8).map(|_| BinaryVector::random(200, &mut r)).collect();
        let comparison =
            compare_dispatch_throughput(som.packed_layer(), &batch, Duration::from_millis(5));
        assert_eq!(comparison.neurons, 96);
        assert_eq!(comparison.vector_len, 200);
        let available = bsom_signature::Dispatch::available();
        assert_eq!(comparison.figures.len(), available.len());
        for (figure, dispatch) in comparison.figures.iter().zip(&available) {
            assert_eq!(figure.dispatch, dispatch.name());
            assert!(figure.throughput.patterns_per_second > 0.0);
            assert!(figure.throughput.rounds >= 1);
        }
        assert_eq!(
            comparison.widest_dispatch,
            bsom_signature::Dispatch::detect().name()
        );
        assert!(comparison.scalar.patterns_per_second > 0.0);
        assert!(comparison.widest.patterns_per_second > 0.0);
        assert!(comparison.widest_speedup_over_scalar() > 0.0);
        let text = comparison.to_string();
        assert!(text.contains("scalar"));
        assert!(text.contains("widest ="));
        let json = serde_json::to_string(&comparison).unwrap();
        let back: DispatchThroughputComparison = serde_json::from_str(&json).unwrap();
        assert_eq!(back, comparison);
    }

    // Wall-clock assertion: sound in release on an idle machine, but timing
    // noise under a loaded CI runner (or the dev profile) can flip it with no
    // code defect, so it is opt-in. `benches/engine_batch.rs` measures the
    // same claim on every bench run; run this directly with
    // `cargo test -p bsom-engine --release -- --ignored`.
    #[test]
    #[ignore = "wall-clock perf assertion; covered by the engine_batch bench"]
    fn batched_layout_beats_the_scalar_loop_on_the_paper_configuration() {
        // The acceptance-criterion micro-check: 40 neurons x 768 bits, the
        // plane-sliced search must not be slower than the per-neuron loop.
        let mut r = StdRng::seed_from_u64(0xFA57);
        let data: Vec<(BinaryVector, ObjectLabel)> = (0..4)
            .map(|i| (BinaryVector::random(768, &mut r), ObjectLabel::new(i)))
            .collect();
        let mut som = BSom::new(BSomConfig::paper_default(), &mut r);
        som.train_labelled_data(&data, TrainSchedule::new(2), &mut r)
            .unwrap();
        let classifier = LabelledSom::label(som.clone(), &data);
        let service = SomService::serve(&classifier, EngineConfig::with_workers(2));
        let batch: Vec<BinaryVector> = (0..256)
            .map(|_| BinaryVector::random(768, &mut r))
            .collect();
        let comparison = compare_recognition_throughput(
            &service,
            &som,
            &batch,
            FpgaConfig::paper_default(),
            Duration::from_millis(60),
        );
        assert!(
            comparison.batched_speedup_over_scalar() > 1.0,
            "plane-sliced batch search should beat the scalar loop, got {:.2}x",
            comparison.batched_speedup_over_scalar()
        );
    }
}
