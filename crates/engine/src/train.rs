//! The pre-service training loop ([`TrainEngine`], deprecated) and the
//! bit-serial-vs-word-parallel throughput comparison that tracks the
//! speedup of the training datapath.
//!
//! New code should hold a [`crate::Trainer`] from
//! [`crate::SomService::train_while_serve`]: it runs the same word-parallel
//! epoch loop *and* publishes serving snapshots as it goes. [`TrainEngine`]
//! remains as a thin offline wrapper — an owned, resumable epoch loop whose
//! [`finish`](TrainEngine::finish) hands the trained map to a frozen
//! serving view. [`compare_training_throughput`] measures the plane-sliced
//! window path [`SelfOrganizingMap::train_step`] against both retained
//! references — the per-neuron word-parallel path
//! ([`BSom::train_step_per_neuron`]) and the bit-serial path
//! ([`BSom::train_step_bit_serial`]) — under identical seeds and data,
//! which are the numbers `BENCH_train.json` and the `train_throughput` /
//! `neighbourhood_update` benches track across PRs.

use std::time::Duration;

use bsom_signature::BinaryVector;
use bsom_som::som_trait::shuffle;
use bsom_som::{
    BSom, BSomConfig, LabelledSom, ObjectLabel, SelfOrganizingMap, SomError, TrainSchedule,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::throughput::{measure, MeasuredThroughput};
use crate::EngineConfig;
#[allow(deprecated)]
use crate::RecognitionEngine;

/// Rebuilds `order` as the identity permutation and shuffles it — one
/// epoch's presentation order. Re-initializing from the identity (rather
/// than shuffling the previous permutation in place) keeps a training run
/// split across calls bit-identical to a one-shot run with the same RNG
/// stream. Shared by [`TrainEngine`] and [`crate::Trainer`].
pub(crate) fn fresh_shuffled_order<R: Rng + ?Sized>(order: &mut [usize], rng: &mut R) {
    for (i, slot) in order.iter_mut().enumerate() {
        *slot = i;
    }
    shuffle(order, rng);
}

/// One completed [`TrainEngine::train_epochs`] call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Epochs run by this call (full shuffled passes over the data).
    pub epochs: usize,
    /// Training steps (pattern presentations) run by this call.
    pub steps: u64,
    /// Wall-clock seconds the call took.
    pub seconds: f64,
    /// Steps per second over the call.
    pub steps_per_second: f64,
}

/// An owned, resumable epoch loop over the word-parallel bSOM trainer.
///
/// The engine tracks how many epochs of its schedule have run, so the
/// shrinking neighbourhood of [`TrainSchedule`] continues correctly across
/// calls — train a few epochs, evaluate, train more, then
/// [`finish`](Self::finish) into a serving snapshot.
///
/// # Examples
///
/// ```rust
/// use bsom_engine::TrainEngine;
/// use bsom_signature::BinaryVector;
/// use bsom_som::{BSom, BSomConfig, SelfOrganizingMap, TrainSchedule};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), bsom_som::SomError> {
/// # #![allow(deprecated)]
/// let mut rng = StdRng::seed_from_u64(7);
/// let som = BSom::new(BSomConfig::new(8, 64), &mut rng);
/// let data: Vec<BinaryVector> = (0..4).map(|_| BinaryVector::random(64, &mut rng)).collect();
/// let mut engine = TrainEngine::new(som, TrainSchedule::new(20));
/// let report = engine.train_epochs(&data, 20, &mut rng)?;
/// assert_eq!(report.steps, 80); // 20 epochs x 4 patterns
/// assert_eq!(engine.epochs_run(), 20);
/// # Ok(())
/// # }
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use SomService::train_while_serve and the Trainer handle, which \
            additionally publishes serving snapshots as training proceeds"
)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainEngine {
    som: BSom,
    schedule: TrainSchedule,
    epochs_run: usize,
    steps_run: u64,
}

#[allow(deprecated)]
impl TrainEngine {
    /// Wraps a map and the schedule its training will follow.
    pub fn new(som: BSom, schedule: TrainSchedule) -> Self {
        TrainEngine {
            som,
            schedule,
            epochs_run: 0,
            steps_run: 0,
        }
    }

    /// The map in its current training state.
    pub fn som(&self) -> &BSom {
        &self.som
    }

    /// The schedule the epoch loop follows.
    pub fn schedule(&self) -> &TrainSchedule {
        &self.schedule
    }

    /// Epochs of the schedule completed so far.
    pub fn epochs_run(&self) -> usize {
        self.epochs_run
    }

    /// Training steps (pattern presentations) completed so far.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// Runs `epochs` full shuffled passes over `data` through the
    /// word-parallel trainer, continuing the schedule from where the last
    /// call stopped. Epochs beyond the schedule's budget keep the final
    /// (radius-1) neighbourhood, matching how
    /// [`NeighbourhoodSchedule`](bsom_som::NeighbourhoodSchedule) clamps.
    ///
    /// # Errors
    ///
    /// Returns [`SomError::EmptyTrainingSet`] for empty `data` and
    /// propagates [`SomError::InputLengthMismatch`] from mismatched
    /// patterns.
    pub fn train_epochs<R: Rng + ?Sized>(
        &mut self,
        data: &[BinaryVector],
        epochs: usize,
        rng: &mut R,
    ) -> Result<TrainReport, SomError> {
        if data.is_empty() {
            return Err(SomError::EmptyTrainingSet);
        }
        let start = std::time::Instant::now();
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut steps = 0u64;
        for _ in 0..epochs {
            crate::train::fresh_shuffled_order(&mut order, rng);
            let t = self.epochs_run;
            for &idx in &order {
                self.som.train_step(&data[idx], t, &self.schedule)?;
                steps += 1;
                // Counted per step, not per call, so a mid-run error (e.g.
                // one wrong-length pattern) leaves the counter covering the
                // updates that really happened.
                self.steps_run += 1;
            }
            self.epochs_run += 1;
        }
        let seconds = start.elapsed().as_secs_f64();
        Ok(TrainReport {
            epochs,
            steps,
            seconds,
            steps_per_second: steps as f64 / seconds.max(f64::MIN_POSITIVE),
        })
    }

    /// Runs the remainder of the schedule (no-op if the budget is spent).
    ///
    /// # Errors
    ///
    /// As for [`train_epochs`](Self::train_epochs).
    pub fn train_to_completion<R: Rng + ?Sized>(
        &mut self,
        data: &[BinaryVector],
        rng: &mut R,
    ) -> Result<TrainReport, SomError> {
        let remaining = self.schedule.iterations.saturating_sub(self.epochs_run);
        self.train_epochs(data, remaining, rng)
    }

    /// Consumes the trainer: labels the map by win frequency over
    /// `labelled_data` and snapshots it into a serving
    /// [`RecognitionEngine`].
    pub fn finish(
        self,
        labelled_data: &[(BinaryVector, ObjectLabel)],
        config: EngineConfig,
    ) -> RecognitionEngine {
        let classifier = LabelledSom::label(self.som, labelled_data);
        RecognitionEngine::new(&classifier, config)
    }

    /// Gives the trained map back without snapshotting.
    pub fn into_som(self) -> BSom {
        self.som
    }
}

/// The three training datapaths under identical seeds: bit-serial reference,
/// per-neuron word-parallel (PR 3/4), and the plane-sliced neighbourhood
/// window path that [`SelfOrganizingMap::train_step`] runs in production.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainThroughputComparison {
    /// Neurons in the measured configuration.
    pub neurons: usize,
    /// Vector length in bits.
    pub vector_len: usize,
    /// Patterns per epoch (the measured batch).
    pub patterns: usize,
    /// Neighbourhood radius held constant across the measurement (the
    /// paper's maximum, 4, unless overridden) — the window speedup grows
    /// with the radius, so the figure is meaningless without it.
    pub radius: usize,
    /// The bit-serial reference path ([`BSom::train_step_bit_serial`]).
    pub bit_serial: MeasuredThroughput,
    /// The per-neuron word-parallel path
    /// ([`BSom::train_step_per_neuron`]) — masks re-drawn per neuron.
    pub per_neuron: MeasuredThroughput,
    /// The plane-sliced window path ([`SelfOrganizingMap::train_step`]) —
    /// one broadcast mask stream across the neighbourhood address window.
    pub window: MeasuredThroughput,
}

impl TrainThroughputComparison {
    /// Speed-up of the production (window) train step over the bit-serial
    /// reference.
    pub fn speedup(&self) -> f64 {
        self.window.patterns_per_second / self.bit_serial.patterns_per_second
    }

    /// Speed-up of the plane-sliced window path over the per-neuron
    /// word-parallel path — the acceptance number of the neighbourhood
    /// broadcast update (≥ 2x at radius ≥ 2 on the paper shape).
    pub fn window_speedup(&self) -> f64 {
        self.window.patterns_per_second / self.per_neuron.patterns_per_second
    }
}

impl std::fmt::Display for TrainThroughputComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "training throughput ({} neurons x {} bits, {} patterns/epoch, radius {})",
            self.neurons, self.vector_len, self.patterns, self.radius
        )?;
        writeln!(
            f,
            "  bit-serial     {:>12.0} steps/s",
            self.bit_serial.patterns_per_second
        )?;
        writeln!(
            f,
            "  per-neuron     {:>12.0} steps/s  ({:.2}x bit-serial)",
            self.per_neuron.patterns_per_second,
            self.per_neuron.patterns_per_second / self.bit_serial.patterns_per_second
        )?;
        write!(
            f,
            "  window         {:>12.0} steps/s  ({:.2}x bit-serial, {:.2}x per-neuron)",
            self.window.patterns_per_second,
            self.speedup(),
            self.window_speedup()
        )
    }
}

/// Measures the three training datapaths' steps-per-second on the given
/// configuration and data, at the paper's maximum neighbourhood radius (4).
///
/// All paths start from **identically seeded clones** of the same map and
/// repeatedly sweep `data` in index order (training keeps mutating the map,
/// as in a real run, so the figure reflects steady-state trainer cost, not
/// the cost on frozen weights). `min_duration` of wall clock is spent on
/// each path. One *step* is one pattern presentation — winner search plus
/// neighbourhood update.
///
/// # Panics
///
/// Panics if `data` is empty or a pattern length disagrees with `config`.
pub fn compare_training_throughput(
    config: BSomConfig,
    data: &[BinaryVector],
    min_duration: Duration,
    seed: u64,
) -> TrainThroughputComparison {
    compare_training_throughput_at_radius(config, data, min_duration, seed, 4)
}

/// [`compare_training_throughput`] with an explicit constant neighbourhood
/// radius — the window path's advantage over the per-neuron path scales
/// with the window width, so benches sweep this.
///
/// # Panics
///
/// As for [`compare_training_throughput`].
pub fn compare_training_throughput_at_radius(
    config: BSomConfig,
    data: &[BinaryVector],
    min_duration: Duration,
    seed: u64,
    radius: usize,
) -> TrainThroughputComparison {
    assert!(!data.is_empty(), "cannot measure an empty training set");
    use bsom_som::NeighbourhoodSchedule;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let som = BSom::new(config, &mut rng);
    // Hold the radius fixed so every measured step updates the same window
    // width.
    let schedule = TrainSchedule::new(usize::MAX)
        .with_neighbourhood(NeighbourhoodSchedule::Constant { radius });
    let epoch = data.len();

    let mut serial = som.clone();
    let mut t = 0usize;
    let bit_serial = measure(epoch, min_duration, || {
        for input in data {
            std::hint::black_box(
                serial
                    .train_step_bit_serial(input, t, &schedule)
                    .expect("pattern lengths match the config"),
            );
        }
        t += 1;
    });

    let mut neuron_wise = som.clone();
    let mut t = 0usize;
    let per_neuron = measure(epoch, min_duration, || {
        for input in data {
            std::hint::black_box(
                neuron_wise
                    .train_step_per_neuron(input, t, &schedule)
                    .expect("pattern lengths match the config"),
            );
        }
        t += 1;
    });

    let mut windowed = som;
    let mut t = 0usize;
    let window = measure(epoch, min_duration, || {
        for input in data {
            std::hint::black_box(
                windowed
                    .train_step(input, t, &schedule)
                    .expect("pattern lengths match the config"),
            );
        }
        t += 1;
    });

    TrainThroughputComparison {
        neurons: config.neurons,
        vector_len: config.vector_len,
        patterns: epoch,
        radius,
        bit_serial,
        per_neuron,
        window,
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use bsom_som::Prediction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x7121A)
    }

    #[test]
    fn train_epochs_advances_the_schedule_and_counts_steps() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(8, 64), &mut r);
        let data: Vec<BinaryVector> = (0..6).map(|_| BinaryVector::random(64, &mut r)).collect();
        let mut engine = TrainEngine::new(som, TrainSchedule::new(10));
        let first = engine.train_epochs(&data, 4, &mut r).unwrap();
        assert_eq!(first.epochs, 4);
        assert_eq!(first.steps, 24);
        assert_eq!(engine.epochs_run(), 4);
        let rest = engine.train_to_completion(&data, &mut r).unwrap();
        assert_eq!(rest.epochs, 6);
        assert_eq!(engine.epochs_run(), 10);
        assert_eq!(engine.steps_run(), 60);
        assert!(first.steps_per_second > 0.0);
    }

    #[test]
    fn split_training_matches_one_shot_training_deterministically() {
        // Same construction seed + same epoch RNG stream => identical maps,
        // whether the epochs run in one call or two.
        let mut build = rng();
        let som = BSom::new(BSomConfig::new(8, 96), &mut build);
        let data: Vec<BinaryVector> = (0..5)
            .map(|_| BinaryVector::random(96, &mut build))
            .collect();

        let mut one_rng = StdRng::seed_from_u64(42);
        let mut one = TrainEngine::new(som.clone(), TrainSchedule::new(8));
        one.train_epochs(&data, 8, &mut one_rng).unwrap();

        let mut two_rng = StdRng::seed_from_u64(42);
        let mut two = TrainEngine::new(som, TrainSchedule::new(8));
        two.train_epochs(&data, 3, &mut two_rng).unwrap();
        two.train_epochs(&data, 5, &mut two_rng).unwrap();

        assert_eq!(one.som(), two.som());
    }

    #[test]
    fn empty_training_set_errors() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(4, 32), &mut r);
        let mut engine = TrainEngine::new(som, TrainSchedule::new(5));
        assert_eq!(
            engine.train_epochs(&[], 3, &mut r),
            Err(SomError::EmptyTrainingSet)
        );
    }

    #[test]
    fn finish_produces_a_serving_engine() {
        let mut r = rng();
        let patterns: Vec<BinaryVector> =
            (0..4).map(|_| BinaryVector::random(96, &mut r)).collect();
        let labelled: Vec<(BinaryVector, ObjectLabel)> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), ObjectLabel::new(i % 2)))
            .collect();
        let som = BSom::new(BSomConfig::new(8, 96), &mut r);
        let mut trainer = TrainEngine::new(som, TrainSchedule::new(30));
        trainer.train_epochs(&patterns, 30, &mut r).unwrap();
        let engine = trainer.finish(&labelled, EngineConfig::with_workers(2));
        let predictions = engine.classify_batch(&patterns);
        for (pattern, prediction) in labelled.iter().zip(&predictions) {
            assert_eq!(
                prediction.label(),
                Some(pattern.1),
                "trained engine must recall its own training patterns"
            );
            assert!(matches!(prediction, Prediction::Known { .. }));
        }
    }

    #[test]
    fn into_som_returns_the_trained_map() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(4, 32), &mut r);
        let data: Vec<BinaryVector> = (0..3).map(|_| BinaryVector::random(32, &mut r)).collect();
        let mut trainer = TrainEngine::new(som, TrainSchedule::new(4));
        trainer.train_epochs(&data, 4, &mut r).unwrap();
        let trained = trainer.into_som();
        assert_eq!(trained.neuron_count(), 4);
    }

    #[test]
    fn serde_roundtrip_preserves_progress() {
        let mut r = rng();
        let som = BSom::new(BSomConfig::new(4, 32), &mut r);
        let data: Vec<BinaryVector> = (0..3).map(|_| BinaryVector::random(32, &mut r)).collect();
        let mut trainer = TrainEngine::new(som, TrainSchedule::new(6));
        trainer.train_epochs(&data, 2, &mut r).unwrap();
        let json = serde_json::to_string(&trainer).unwrap();
        let back: TrainEngine = serde_json::from_str(&json).unwrap();
        assert_eq!(trainer, back);
        assert_eq!(back.epochs_run(), 2);
    }

    #[test]
    fn comparison_produces_positive_figures_and_renders() {
        let mut r = rng();
        let data: Vec<BinaryVector> = (0..8).map(|_| BinaryVector::random(768, &mut r)).collect();
        let comparison = compare_training_throughput(
            BSomConfig::paper_default(),
            &data,
            Duration::from_millis(20),
            0xB50A,
        );
        assert_eq!(comparison.neurons, 40);
        assert_eq!(comparison.vector_len, 768);
        assert_eq!(comparison.patterns, 8);
        assert_eq!(comparison.radius, 4);
        assert!(comparison.bit_serial.patterns_per_second > 0.0);
        assert!(comparison.per_neuron.patterns_per_second > 0.0);
        assert!(comparison.window.patterns_per_second > 0.0);
        assert!(comparison.speedup() > 0.0);
        assert!(comparison.window_speedup() > 0.0);
        let text = comparison.to_string();
        assert!(text.contains("bit-serial"));
        assert!(text.contains("per-neuron"));
        assert!(text.contains("window"));
        let json = serde_json::to_string(&comparison).unwrap();
        assert!(json.contains("per_neuron"));
        assert!(json.contains("window"));
    }

    // Wall-clock assertion mirroring the 5x test below for the tentpole
    // acceptance: opt-in for the same CI-noise reasons. Run with
    // `cargo test -p bsom-engine --release -- --ignored`.
    #[test]
    #[ignore = "wall-clock perf assertion; covered by the neighbourhood_update bench"]
    fn window_trainer_is_at_least_2x_the_per_neuron_baseline_at_radius_2() {
        let mut r = rng();
        let data: Vec<BinaryVector> = (0..32).map(|_| BinaryVector::random(768, &mut r)).collect();
        let comparison = compare_training_throughput_at_radius(
            BSomConfig::paper_default(),
            &data,
            Duration::from_millis(150),
            0xB50A,
            2,
        );
        assert!(
            comparison.window_speedup() >= 2.0,
            "window trainer should be >= 2x per-neuron at radius 2, got {:.2}x",
            comparison.window_speedup()
        );
    }

    // Wall-clock assertion: sound in release on an idle machine but noisy on
    // a loaded CI runner or under the dev profile, so opt-in, mirroring the
    // recognition-side policy. Run with
    // `cargo test -p bsom-engine --release -- --ignored`.
    #[test]
    #[ignore = "wall-clock perf assertion; covered by the train_throughput bench"]
    fn word_parallel_trainer_is_at_least_5x_the_bit_serial_baseline() {
        let mut r = rng();
        let data: Vec<BinaryVector> = (0..32).map(|_| BinaryVector::random(768, &mut r)).collect();
        let comparison = compare_training_throughput(
            BSomConfig::paper_default(),
            &data,
            Duration::from_millis(150),
            0xB50A,
        );
        assert!(
            comparison.speedup() >= 5.0,
            "word-parallel trainer should be >= 5x bit-serial, got {:.2}x",
            comparison.speedup()
        );
    }
}
