//! Typed errors for the fault-tolerant service layer.
//!
//! DESIGN.md §"Fault model and recovery" draws the line this module encodes:
//! conditions a caller can meaningfully react to (shed load, retry, restore a
//! checkpoint) are typed [`EngineError`] variants, while true invariants of
//! the engine's own construction stay `expect`s with a rationale message.

use std::error::Error;
use std::fmt;

use bsom_som::SomError;

use crate::checkpoint::CheckpointError;

/// Errors the service layer reports instead of panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// The bounded job queue was full when a shed-load classify tried to
    /// submit a shard ([`Recognizer::try_classify_batch`]): the service is
    /// saturated and this batch was rejected rather than queued without
    /// bound. Already-submitted shards of the batch still complete (workers
    /// cannot be recalled) but their replies are discarded.
    ///
    /// [`Recognizer::try_classify_batch`]: crate::Recognizer::try_classify_batch
    Overloaded {
        /// Capacity of the bounded job queue.
        queue_capacity: usize,
        /// Jobs queued (submitted, not yet picked up) at rejection time.
        queue_depth: usize,
    },
    /// The worker pool's job queue has shut down — only possible while the
    /// owning service is mid-drop, so a live handle should never observe it.
    PoolShutDown,
    /// A training step panicked inside [`Trainer::try_feed`]. The panic was
    /// contained, but the map may hold a torn (half-applied) update, so the
    /// trainer poisons itself: recovery is a fresh trainer via
    /// [`SomService::resume_from_checkpoint`]. The service keeps serving its
    /// last published snapshot throughout.
    ///
    /// [`Trainer::try_feed`]: crate::Trainer::try_feed
    /// [`SomService::resume_from_checkpoint`]: crate::SomService::resume_from_checkpoint
    TrainerPanicked {
        /// The panic payload, when it was a string.
        message: String,
    },
    /// A previous [`Trainer::try_feed`] panicked and this trainer refuses
    /// further training on the possibly-torn map (see
    /// [`EngineError::TrainerPanicked`]).
    ///
    /// [`Trainer::try_feed`]: crate::Trainer::try_feed
    TrainerPoisoned,
    /// An error from the underlying map (wrong-length signature, …).
    Som(SomError),
    /// A checkpoint could not be written, read, or validated.
    Checkpoint(CheckpointError),
    /// The registry holds no tenant under this id
    /// ([`MapRegistry`](crate::registry::MapRegistry)).
    UnknownTenant {
        /// The id that resolved to nothing.
        tenant: String,
    },
    /// [`MapRegistry::create_tenant`](crate::registry::MapRegistry::create_tenant)
    /// was asked for an id that already names a tenant.
    DuplicateTenant {
        /// The id that is already taken.
        tenant: String,
    },
    /// An operation needed to spill a tenant to disk, but the registry was
    /// built without a spill directory
    /// ([`RegistryConfig::spill_dir`](crate::registry::RegistryConfig::spill_dir)).
    SpillUnconfigured,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Overloaded {
                queue_capacity,
                queue_depth,
            } => write!(
                f,
                "service overloaded: job queue at {queue_depth}/{queue_capacity}, batch shed"
            ),
            EngineError::PoolShutDown => write!(f, "worker pool has shut down"),
            EngineError::TrainerPanicked { message } => {
                write!(
                    f,
                    "training step panicked (trainer now poisoned): {message}"
                )
            }
            EngineError::TrainerPoisoned => write!(
                f,
                "trainer poisoned by an earlier panicked step; resume from a checkpoint"
            ),
            EngineError::Som(error) => write!(f, "{error}"),
            EngineError::Checkpoint(error) => write!(f, "{error}"),
            EngineError::UnknownTenant { tenant } => {
                write!(f, "no tenant {tenant:?} in the registry")
            }
            EngineError::DuplicateTenant { tenant } => {
                write!(f, "tenant {tenant:?} already exists in the registry")
            }
            EngineError::SpillUnconfigured => write!(
                f,
                "eviction requires a spill directory; build the registry with RegistryConfig::spill_dir"
            ),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Som(error) => Some(error),
            EngineError::Checkpoint(error) => Some(error),
            _ => None,
        }
    }
}

impl From<SomError> for EngineError {
    fn from(error: SomError) -> Self {
        EngineError::Som(error)
    }
}

impl From<CheckpointError> for EngineError {
    fn from(error: CheckpointError) -> Self {
        EngineError::Checkpoint(error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_nonempty_and_sources_chain() {
        let errors: Vec<EngineError> = vec![
            EngineError::Overloaded {
                queue_capacity: 8,
                queue_depth: 8,
            },
            EngineError::PoolShutDown,
            EngineError::TrainerPanicked {
                message: "boom".into(),
            },
            EngineError::TrainerPoisoned,
            EngineError::Som(SomError::EmptyTrainingSet),
            EngineError::Checkpoint(CheckpointError::TooShort { len: 3 }),
        ];
        for e in &errors {
            assert!(!e.to_string().is_empty());
        }
        assert!(EngineError::from(SomError::EmptyTrainingSet)
            .source()
            .is_some());
        assert!(EngineError::PoolShutDown.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
