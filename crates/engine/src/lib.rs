//! # bsom-engine
//!
//! The batched, multi-core recognition engine of the bSOM reproduction.
//!
//! The paper's FPGA serves recognition traffic by streaming every input
//! pattern past one Hamming unit per neuron — the whole competitive layer
//! consumes the input in a single pass, and patterns queue behind each other
//! in a pipeline that never unpacks a bit. This crate is the software
//! equivalent for serving heavy traffic (ROADMAP north star): signatures are
//! sharded across a **fixed worker-thread pool**, and each worker runs the
//! **batched winner search** of [`bsom_som::PackedLayer`] — the plane-sliced
//! layout documented in DESIGN.md §"The batched engine layout" — instead of
//! the scalar per-neuron loop.
//!
//! * [`RecognitionEngine`] — the engine: a snapshot of a trained, labelled
//!   bSOM plus a worker pool; [`classify_batch`](RecognitionEngine::classify_batch)
//!   shards a batch of signatures, [`process_frames`](RecognitionEngine::process_frames)
//!   drives a whole frame batch through `bsom_vision`'s pipeline and
//!   classifies every tracked object it finds.
//! * [`EngineConfig`] — worker count and unknown-rejection override.
//! * [`TrainEngine`] — the training half: an owned, resumable epoch loop
//!   over the word-parallel bSOM trainer that
//!   [`finish`](TrainEngine::finish)es into a `RecognitionEngine` snapshot.
//! * [`throughput`] — measured engine / batched / scalar throughput compared
//!   against the `bsom_fpga` cycle model's patterns-per-second figure.
//! * [`train`] — bit-serial vs word-parallel training throughput, the
//!   tracked speedup number of the training datapath.
//!
//! ## Quick example
//!
//! ```rust
//! use bsom_engine::{EngineConfig, RecognitionEngine};
//! use bsom_signature::BinaryVector;
//! use bsom_som::{BSom, BSomConfig, LabelledSom, ObjectLabel, SelfOrganizingMap, TrainSchedule};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let a = BinaryVector::from_bits((0..64).map(|i| i < 32));
//! let b = BinaryVector::from_bits((0..64).map(|i| i >= 32));
//! let data = vec![(a.clone(), ObjectLabel::new(0)), (b.clone(), ObjectLabel::new(1))];
//! let mut som = BSom::new(BSomConfig::new(8, 64), &mut rng);
//! som.train_labelled_data(&data, TrainSchedule::new(100), &mut rng).unwrap();
//! let classifier = LabelledSom::label(som, &data);
//!
//! let engine = RecognitionEngine::new(&classifier, EngineConfig::default());
//! let predictions = engine.classify_batch(&[a, b]);
//! assert_eq!(predictions[0].label(), Some(ObjectLabel::new(0)));
//! assert_eq!(predictions[1].label(), Some(ObjectLabel::new(1)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod throughput;
pub mod train;

use std::ops::Range;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

use bsom_signature::{BinaryVector, RgbImage};
use bsom_som::{BSom, BatchWinner, LabelledSom, ObjectLabel, PackedLayer, Prediction};
use bsom_vision::pipeline::{ObjectObservation, SurveillancePipeline};
use serde::{Deserialize, Serialize};

pub use throughput::{compare_recognition_throughput, MeasuredThroughput, ThroughputComparison};
pub use train::{compare_training_throughput, TrainEngine, TrainReport, TrainThroughputComparison};

/// Configuration for a [`RecognitionEngine`].
///
/// The default asks the OS for the available parallelism and keeps the
/// classifier's own unknown-rejection threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EngineConfig {
    /// Number of worker threads. `0` asks the OS for the available
    /// parallelism (falling back to 1 if unknown).
    pub workers: usize,
    /// Overrides the classifier's unknown-rejection distance threshold.
    /// `None` keeps whatever the labelled map was calibrated with.
    pub unknown_threshold: Option<f64>,
}

impl EngineConfig {
    /// A configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }

    /// Overrides the unknown-rejection distance threshold.
    pub fn with_unknown_threshold(mut self, threshold: f64) -> Self {
        self.unknown_threshold = Some(threshold);
        self
    }
}

/// One classified tracked-object observation from a frame batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecognizedObject {
    /// The pipeline's observation (track, bbox, histogram, signature).
    pub observation: ObjectObservation,
    /// The engine's identity verdict for the observation's signature.
    pub prediction: Prediction,
}

/// A shard of winner-search work sent to the pool.
struct Job {
    signatures: Arc<Vec<BinaryVector>>,
    range: Range<usize>,
    reply: Sender<Shard>,
}

/// A completed shard: winners for `signatures[start..start + winners.len()]`.
struct Shard {
    start: usize,
    winners: Vec<Option<BatchWinner>>,
}

/// The fixed worker pool. Workers pull jobs off a shared queue; dropping the
/// pool closes the queue and joins every thread.
struct WorkerPool {
    job_tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(workers: usize, layer: Arc<PackedLayer>) -> Self {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let handles = (0..workers)
            .map(|worker_index| {
                let job_rx = Arc::clone(&job_rx);
                let layer = Arc::clone(&layer);
                std::thread::Builder::new()
                    .name(format!("bsom-engine-{worker_index}"))
                    .spawn(move || worker_loop(&job_rx, &layer))
                    .expect("spawning an engine worker thread")
            })
            .collect();
        WorkerPool {
            job_tx: Some(job_tx),
            handles,
        }
    }

    fn submit(&self, job: Job) {
        self.job_tx
            .as_ref()
            .expect("pool is alive while the engine exists")
            .send(job)
            .expect("workers outlive the engine");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        self.job_tx.take();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Worker body: drain the shared job queue, running the batched winner
/// search over each shard with a reusable distance buffer.
fn worker_loop(job_rx: &Mutex<Receiver<Job>>, layer: &PackedLayer) {
    let mut distances = vec![0u32; layer.neuron_count()];
    loop {
        // Hold the lock only while receiving so shards drain in parallel.
        let job = match job_rx.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => return, // a sibling worker panicked; shut down
        };
        let Ok(job) = job else {
            return; // queue closed: the engine was dropped
        };
        let winners = job.range.clone().map(|i| {
            layer
                .winner_with_buffer(&job.signatures[i], &mut distances)
                .ok()
        });
        let shard = Shard {
            start: job.range.start,
            winners: winners.collect(),
        };
        // The collector may have been dropped (e.g. a panicking caller);
        // losing the reply is then harmless.
        let _ = job.reply.send(shard);
    }
}

/// A batched, sharded recognition engine over a trained, labelled bSOM.
///
/// The engine snapshots the classifier at construction time: the competitive
/// layer is re-laid out plane-sliced ([`PackedLayer`]) and shared read-only
/// across a fixed worker-thread pool. Batches submitted through
/// [`classify_batch`](Self::classify_batch) are split into one contiguous
/// shard per worker, each shard runs the batched winner search, and results
/// are reassembled in input order.
pub struct RecognitionEngine {
    layer: Arc<PackedLayer>,
    labels: Vec<Option<ObjectLabel>>,
    unknown_threshold: Option<f64>,
    workers: usize,
    pool: WorkerPool,
}

impl std::fmt::Debug for RecognitionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecognitionEngine")
            .field("neurons", &self.layer.neuron_count())
            .field("vector_len", &self.layer.vector_len())
            .field("workers", &self.workers)
            .field("unknown_threshold", &self.unknown_threshold)
            .finish()
    }
}

impl RecognitionEngine {
    /// Builds an engine from a trained, labelled classifier.
    ///
    /// The classifier is snapshotted (weights, labels, threshold); later
    /// training on the original map does not affect the engine.
    pub fn new(classifier: &LabelledSom<BSom>, config: EngineConfig) -> Self {
        Self::from_parts(
            PackedLayer::from_som(classifier.map()),
            classifier.neuron_labels().to_vec(),
            config.unknown_threshold.or(classifier.unknown_threshold()),
            config.workers,
        )
    }

    /// Builds an engine from an already-packed layer plus per-neuron labels,
    /// e.g. weights exported from the FPGA BlockRAM after off-line training
    /// (paper §V-F).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the layer's neuron count.
    pub fn from_parts(
        layer: PackedLayer,
        labels: Vec<Option<ObjectLabel>>,
        unknown_threshold: Option<f64>,
        workers: usize,
    ) -> Self {
        assert_eq!(
            labels.len(),
            layer.neuron_count(),
            "one label slot per neuron"
        );
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            workers
        };
        let layer = Arc::new(layer);
        let pool = WorkerPool::spawn(workers, Arc::clone(&layer));
        RecognitionEngine {
            layer,
            labels,
            unknown_threshold,
            workers,
            pool,
        }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The plane-sliced competitive layer the workers search.
    pub fn layer(&self) -> &PackedLayer {
        &self.layer
    }

    /// The unknown-rejection distance threshold, if any.
    pub fn unknown_threshold(&self) -> Option<f64> {
        self.unknown_threshold
    }

    /// Converts a raw winner into the engine's verdict, applying the label
    /// table and the unknown threshold exactly like
    /// [`LabelledSom::classify`].
    fn verdict(&self, winner: Option<BatchWinner>) -> Prediction {
        let Some(winner) = winner else {
            return Prediction::Unknown; // wrong-length signature
        };
        let distance = winner.distance as f64;
        if let Some(threshold) = self.unknown_threshold {
            if distance > threshold {
                return Prediction::Unknown;
            }
        }
        match self.labels[winner.index] {
            Some(label) => Prediction::Known {
                label,
                neuron: winner.index,
                distance,
            },
            None => Prediction::Unknown,
        }
    }

    /// Raw batched winner search sharded across the pool; `None` entries are
    /// wrong-length signatures.
    fn batch_winners(&self, signatures: Arc<Vec<BinaryVector>>) -> Vec<Option<BatchWinner>> {
        let total = signatures.len();
        if total == 0 {
            return Vec::new();
        }
        let shard_len = total.div_ceil(self.workers);
        let (reply_tx, reply_rx) = mpsc::channel::<Shard>();
        let mut shards_sent = 0usize;
        let mut start = 0usize;
        while start < total {
            let end = (start + shard_len).min(total);
            self.pool.submit(Job {
                signatures: Arc::clone(&signatures),
                range: start..end,
                reply: reply_tx.clone(),
            });
            shards_sent += 1;
            start = end;
        }
        drop(reply_tx);

        let mut winners: Vec<Option<BatchWinner>> = vec![None; total];
        for _ in 0..shards_sent {
            let shard = reply_rx
                .recv()
                .expect("every submitted shard sends exactly one reply");
            for (offset, winner) in shard.winners.into_iter().enumerate() {
                winners[shard.start + offset] = winner;
            }
        }
        winners
    }

    /// Classifies a batch of signatures, sharding the winner search across
    /// the worker pool. Results are in input order; wrong-length signatures
    /// yield [`Prediction::Unknown`], mirroring [`LabelledSom::classify`].
    ///
    /// The batch is copied once into shared ownership for the pool; callers
    /// that already hold an `Arc` can use
    /// [`classify_batch_shared`](Self::classify_batch_shared).
    pub fn classify_batch(&self, signatures: &[BinaryVector]) -> Vec<Prediction> {
        self.classify_batch_shared(Arc::new(signatures.to_vec()))
    }

    /// [`classify_batch`](Self::classify_batch) without the defensive copy.
    pub fn classify_batch_shared(&self, signatures: Arc<Vec<BinaryVector>>) -> Vec<Prediction> {
        self.batch_winners(signatures)
            .into_iter()
            .map(|w| self.verdict(w))
            .collect()
    }

    /// Runs a batch of frames through a [`SurveillancePipeline`] and
    /// classifies every surviving tracked object in one sharded winner
    /// search.
    ///
    /// The pipeline stays sequential (its background model and tracker are
    /// stateful), but all signatures the batch produces — across every frame
    /// — are classified together, which is where the batching pays off on
    /// busy scenes.
    pub fn process_frames(
        &self,
        pipeline: &mut SurveillancePipeline,
        frames: &[RgbImage],
    ) -> Vec<Vec<RecognizedObject>> {
        let per_frame = pipeline.process_frames(frames);
        let signatures: Vec<BinaryVector> = per_frame
            .iter()
            .flatten()
            .map(|obs| obs.signature.clone())
            .collect();
        let mut predictions = self.classify_batch_shared(Arc::new(signatures)).into_iter();
        per_frame
            .into_iter()
            .map(|observations| {
                observations
                    .into_iter()
                    .map(|observation| RecognizedObject {
                        observation,
                        prediction: predictions
                            .next()
                            .expect("one prediction per flattened observation"),
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsom_som::{BSomConfig, SelfOrganizingMap, TrainSchedule};
    use bsom_vision::pipeline::PipelineConfig;
    use bsom_vision::scene::{SceneConfig, SceneSimulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xE961E)
    }

    fn trained_classifier(r: &mut StdRng) -> (LabelledSom<BSom>, Vec<BinaryVector>) {
        let patterns: Vec<BinaryVector> = (0..6).map(|_| BinaryVector::random(96, r)).collect();
        let data: Vec<(BinaryVector, ObjectLabel)> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), ObjectLabel::new(i % 3)))
            .collect();
        let mut som = BSom::new(BSomConfig::new(12, 96), r);
        som.train_labelled_data(&data, TrainSchedule::new(40), r)
            .unwrap();
        (LabelledSom::label(som, &data), patterns)
    }

    #[test]
    fn engine_matches_scalar_classifier_on_a_batch() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(3));
        let batch: Vec<BinaryVector> = (0..50).map(|_| BinaryVector::random(96, &mut r)).collect();
        let batched = engine.classify_batch(&batch);
        assert_eq!(batched.len(), batch.len());
        for (signature, prediction) in batch.iter().zip(&batched) {
            assert_eq!(*prediction, classifier.classify(signature));
        }
    }

    #[test]
    fn engine_respects_unknown_threshold_override() {
        let mut r = rng();
        let (classifier, patterns) = trained_classifier(&mut r);
        // Threshold 0 on a far-away probe forces Unknown.
        let engine = RecognitionEngine::new(
            &classifier,
            EngineConfig::with_workers(2).with_unknown_threshold(0.0),
        );
        assert_eq!(engine.unknown_threshold(), Some(0.0));
        let probe = !&patterns[0];
        let out = engine.classify_batch(std::slice::from_ref(&probe));
        assert_eq!(out[0], Prediction::Unknown);
    }

    #[test]
    fn wrong_length_signatures_classify_as_unknown() {
        let mut r = rng();
        let (classifier, patterns) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(2));
        let batch = vec![BinaryVector::zeros(8), patterns[0].clone()];
        let out = engine.classify_batch(&batch);
        assert_eq!(out[0], Prediction::Unknown);
        assert_eq!(out[1], classifier.classify(&patterns[0]));
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(2));
        assert!(engine.classify_batch(&[]).is_empty());
    }

    #[test]
    fn more_workers_than_signatures_is_fine() {
        let mut r = rng();
        let (classifier, patterns) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(8));
        assert_eq!(engine.worker_count(), 8);
        let out = engine.classify_batch(&patterns[..2]);
        assert_eq!(out.len(), 2);
        for (s, p) in patterns[..2].iter().zip(&out) {
            assert_eq!(*p, classifier.classify(s));
        }
    }

    #[test]
    fn default_config_resolves_a_positive_worker_count() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::default());
        assert!(engine.worker_count() >= 1);
        assert!(!format!("{engine:?}").is_empty());
    }

    #[test]
    fn from_parts_rejects_mismatched_labels() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let layer = PackedLayer::from_som(classifier.map());
        let result = std::panic::catch_unwind(|| {
            RecognitionEngine::from_parts(layer, vec![None; 1], None, 1)
        });
        assert!(result.is_err());
    }

    #[test]
    fn process_frames_classifies_every_observation() {
        let mut r = rng();
        // A tiny engine over paper-sized signatures (the pipeline emits
        // 768-bit signatures).
        let data: Vec<(BinaryVector, ObjectLabel)> = (0..4)
            .map(|i| (BinaryVector::random(768, &mut r), ObjectLabel::new(i)))
            .collect();
        let mut som = BSom::new(BSomConfig::paper_default(), &mut r);
        som.train_labelled_data(&data, TrainSchedule::new(5), &mut r)
            .unwrap();
        let classifier = LabelledSom::label(som, &data);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(2));

        let scene_config = SceneConfig {
            entry_probability: 0.0,
            jitter: 0,
            lighting_drift: 0,
            ..SceneConfig::small()
        };
        let mut scene = SceneSimulator::new(scene_config, &mut r);
        let mut pipeline = SurveillancePipeline::with_config(
            scene.config().width,
            scene.config().height,
            PipelineConfig {
                min_object_pixels: Some(300),
                ..PipelineConfig::default()
            },
        );
        for _ in 0..10 {
            pipeline.observe_background(&scene.render_background_only(&mut r));
        }
        scene.spawn_person(4, true);
        let frames: Vec<RgbImage> = (0..12).map(|_| scene.render_frame(&mut r).image).collect();

        let results = engine.process_frames(&mut pipeline, &frames);
        assert_eq!(results.len(), frames.len());
        let mut seen = 0;
        for frame in &results {
            for recognized in frame {
                seen += 1;
                assert_eq!(recognized.observation.signature.len(), 768);
                // Engine verdict must agree with the scalar classifier.
                assert_eq!(
                    recognized.prediction,
                    classifier.classify(&recognized.observation.signature)
                );
            }
        }
        assert!(seen > 0, "the walking person must be observed");
        assert_eq!(pipeline.frames_processed(), frames.len() as u64);
    }

    #[test]
    fn engine_survives_many_small_batches() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(4));
        for _ in 0..20 {
            let batch: Vec<BinaryVector> =
                (0..7).map(|_| BinaryVector::random(96, &mut r)).collect();
            assert_eq!(engine.classify_batch(&batch).len(), 7);
        }
    }
}
