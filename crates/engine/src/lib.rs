//! # bsom-engine
//!
//! The train-while-serve engine of the bSOM reproduction.
//!
//! The paper's FPGA runs **one** datapath that both learns and recognizes on
//! the same stored planes — there is no separate "training copy" of the
//! weights. This crate is the software equivalent for serving heavy traffic
//! (ROADMAP north star): the [`SomService`] facade owns a versioned,
//! atomically-swappable snapshot of the plane-sliced competitive layer
//! ([`bsom_som::PackedLayer`], maintained incrementally by the trainer), a
//! [`Trainer`] handle feeds labelled signatures and publishes new snapshots
//! on epoch or step-count boundaries, and any number of [`Recognizer`]
//! handles keep classifying — sharded across a fixed worker-thread pool —
//! against the snapshot they hold, picking up new versions with one atomic
//! load at their next batch.
//!
//! * [`SomService`] — the facade: snapshot ownership, the worker pool,
//!   [`serve`](SomService::serve) for frozen classifiers and
//!   [`train_while_serve`](SomService::train_while_serve) for online
//!   learning.
//! * [`Trainer`] / [`Recognizer`] — the two handle types.
//! * [`EngineConfig`] — worker count, unknown-rejection override, publish
//!   cadence, bounded-queue capacity.
//! * [`checkpoint`] / [`SomService::resume_from_checkpoint`] — crash-safe
//!   framed checkpoints with bit-identical training continuation;
//!   [`faultpoint`] is the deterministic fault-injection harness
//!   (`fault-injection` feature) that proves the recovery paths.
//! * [`EngineError`] / [`ServiceHealth`] — typed degradation (load
//!   shedding, trainer poisoning) and the supervision counters.
//! * [`throughput`] / [`train`] — measured serving and training throughput
//!   against the `bsom_fpga` cycle model, the tracked benchmark numbers.
//! * [`RecognitionEngine`] / [`TrainEngine`] — the pre-service API, kept as
//!   deprecated thin wrappers over the service.
//!
//! ## Quick example
//!
//! ```rust
//! use bsom_engine::{EngineConfig, SomService};
//! use bsom_signature::BinaryVector;
//! use bsom_som::{BSom, BSomConfig, ObjectLabel, TrainSchedule};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let a = BinaryVector::from_bits((0..64).map(|i| i < 32));
//! let b = BinaryVector::from_bits((0..64).map(|i| i >= 32));
//! let data = vec![(a.clone(), ObjectLabel::new(0)), (b.clone(), ObjectLabel::new(1))];
//! let som = BSom::new(BSomConfig::new(8, 64), &mut rng);
//!
//! // One service: train and serve over the same packed layout.
//! let (service, mut trainer) =
//!     SomService::train_while_serve(som, TrainSchedule::new(100), &data, EngineConfig::default());
//! trainer.train_epochs(&data, 100, &mut rng).unwrap();
//!
//! let mut recognizer = service.recognizer();
//! let predictions = recognizer.classify_batch(&[a, b][..]);
//! assert_eq!(predictions[0].label(), Some(ObjectLabel::new(0)));
//! assert_eq!(predictions[1].label(), Some(ObjectLabel::new(1)));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod faultpoint;
pub mod registry;
pub mod registry_bench;
pub mod service;
pub mod throughput;
pub mod train;

use std::sync::Arc;

use bsom_signature::RgbImage;
use bsom_som::{BSom, LabelledSom, ObjectLabel, PackedLayer, Prediction};
use bsom_vision::pipeline::{ObjectObservation, SurveillancePipeline};
use serde::{Deserialize, Serialize};

use crate::service::SomSnapshot;

pub use checkpoint::{
    compare_checkpoint_throughput, CheckpointError, CheckpointInfo, CheckpointThroughputComparison,
};
pub use error::EngineError;
pub use registry::{MapRegistry, RegistryConfig, RegistryStats, TenantId, TickReport};
pub use registry_bench::{compare_registry_throughput, RegistryThroughputComparison};
pub use service::{Recognizer, ServiceHealth, SignatureBatch, SomService, Trainer};
pub use throughput::{
    compare_dispatch_throughput, compare_large_map_throughput, compare_recognition_throughput,
    DispatchFigure, DispatchThroughputComparison, LargeMapThroughputComparison, MeasuredThroughput,
    ThroughputComparison,
};
#[allow(deprecated)]
pub use train::TrainEngine;
pub use train::{
    compare_training_throughput, compare_training_throughput_at_radius, TrainReport,
    TrainThroughputComparison,
};

/// Configuration for a [`SomService`].
///
/// The default asks the OS for the available parallelism, keeps the
/// classifier's own unknown-rejection threshold, and publishes on epoch
/// boundaries only.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EngineConfig {
    /// Number of worker threads. `0` asks the OS for the available
    /// parallelism (falling back to 1 if unknown).
    pub workers: usize,
    /// Overrides the classifier's unknown-rejection distance threshold.
    /// `None` keeps whatever the labelled map was calibrated with.
    pub unknown_threshold: Option<f64>,
    /// Publish a snapshot automatically every this many
    /// [`Trainer::feed`] steps, in addition to the epoch-boundary publishes.
    /// `None` (the default) publishes on epoch boundaries and explicit
    /// [`Trainer::publish`] calls only.
    pub publish_every_steps: Option<u64>,
    /// Per-step retention factor for the [`Trainer`]'s online win
    /// statistics, in `(0, 1)`. With decay `d`, a win recorded `n` feed
    /// steps ago weighs `dⁿ` at labelling time, so neuron labels track
    /// appearance drift automatically instead of needing a manual
    /// [`Trainer::reset_label_stats`] between drift phases. `None` (the
    /// default) keeps every win at full weight forever — the cumulative
    /// behaviour of [`bsom_som::LabelledSom::label`].
    pub label_decay: Option<f64>,
    /// Capacity of the bounded job queue classify shards are submitted
    /// through. `None` (the default) resolves to `4 × workers`, floored at
    /// 16 — enough for a few batches in flight per worker. The bound is the
    /// graceful-degradation lever: a blocking classify waits for space
    /// (backpressure), while [`Recognizer::try_classify_batch`] sheds the
    /// batch with [`EngineError::Overloaded`] instead
    /// of growing the queue without bound.
    pub queue_capacity: Option<usize>,
}

impl EngineConfig {
    /// A configuration with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        EngineConfig {
            workers,
            ..EngineConfig::default()
        }
    }

    /// Overrides the unknown-rejection distance threshold.
    pub fn with_unknown_threshold(mut self, threshold: f64) -> Self {
        self.unknown_threshold = Some(threshold);
        self
    }

    /// Publishes a snapshot every `steps` [`Trainer::feed`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn with_publish_every_steps(mut self, steps: u64) -> Self {
        assert!(steps > 0, "publish cadence must be at least one step");
        self.publish_every_steps = Some(steps);
        self
    }

    /// Decays the online win statistics by `decay` per feed step (see
    /// [`EngineConfig::label_decay`]).
    ///
    /// # Panics
    ///
    /// Panics if `decay` is not strictly inside `(0, 1)`.
    pub fn with_label_decay(mut self, decay: f64) -> Self {
        assert!(
            decay > 0.0 && decay < 1.0,
            "label decay must lie strictly inside (0, 1), got {decay}"
        );
        self.label_decay = Some(decay);
        self
    }

    /// Configures [`EngineConfig::label_decay`] by half-life: a win's weight
    /// halves every `steps` feed steps.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn with_label_half_life_steps(self, steps: u64) -> Self {
        assert!(steps > 0, "label half-life must be at least one step");
        self.with_label_decay(0.5f64.powf(1.0 / steps as f64))
    }

    /// Bounds the worker pool's job queue at `capacity` shards (see
    /// [`EngineConfig::queue_capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least one job");
        self.queue_capacity = Some(capacity);
        self
    }
}

/// One classified tracked-object observation from a frame batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecognizedObject {
    /// The pipeline's observation (track, bbox, histogram, signature).
    pub observation: ObjectObservation,
    /// The identity verdict for the observation's signature.
    pub prediction: Prediction,
}

/// A frozen serving view: classification against one pinned snapshot of a
/// trained, labelled bSOM.
///
/// This is the pre-`SomService` API, kept as a thin wrapper: construction
/// publishes snapshot v1 of a private serve-only service and pins it
/// forever. New code should use [`SomService::serve`] and
/// [`SomService::recognizer`], which additionally pick up snapshots
/// published by a live [`Trainer`].
#[deprecated(
    since = "0.1.0",
    note = "use SomService::serve (or train_while_serve) and Recognizer handles"
)]
pub struct RecognitionEngine {
    service: SomService,
    snapshot: Arc<SomSnapshot>,
}

#[allow(deprecated)]
impl std::fmt::Debug for RecognitionEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecognitionEngine")
            .field("neurons", &self.snapshot.layer().neuron_count())
            .field("vector_len", &self.snapshot.layer().vector_len())
            .field("workers", &self.service.worker_count())
            .field("unknown_threshold", &self.snapshot.unknown_threshold())
            .finish()
    }
}

#[allow(deprecated)]
impl RecognitionEngine {
    /// Builds an engine from a trained, labelled classifier.
    ///
    /// The classifier is snapshotted (weights, labels, threshold); later
    /// training on the original map does not affect the engine.
    pub fn new(classifier: &LabelledSom<BSom>, config: EngineConfig) -> Self {
        Self::from_service(SomService::serve(classifier, config))
    }

    /// Builds an engine from an already-packed layer plus per-neuron labels,
    /// e.g. weights exported from the FPGA BlockRAM after off-line training
    /// (paper §V-F).
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the layer's neuron count.
    pub fn from_parts(
        layer: PackedLayer,
        labels: Vec<Option<ObjectLabel>>,
        unknown_threshold: Option<f64>,
        workers: usize,
    ) -> Self {
        Self::from_service(SomService::from_parts(
            layer,
            labels,
            unknown_threshold,
            workers,
        ))
    }

    fn from_service(service: SomService) -> Self {
        let snapshot = service.snapshot();
        RecognitionEngine { service, snapshot }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.service.worker_count()
    }

    /// The plane-sliced competitive layer the workers search.
    pub fn layer(&self) -> &PackedLayer {
        self.snapshot.layer()
    }

    /// The unknown-rejection distance threshold, if any.
    pub fn unknown_threshold(&self) -> Option<f64> {
        self.snapshot.unknown_threshold()
    }

    /// Classifies a batch of signatures, sharding the winner search across
    /// the worker pool. Results are in input order; wrong-length signatures
    /// yield [`Prediction::Unknown`], mirroring [`LabelledSom::classify`].
    ///
    /// Accepts anything convertible into a [`SignatureBatch`]: a slice (one
    /// defensive copy) or an `Arc<Vec<BinaryVector>>` (zero-copy).
    pub fn classify_batch(&self, signatures: impl Into<SignatureBatch>) -> Vec<Prediction> {
        self.service.classify_pinned(&self.snapshot, signatures)
    }

    /// Runs a batch of frames through a [`SurveillancePipeline`] and
    /// classifies every surviving tracked object in one sharded winner
    /// search.
    ///
    /// The pipeline stays sequential (its background model and tracker are
    /// stateful), but all signatures the batch produces — across every frame
    /// — are classified together, which is where the batching pays off on
    /// busy scenes.
    pub fn process_frames(
        &self,
        pipeline: &mut SurveillancePipeline,
        frames: &[RgbImage],
    ) -> Vec<Vec<RecognizedObject>> {
        service::recognize_frames(pipeline, frames, |signatures| {
            self.service.classify_pinned(&self.snapshot, signatures)
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use bsom_signature::BinaryVector;
    use bsom_som::{BSomConfig, ObjectLabel, Prediction, SelfOrganizingMap, TrainSchedule};
    use bsom_vision::pipeline::PipelineConfig;
    use bsom_vision::scene::{SceneConfig, SceneSimulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xE961E)
    }

    fn trained_classifier(r: &mut StdRng) -> (LabelledSom<BSom>, Vec<BinaryVector>) {
        let patterns: Vec<BinaryVector> = (0..6).map(|_| BinaryVector::random(96, r)).collect();
        let data: Vec<(BinaryVector, ObjectLabel)> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), ObjectLabel::new(i % 3)))
            .collect();
        let mut som = BSom::new(BSomConfig::new(12, 96), r);
        som.train_labelled_data(&data, TrainSchedule::new(40), r)
            .unwrap();
        (LabelledSom::label(som, &data), patterns)
    }

    #[test]
    fn engine_matches_scalar_classifier_on_a_batch() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(3));
        let batch: Vec<BinaryVector> = (0..50).map(|_| BinaryVector::random(96, &mut r)).collect();
        let batched = engine.classify_batch(&batch);
        assert_eq!(batched.len(), batch.len());
        for (signature, prediction) in batch.iter().zip(&batched) {
            assert_eq!(*prediction, classifier.classify(signature));
        }
    }

    #[test]
    fn engine_respects_unknown_threshold_override() {
        let mut r = rng();
        let (classifier, patterns) = trained_classifier(&mut r);
        // Threshold 0 on a far-away probe forces Unknown.
        let engine = RecognitionEngine::new(
            &classifier,
            EngineConfig::with_workers(2).with_unknown_threshold(0.0),
        );
        assert_eq!(engine.unknown_threshold(), Some(0.0));
        let probe = !&patterns[0];
        let out = engine.classify_batch(std::slice::from_ref(&probe));
        assert_eq!(out[0], Prediction::Unknown);
    }

    #[test]
    fn wrong_length_signatures_classify_as_unknown() {
        let mut r = rng();
        let (classifier, patterns) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(2));
        let batch = vec![BinaryVector::zeros(8), patterns[0].clone()];
        let out = engine.classify_batch(&batch);
        assert_eq!(out[0], Prediction::Unknown);
        assert_eq!(out[1], classifier.classify(&patterns[0]));
    }

    #[test]
    fn empty_batch_is_fine() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(2));
        assert!(engine.classify_batch(&[][..]).is_empty());
    }

    #[test]
    fn more_workers_than_signatures_is_fine() {
        let mut r = rng();
        let (classifier, patterns) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(8));
        assert_eq!(engine.worker_count(), 8);
        let out = engine.classify_batch(&patterns[..2]);
        assert_eq!(out.len(), 2);
        for (s, p) in patterns[..2].iter().zip(&out) {
            assert_eq!(*p, classifier.classify(s));
        }
    }

    #[test]
    fn default_config_resolves_a_positive_worker_count() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::default());
        assert!(engine.worker_count() >= 1);
        assert!(!format!("{engine:?}").is_empty());
    }

    #[test]
    fn from_parts_rejects_mismatched_labels() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let layer = PackedLayer::from_som(classifier.map());
        let result = std::panic::catch_unwind(|| {
            RecognitionEngine::from_parts(layer, vec![None; 1], None, 1)
        });
        assert!(result.is_err());
    }

    #[test]
    fn process_frames_classifies_every_observation() {
        let mut r = rng();
        // A tiny engine over paper-sized signatures (the pipeline emits
        // 768-bit signatures).
        let data: Vec<(BinaryVector, ObjectLabel)> = (0..4)
            .map(|i| (BinaryVector::random(768, &mut r), ObjectLabel::new(i)))
            .collect();
        let mut som = BSom::new(BSomConfig::paper_default(), &mut r);
        som.train_labelled_data(&data, TrainSchedule::new(5), &mut r)
            .unwrap();
        let classifier = LabelledSom::label(som, &data);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(2));

        let scene_config = SceneConfig {
            entry_probability: 0.0,
            jitter: 0,
            lighting_drift: 0,
            ..SceneConfig::small()
        };
        let mut scene = SceneSimulator::new(scene_config, &mut r);
        let mut pipeline = SurveillancePipeline::with_config(
            scene.config().width,
            scene.config().height,
            PipelineConfig {
                min_object_pixels: Some(300),
                ..PipelineConfig::default()
            },
        );
        for _ in 0..10 {
            pipeline.observe_background(&scene.render_background_only(&mut r));
        }
        scene.spawn_person(4, true);
        let frames: Vec<RgbImage> = (0..12).map(|_| scene.render_frame(&mut r).image).collect();

        let results = engine.process_frames(&mut pipeline, &frames);
        assert_eq!(results.len(), frames.len());
        let mut seen = 0;
        for frame in &results {
            for recognized in frame {
                seen += 1;
                assert_eq!(recognized.observation.signature.len(), 768);
                // Engine verdict must agree with the scalar classifier.
                assert_eq!(
                    recognized.prediction,
                    classifier.classify(&recognized.observation.signature)
                );
            }
        }
        assert!(seen > 0, "the walking person must be observed");
        assert_eq!(pipeline.frames_processed(), frames.len() as u64);
    }

    #[test]
    fn engine_survives_many_small_batches() {
        let mut r = rng();
        let (classifier, _) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(4));
        for _ in 0..20 {
            let batch: Vec<BinaryVector> =
                (0..7).map(|_| BinaryVector::random(96, &mut r)).collect();
            assert_eq!(engine.classify_batch(&batch).len(), 7);
        }
    }

    #[test]
    fn zero_copy_batches_are_accepted() {
        let mut r = rng();
        let (classifier, patterns) = trained_classifier(&mut r);
        let engine = RecognitionEngine::new(&classifier, EngineConfig::with_workers(2));
        let shared = Arc::new(patterns.clone());
        let from_arc = engine.classify_batch(Arc::clone(&shared));
        let from_slice = engine.classify_batch(&patterns[..]);
        assert_eq!(from_arc, from_slice);
    }
}
