//! Deterministic fault injection: named failpoints on the engine's fault
//! paths.
//!
//! The service code calls [`hit`] at every place the fault model of DESIGN.md
//! §"Fault model and recovery" says can fail:
//!
//! | failpoint            | where it sits                                      |
//! |----------------------|----------------------------------------------------|
//! | `worker.job`         | inside a worker's `catch_unwind`, before the shard's winner search |
//! | `service.publish`    | while the snapshot lock is held, before the swap   |
//! | `trainer.feed`       | inside [`Trainer::try_feed`]'s `catch_unwind`, before the train step |
//! | `checkpoint.write`   | between the temp-file write and the atomic rename  |
//! | `checkpoint.read`    | on entry of a checkpoint load                      |
//! | `service.drain`      | in `bsom-serve`'s graceful drain, after new work stops and before the in-flight flush |
//! | `registry.evict`     | after a tenant's spill checkpoint is written, before its in-memory state is dropped |
//! | `registry.reload`    | on entry of an evicted tenant's reload, before the spill file is read |
//!
//! Without the `fault-injection` feature every [`hit`] is an empty inline
//! function the optimizer deletes — production builds carry no registry, no
//! lock, no branch. With the feature, tests arm a failpoint to panic or
//! stall at its *n*-th hit (`arm_panic` / `arm_sleep`, re-exported here
//! under the feature), optionally driving the choice of `n` from a seeded
//! `FaultPlan`, so a run deterministically kills worker N at step K or
//! tears a checkpoint between write and rename — the harness suites in
//! `tests/fault_injection.rs`.
//!
//! The registry is process-global; suites that arm failpoints serialize
//! themselves (one test mutex) and `reset` on entry and exit.
//!
//! [`Trainer::try_feed`]: crate::Trainer::try_feed

#[cfg(feature = "fault-injection")]
pub use enabled::{arm_panic, arm_sleep, hit_count, reset, FaultPlan};

/// Registers one pass through the named failpoint.
///
/// A no-op (deleted by the optimizer) unless the crate is built with the
/// `fault-injection` feature; under the feature it counts the hit and fires
/// whatever action (`arm_panic` / `arm_sleep`) is armed for this count.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn hit(_name: &str) {}

/// Registers one pass through the named failpoint (fault-injection build):
/// counts the hit and fires the armed action, if any, for this count.
///
/// # Panics
///
/// Panics — deliberately — when [`arm_panic`] armed this hit. The panic is
/// raised *after* the registry lock is released, so the registry itself is
/// never poisoned by an injected fault.
#[cfg(feature = "fault-injection")]
pub fn hit(name: &str) {
    enabled::hit(name)
}

#[cfg(feature = "fault-injection")]
mod enabled {
    use std::sync::{Mutex, PoisonError};
    use std::time::Duration;

    /// What an armed failpoint does when its hit arrives.
    #[derive(Debug, Clone)]
    enum Action {
        Panic,
        Sleep(Duration),
    }

    #[derive(Debug)]
    struct Armed {
        name: String,
        /// Fire at the hit with this zero-based ordinal.
        nth: u64,
        action: Action,
    }

    #[derive(Debug)]
    struct Registry {
        /// Lifetime hit count per failpoint name since the last [`reset`].
        counts: Vec<(String, u64)>,
        armed: Vec<Armed>,
    }

    static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
        counts: Vec::new(),
        armed: Vec::new(),
    });

    /// An injected panic may unwind through a thread that holds no lock, but
    /// a sibling test thread can still observe the mutex poisoned; the
    /// registry state itself is always consistent (mutations complete before
    /// any action fires), so recover rather than propagate.
    fn registry() -> std::sync::MutexGuard<'static, Registry> {
        REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub(super) fn hit(name: &str) {
        let fired = {
            let mut registry = registry();
            let ordinal = match registry.counts.iter_mut().find(|(n, _)| n == name) {
                Some((_, count)) => {
                    let ordinal = *count;
                    *count += 1;
                    ordinal
                }
                None => {
                    registry.counts.push((name.to_string(), 1));
                    0
                }
            };
            registry
                .armed
                .iter()
                .position(|armed| armed.name == name && armed.nth == ordinal)
                .map(|index| registry.armed.swap_remove(index))
        };
        // The lock is released before any action fires: an injected panic
        // must tear the *engine's* state, never the registry's.
        if let Some(armed) = fired {
            match armed.action {
                Action::Sleep(duration) => std::thread::sleep(duration),
                Action::Panic => panic!(
                    "injected fault: failpoint `{}` fired at hit {}",
                    armed.name, armed.nth
                ),
            }
        }
    }

    /// Arms failpoint `name` to panic at its `nth` (zero-based, counted from
    /// the last [`reset`]) hit. One-shot: the arming is consumed when it
    /// fires.
    pub fn arm_panic(name: &str, nth: u64) {
        registry().armed.push(Armed {
            name: name.to_string(),
            nth,
            action: Action::Panic,
        });
    }

    /// Arms failpoint `name` to stall for `duration` at its `nth` hit —
    /// the saturation lever: parking every worker inside its job makes the
    /// bounded queue fill deterministically. One-shot, like [`arm_panic`].
    pub fn arm_sleep(name: &str, nth: u64, duration: Duration) {
        registry().armed.push(Armed {
            name: name.to_string(),
            nth,
            action: Action::Sleep(duration),
        });
    }

    /// Hits of failpoint `name` since the last [`reset`].
    pub fn hit_count(name: &str) -> u64 {
        registry()
            .counts
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, count)| *count)
            .unwrap_or(0)
    }

    /// Clears every hit count and disarms every pending failpoint.
    pub fn reset() {
        let mut registry = registry();
        registry.counts.clear();
        registry.armed.clear();
    }

    /// A seeded xorshift64* stream for driving fault schedules: tests draw
    /// *which* step to kill or *which* byte to tear from the plan, so one
    /// `u64` seed reproduces the whole fault scenario.
    #[derive(Debug, Clone)]
    pub struct FaultPlan {
        state: u64,
    }

    impl FaultPlan {
        /// A plan seeded with `seed` (zero is mapped off the xorshift fixed
        /// point).
        pub fn seeded(seed: u64) -> Self {
            FaultPlan { state: seed | 1 }
        }

        /// The next raw draw of the stream.
        pub fn next_u64(&mut self) -> u64 {
            // xorshift64* — the same generator the map's mask plan uses.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// A draw uniform-ish in `0..bound`.
        ///
        /// # Panics
        ///
        /// Panics if `bound` is zero.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty draw range");
            self.next_u64() % bound
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        // The registry is process-global and other suites in this crate may
        // run concurrently, so these unit tests use names no engine failpoint
        // shares.

        #[test]
        fn armed_panic_fires_exactly_at_its_ordinal_then_disarms() {
            reset();
            arm_panic("unit.test.panic", 2);
            hit("unit.test.panic");
            hit("unit.test.panic");
            let caught = std::panic::catch_unwind(|| hit("unit.test.panic"));
            assert!(caught.is_err(), "hit 2 must fire");
            hit("unit.test.panic"); // consumed: hit 3 is quiet
            assert_eq!(hit_count("unit.test.panic"), 4);
        }

        #[test]
        fn fault_plan_is_deterministic() {
            let mut a = FaultPlan::seeded(42);
            let mut b = FaultPlan::seeded(42);
            for _ in 0..16 {
                assert_eq!(a.next_u64(), b.next_u64());
            }
            let mut c = FaultPlan::seeded(42);
            for _ in 0..16 {
                assert!(c.next_below(10) < 10);
            }
        }
    }
}
